//! Result-cache consistency suite: whatever the shard count, coding,
//! cache budget or query/ingest interleaving, a cached service must
//! return byte-identical match sets to the uncached paths — and the
//! shard-epoch keys must invalidate exactly the shards an ingest
//! touched.

use std::sync::Arc;

use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{Coding, IndexOptions, ResultCache, ResultCacheConfig, SubtreeIndex};
use si_corpus::rng::StdRng;
use si_corpus::{fb_query_set, wh_query_set, GeneratorConfig};
use si_query::{parse_query, Query};
use si_service::{QueryService, ServiceConfig, ShardedQueryService};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-rescache-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The WH+FB workload of the service differential suite: heavy cover
/// overlap, both hits and guaranteed zero-match queries.
fn workload(corpus: &si_corpus::Corpus, seed: u64) -> Vec<Query> {
    let mut interner = corpus.interner().clone();
    let heldout = GeneratorConfig::default()
        .with_seed(seed + 1)
        .generate_into(60, &mut interner);
    let mut queries: Vec<Query> = wh_query_set(&mut interner)
        .into_iter()
        .map(|q| q.query)
        .collect();
    queries.extend(
        fb_query_set(corpus, &heldout, seed + 2)
            .into_iter()
            .map(|q| q.query),
    );
    queries
}

fn build_config(shards: usize) -> ShardedBuildConfig {
    ShardedBuildConfig {
        shards,
        workers: 2,
        mode: ShardBuildMode::InMemory,
    }
}

fn cached_config() -> ServiceConfig {
    ServiceConfig {
        threads: 2,
        result_cache_mb: 8,
        ..ServiceConfig::default()
    }
}

/// Satellite: randomized query/ingest/repeat-query schedules across
/// {1, 2, 4} shards × 3 codings. Every batch through the cached
/// service must match both an uncached service over the same index
/// state and the core scatter-gather evaluator, byte for byte — with
/// the *same* cache instance carried across every ingest.
#[test]
fn randomized_schedules_match_uncached_across_shards_and_codings() {
    let seed = 0xCAC4_0001;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(240);
    let trees = corpus.trees();
    let initial = 140;
    let chunk = 25;
    let pool = workload(&corpus, seed);
    for coding in Coding::ALL {
        for &shards in &[1usize, 2, 4] {
            let dir = tmp_dir(&format!("sched-{coding:?}-{shards}").to_lowercase());
            let options = IndexOptions::new(3, coding);
            ShardedIndex::build(
                &dir,
                &trees[..initial],
                corpus.interner(),
                options,
                build_config(shards),
            )
            .unwrap();
            let cache = Arc::new(ResultCache::new(ResultCacheConfig::with_budget(8 << 20)));
            let open_services = || {
                let index = Arc::new(ShardedIndex::open(&dir).unwrap());
                let cached = ShardedQueryService::new(index.clone(), cached_config())
                    .with_result_cache(cache.clone());
                let plain = ShardedQueryService::new(
                    index,
                    ServiceConfig {
                        threads: 2,
                        ..ServiceConfig::default()
                    },
                );
                (cached, plain)
            };
            let (mut cached_svc, mut plain_svc) = open_services();
            let mut rng = StdRng::seed_from_u64(seed ^ (shards as u64) ^ u64::from(coding.id()));
            let mut ingested = initial;
            for step in 0..10 {
                if ingested + chunk <= trees.len() && rng.gen_bool(0.3) {
                    // Ingest through a separate writer handle, then
                    // reopen — keeping the *same* result cache.
                    let mut writer = ShardedIndex::open(&dir).unwrap();
                    writer
                        .ingest(&trees[ingested..ingested + chunk], corpus.interner())
                        .unwrap();
                    ingested += chunk;
                    (cached_svc, plain_svc) = open_services();
                }
                // A batch with deliberate repeats (hot keys) and fresh
                // draws; repeats of earlier steps hit the cache.
                let batch: Vec<Query> = (0..6)
                    .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                    .collect();
                let report = cached_svc.run_batch(&batch).unwrap();
                let plain = plain_svc.run_batch(&batch).unwrap();
                for (i, (c, p)) in report.outcomes.iter().zip(&plain.outcomes).enumerate() {
                    assert_eq!(
                        c.result.matches, p.result.matches,
                        "step {step} query {i}: cached vs uncached service \
                         ({coding:?}, {shards} shards)"
                    );
                    let oracle = cached_svc.index().evaluate(&batch[i]).unwrap();
                    assert_eq!(
                        c.result.matches, oracle.matches,
                        "step {step} query {i}: cached service vs core evaluator \
                         ({coding:?}, {shards} shards)"
                    );
                }
            }
            assert!(
                cache.stats().hits > 0,
                "a repeat-heavy schedule must hit the cache ({coding:?}, {shards} shards)"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Satellite (directed): an ingest-touched shard misses while every
/// untouched shard's partial hits — `partial_reuses` counts exactly
/// the old shards, and the repeat query afterwards is a whole-query
/// hit again.
#[test]
fn ingest_invalidates_only_touched_shards() {
    let seed = 0xCAC4_0002;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(200);
    let trees = corpus.trees();
    let dir = tmp_dir("directed");
    ShardedIndex::build(
        &dir,
        &trees[..160],
        corpus.interner(),
        IndexOptions::new(3, Coding::RootSplit),
        build_config(2),
    )
    .unwrap();
    let mut qi = corpus.interner().clone();
    // A hot grammar production: present in every generator slice, so
    // the ingested shard is live (not skip-pruned) for it.
    let query = parse_query("NP(DT)(NN)", &mut qi).unwrap();
    let cache = Arc::new(ResultCache::new(ResultCacheConfig::default()));
    let service =
        ShardedQueryService::new(Arc::new(ShardedIndex::open(&dir).unwrap()), cached_config())
            .with_result_cache(cache.clone());

    // Cold: both shards evaluate, nothing reused.
    let cold = service.run_batch(std::slice::from_ref(&query)).unwrap();
    let s = &cold.outcomes[0].result.stats;
    assert_eq!(
        (s.result_hits, s.result_misses, s.partial_reuses),
        (0, 1, 0)
    );
    let cold_matches = cold.outcomes[0].result.matches.clone();
    assert!(!cold_matches.is_empty(), "hot production must match");

    // Warm repeat: whole-query hit, no shard evaluated.
    let warm = service.run_batch(std::slice::from_ref(&query)).unwrap();
    let s = &warm.outcomes[0].result.stats;
    assert_eq!((s.result_hits, s.result_misses), (1, 0));
    assert_eq!(warm.outcomes[0].result.matches, cold_matches);

    // Ingest 40 trees; only the new shard's epoch is fresh.
    let mut writer = ShardedIndex::open(&dir).unwrap();
    writer.ingest(&trees[160..], corpus.interner()).unwrap();
    let manifest = writer.manifest().clone();
    assert_eq!(manifest.shards.len(), 3);
    assert!(
        manifest.shards[2].generation > manifest.shards[0].generation,
        "ingested shard must carry a fresh generation"
    );

    // Same cache, reloaded index: both old shards reuse their cached
    // partials, only the ingested shard runs the pipeline.
    let service = ShardedQueryService::new(Arc::new(ShardedIndex::open(&dir).unwrap()), {
        cached_config()
    })
    .with_result_cache(cache.clone());
    let after = service.run_batch(std::slice::from_ref(&query)).unwrap();
    let s = &after.outcomes[0].result.stats;
    assert_eq!(
        (s.result_hits, s.result_misses, s.partial_reuses),
        (0, 1, 2),
        "exactly the two untouched shards must be reused"
    );
    let oracle = service.index().evaluate(&query).unwrap();
    assert_eq!(after.outcomes[0].result.matches, oracle.matches);
    assert!(
        oracle.matches.len() > cold_matches.len(),
        "the ingested trees must contribute matches"
    );

    // And the repeat after the ingest is a whole-query hit again.
    let warm2 = service.run_batch(std::slice::from_ref(&query)).unwrap();
    let s = &warm2.outcomes[0].result.stats;
    assert_eq!((s.result_hits, s.result_misses), (1, 0));
    assert_eq!(warm2.outcomes[0].result.matches, oracle.matches);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (directed): negative entries serve repeat zero-match
/// queries and are "invalidated" by an ingest that makes the query
/// non-empty — the new shard is a fresh epoch the negative entry
/// cannot answer for.
#[test]
fn negative_entries_yield_to_an_ingest_with_matches() {
    let mut li = si_parsetree::LabelInterner::new();
    let old: Vec<si_parsetree::ParseTree> = ["(S (NP (NN dog)) (VP (VBZ barks)))"]
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let dir = tmp_dir("negative");
    ShardedIndex::build(
        &dir,
        &old,
        &li,
        IndexOptions::new(2, Coding::RootSplit),
        build_config(1),
    )
    .unwrap();
    let cache = Arc::new(ResultCache::new(ResultCacheConfig::default()));
    let service =
        ShardedQueryService::new(Arc::new(ShardedIndex::open(&dir).unwrap()), cached_config())
            .with_result_cache(cache.clone());
    let mut qi = service.index().interner();
    // WHNP is unknown to the initial corpus: provably empty, and the
    // skip inserts an explicit negative entry.
    let query = parse_query("WHNP(WP)", &mut qi).unwrap();
    let cold = service.run_batch(std::slice::from_ref(&query)).unwrap();
    assert!(cold.outcomes[0].result.matches.is_empty());

    let warm = service.run_batch(std::slice::from_ref(&query)).unwrap();
    let s = &warm.outcomes[0].result.stats;
    assert!(warm.outcomes[0].result.matches.is_empty());
    assert_eq!(
        (s.result_hits, s.negative_hits),
        (1, 1),
        "repeat zero-match query must hit its negative entry"
    );

    // Ingest a tree that answers the query (new label included).
    let mut writer = ShardedIndex::open(&dir).unwrap();
    let mut extended = writer.interner();
    let new: Vec<si_parsetree::ParseTree> = ["(SBARQ (WHNP (WP who)) (SQ (VBZ barks)))"]
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut extended).unwrap())
        .collect();
    writer.ingest(&new, &extended).unwrap();

    let service =
        ShardedQueryService::new(Arc::new(ShardedIndex::open(&dir).unwrap()), cached_config())
            .with_result_cache(cache.clone());
    let after = service.run_batch(std::slice::from_ref(&query)).unwrap();
    let s = &after.outcomes[0].result.stats;
    let oracle = service.index().evaluate(&query).unwrap();
    assert_eq!(after.outcomes[0].result.matches, oracle.matches);
    assert_eq!(
        after.outcomes[0]
            .result
            .matches
            .iter()
            .map(|&(tid, _)| tid)
            .collect::<Vec<_>>(),
        vec![1],
        "the ingested tree must now answer the query"
    );
    assert_eq!(s.result_misses, 1, "the fresh shard must evaluate");
    assert_eq!(
        s.negative_hits, 1,
        "the old shard's negative entry still serves its own epoch"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: under a cache budget far too small for the workload,
/// eviction churns — and every repeat query after eviction still
/// answers exactly like the uncached oracle (an evicted entry is a
/// re-evaluation, never a wrong answer). Budget bounds hold
/// throughout.
#[test]
fn repeat_queries_after_eviction_answer_correctly() {
    let seed = 0xCAC4_0003;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(200);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("evict");
    ShardedIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(3, Coding::SubtreeInterval),
        build_config(2),
    )
    .unwrap();
    let budget = 2 << 10;
    let cache = Arc::new(ResultCache::new(ResultCacheConfig {
        budget_bytes: budget,
        shards: 1,
    }));
    let service =
        ShardedQueryService::new(Arc::new(ShardedIndex::open(&dir).unwrap()), cached_config())
            .with_result_cache(cache.clone());
    let expected: Vec<_> = queries
        .iter()
        .map(|q| service.index().evaluate(q).unwrap().matches)
        .collect();
    for round in 0..3 {
        let report = service.run_batch(&queries).unwrap();
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.result.matches, expected[i],
                "round {round} query {i} diverged under eviction pressure"
            );
        }
        let s = cache.stats();
        assert!(
            s.current_bytes as usize <= budget && s.peak_bytes as usize <= budget,
            "round {round}: cache bytes exceed budget ({s:?})"
        );
    }
    assert!(
        cache.stats().evictions > 0,
        "a thrashed result cache must evict: {:?}",
        cache.stats()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The monolithic service's cache (fixed epoch `(0, 0)`): repeats hit,
/// zero-match queries hit negatively, answers never change — including
/// with the cache off entirely.
#[test]
fn mono_service_cache_hits_without_changing_answers() {
    let seed = 0xCAC4_0004;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(200);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("mono");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap(),
    );
    let expected: Vec<_> = queries
        .iter()
        .map(|q| index.evaluate(q).unwrap().matches)
        .collect();
    let cached = QueryService::new(index.clone(), cached_config());
    let plain = QueryService::new(
        index,
        ServiceConfig {
            threads: 2,
            ..ServiceConfig::default()
        },
    );
    for round in 0..2 {
        for (svc, name) in [(&cached, "cached"), (&plain, "plain")] {
            let report = svc.run_batch(&queries).unwrap();
            for (i, outcome) in report.outcomes.iter().enumerate() {
                assert_eq!(
                    outcome.result.matches, expected[i],
                    "{name} round {round} query {i}"
                );
                let s = &outcome.result.stats;
                match (name, round) {
                    ("plain", _) => {
                        assert_eq!(
                            (s.result_hits, s.result_misses),
                            (0, 0),
                            "cache-off query {i}"
                        )
                    }
                    ("cached", 0) => assert_eq!(s.result_misses, 1, "cold query {i}"),
                    ("cached", _) => {
                        assert_eq!(s.result_hits, 1, "warm query {i}");
                        assert_eq!(
                            s.negative_hits,
                            u64::from(expected[i].is_empty()),
                            "zero-match warm query {i} must hit negatively"
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
    assert!(plain.result_cache_stats().is_none());
    let stats = cached.result_cache_stats().unwrap();
    assert_eq!(stats.hits, queries.len() as u64, "one hit per warm query");
    std::fs::remove_dir_all(&dir).ok();
}
