//! Service-level observability: `collect_timings` attaches a span
//! snapshot to every outcome without changing any answer, batches
//! report latency quantiles from the shared histogram type, and the
//! sharded service folds per-shard timings in under `shard-N` groups.

use std::sync::Arc;

use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{Coding, IndexOptions, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_query::{parse_query, Query};
use si_service::{QueryService, ServiceConfig, ShardedQueryService};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-svc-obs-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const QUERIES: &[&str] = &[
    "NP(DT)(NN)",
    "S(NP)(VP)",
    "S(NP(NN))(VP)",
    "VP(//NN)",
    "NP(JJ)(NN)",
    "NP(DT)(NN)",
];

fn queries(interner: &mut si_parsetree::LabelInterner) -> Vec<Query> {
    QUERIES
        .iter()
        .map(|q| parse_query(q, interner).unwrap())
        .collect()
}

#[test]
fn collect_timings_fills_snapshots_without_changing_answers() {
    let corpus = GeneratorConfig::default()
        .with_seed(0x0B5_0001)
        .generate(300);
    let mut interner = corpus.interner().clone();
    let queries = queries(&mut interner);
    let dir = tmp_dir("mono");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::SubtreeInterval),
        )
        .unwrap(),
    );
    let plain_svc = QueryService::new(
        Arc::clone(&index),
        ServiceConfig {
            threads: 3,
            ..ServiceConfig::default()
        },
    );
    let timed_svc = QueryService::new(
        Arc::clone(&index),
        ServiceConfig {
            threads: 3,
            collect_timings: true,
            ..ServiceConfig::default()
        },
    );
    let plain = plain_svc.run_batch(&queries).unwrap();
    let timed = timed_svc.run_batch(&queries).unwrap();
    for (i, (p, t)) in plain.outcomes.iter().zip(&timed.outcomes).enumerate() {
        assert_eq!(
            p.result.matches, t.result.matches,
            "query {i}: collect_timings changed the answer"
        );
        assert!(p.timings.is_none(), "query {i}: timings without opt-in");
        let snap = t.timings.as_ref().expect("collect_timings snapshot");
        assert!(snap.stage_total() > 0, "query {i}: no time attributed");
        assert!(!snap.ops.is_empty(), "query {i}: no operator nodes");
    }
    // Per-batch and cumulative latency come from the shared histogram:
    // one record per query, quantiles ordered.
    for report in [&plain, &timed] {
        let l = &report.latency;
        assert_eq!(l.count, queries.len() as u64);
        // Quantiles are bucket midpoints (may exceed the exact max by
        // up to the ~3% bucket width) but are monotone in rank.
        assert!(l.p50 <= l.p90 && l.p90 <= l.p99 && l.p99 <= l.p999);
        assert!(l.min > 0, "a query cannot take zero nanoseconds");
    }
    assert_eq!(timed_svc.latency_summary().count, queries.len() as u64);
    timed_svc.run_batch(&queries).unwrap();
    assert_eq!(
        timed_svc.latency_summary().count,
        2 * queries.len() as u64,
        "cumulative histogram must span batches"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_batch_absorbs_shard_timings_under_group_nodes() {
    let corpus = GeneratorConfig::default()
        .with_seed(0x0B5_0002)
        .generate(240);
    let mut interner = corpus.interner().clone();
    let queries = queries(&mut interner);
    let dir = tmp_dir("sharded");
    let index = Arc::new(
        ShardedIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::SubtreeInterval),
            ShardedBuildConfig {
                shards: 3,
                workers: 2,
                mode: ShardBuildMode::InMemory,
            },
        )
        .unwrap(),
    );
    let svc = ShardedQueryService::new(
        index,
        ServiceConfig {
            threads: 2,
            collect_timings: true,
            ..ServiceConfig::default()
        },
    );
    let report = svc.run_batch(&queries).unwrap();
    assert_eq!(report.latency.count, queries.len() as u64);
    assert_eq!(svc.latency_summary().count, queries.len() as u64);
    let mut saw_snapshot = false;
    for (i, outcome) in report.outcomes.iter().enumerate() {
        // A query every shard proves empty never runs, so it carries no
        // snapshot; any query that did run must group by shard.
        let Some(snap) = &outcome.timings else {
            continue;
        };
        saw_snapshot = true;
        assert!(snap.stage_total() > 0, "query {i}: no time attributed");
        let roots = snap.roots();
        assert!(!roots.is_empty());
        for r in roots {
            assert!(
                snap.ops[r].label.starts_with("shard-"),
                "query {i}: root {:?} is not a shard group",
                snap.ops[r].label
            );
        }
    }
    assert!(saw_snapshot, "no query produced a timings snapshot");
    std::fs::remove_dir_all(&dir).ok();
}
