//! Registry-spine tests: the service's process-wide metrics must agree
//! with the per-query `EvalStats` view (same cells, folded exactly once
//! per query — sharded included), the live pool gauges must return to
//! zero at rest, and `sync_metrics` must mirror every subsystem in.

use std::sync::Arc;

use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{Coding, IndexOptions, SubtreeIndex};
use si_corpus::{fb_query_set, wh_query_set, GeneratorConfig};
use si_query::Query;
use si_service::{QueryService, ServiceConfig, ShardedQueryService};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-metrics-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The usual service workload: WH set + corpus-derived FB set (hits and
/// guaranteed misses, heavy cover overlap).
fn workload(corpus: &si_corpus::Corpus, seed: u64) -> Vec<Query> {
    let mut interner = corpus.interner().clone();
    let heldout = GeneratorConfig::default()
        .with_seed(seed + 1)
        .generate_into(60, &mut interner);
    let mut queries: Vec<Query> = wh_query_set(&mut interner)
        .into_iter()
        .map(|q| q.query)
        .collect();
    queries.extend(
        fb_query_set(corpus, &heldout, seed + 2)
            .into_iter()
            .map(|q| q.query),
    );
    queries
}

#[test]
fn mono_service_registry_agrees_with_evalstats() {
    let seed = 0x0B5E_0001;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(200);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("mono");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap(),
    );
    let service = QueryService::new(
        index,
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let mut report = service.run_batch(&queries).unwrap();
    let second = service.run_batch(&queries).unwrap();
    report.outcomes.extend(second.outcomes);

    let snap = service.sync_metrics();
    assert_eq!(
        snap.counters["service.queries"],
        2 * queries.len() as u64,
        "every query folded exactly once"
    );
    assert_eq!(snap.counters["service.batches"], 2);

    // The registry's eval.* counters are the fold of the per-query view.
    let sum = |f: fn(&si_core::eval::EvalStats) -> u64| -> u64 {
        report.outcomes.iter().map(|o| f(&o.result.stats)).sum()
    };
    assert_eq!(snap.counters["eval.covers"], sum(|s| s.covers as u64));
    assert_eq!(snap.counters["eval.joins"], sum(|s| s.joins as u64));
    assert_eq!(
        snap.counters["eval.postings_fetched"],
        sum(|s| s.postings_fetched as u64)
    );
    assert_eq!(snap.counters["eval.seeks"], sum(|s| s.seeks));
    assert_eq!(
        snap.counters["eval.postings_skipped"],
        sum(|s| s.postings_skipped)
    );
    assert_eq!(
        snap.counters["service.matches"],
        report
            .outcomes
            .iter()
            .map(|o| o.result.matches.len() as u64)
            .sum::<u64>()
    );

    // Latency landed in the windowed histogram, once per query.
    assert_eq!(
        snap.histograms["service.latency_ns"].count,
        2 * queries.len() as u64
    );

    // At rest the pool gauges are level again.
    assert_eq!(snap.gauges["service.queue_depth"], 0);
    assert_eq!(snap.gauges["service.workers_busy"], 0);

    // sync_metrics mirrored the subsystems: the block cache saw
    // traffic, and the pager names exist with plausible totals.
    assert!(snap.counters["blockcache.hits"] + snap.counters["blockcache.misses"] > 0);
    assert!(snap.counters.contains_key("pager.reads"));
    assert!(snap.counters.contains_key("pager.mmap_reads"));
    assert!(snap.counters.contains_key("tuplepool.hits"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_service_folds_each_query_once() {
    let seed = 0x0B5E_0002;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(200);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("sharded");
    ShardedIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(3, Coding::RootSplit),
        ShardedBuildConfig {
            shards: 4,
            workers: 2,
            mode: ShardBuildMode::InMemory,
        },
    )
    .unwrap();
    let service = ShardedQueryService::new(
        Arc::new(ShardedIndex::open(&dir).unwrap()),
        ServiceConfig {
            threads: 4,
            result_cache_mb: 8,
            ..ServiceConfig::default()
        },
    );
    let report = service.run_batch(&queries).unwrap();
    let snap = service.sync_metrics();

    // Despite 4 inner per-shard services sharing the cells, each query
    // counts once — the double-counting trap this layering avoids.
    assert_eq!(snap.counters["service.queries"], queries.len() as u64);
    assert_eq!(
        snap.histograms["service.latency_ns"].count,
        queries.len() as u64
    );
    let skips: u64 = report
        .outcomes
        .iter()
        .map(|o| o.result.stats.shards_skipped as u64)
        .sum();
    assert_eq!(snap.counters["shard.skips"], skips);
    assert_eq!(
        snap.counters["shard.visits"],
        report
            .outcomes
            .iter()
            .map(|o| o.result.stats.shards as u64)
            .sum::<u64>()
    );
    assert_eq!(snap.gauges["service.queue_depth"], 0);
    assert_eq!(snap.gauges["service.workers_busy"], 0);

    // Warm repeat: result-cache hits still count as queries, and the
    // mirrored resultcache.* counters see the probes.
    let warm = service.run_batch(&queries).unwrap();
    assert!(warm.outcomes.iter().any(|o| o.result.stats.result_hits > 0));
    let snap2 = service.sync_metrics();
    assert_eq!(snap2.counters["service.queries"], 2 * queries.len() as u64);
    assert!(snap2.counters["resultcache.hits"] > 0);

    // Delta between the two scrapes covers exactly the warm batch.
    let delta = snap2.counter_delta_since(&snap);
    assert_eq!(delta["service.queries"], queries.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collect_metrics_off_leaves_registry_quiet() {
    let seed = 0x0B5E_0003;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(120);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("quiet");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap(),
    );
    let service = QueryService::new(
        index,
        ServiceConfig {
            threads: 2,
            collect_metrics: false,
            ..ServiceConfig::default()
        },
    );
    let report = service.run_batch(&queries).unwrap();
    assert_eq!(report.outcomes.len(), queries.len());
    let snap = service.metrics().registry().snapshot();
    // No folds, no gauge motion — the cells exist (pre-resolved at
    // construction) but hold zero.
    assert_eq!(snap.counters["service.queries"], 0);
    assert_eq!(snap.gauges["service.queue_depth"], 0);
    assert_eq!(snap.histograms["service.latency_ns"].count, 0);
    std::fs::remove_dir_all(&dir).ok();
}
