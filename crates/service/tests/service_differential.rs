//! Differential and resource-bound tests for the concurrent query
//! service: whatever the thread count, batch composition, coding scheme
//! or cache pressure, `run_batch` must return exactly the sequential
//! streaming executor's match set per query — and the decoded-block
//! cache must never exceed its byte budget.

use std::sync::Arc;

use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{BlockCacheConfig, Coding, IndexOptions, SubtreeIndex};
use si_corpus::{fb_query_set, wh_query_set, GeneratorConfig};
use si_query::Query;
use si_service::{QueryService, ServiceConfig, ShardedQueryService};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-service-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A randomized workload: the corpus-derived FB query set (drawn from
/// indexed and held-out trees, so it contains hits and misses) plus the
/// fixed WH set — 118 queries with heavy cover-key overlap.
fn workload(corpus: &si_corpus::Corpus, seed: u64) -> Vec<Query> {
    let mut interner = corpus.interner().clone();
    let heldout = GeneratorConfig::default()
        .with_seed(seed + 1)
        .generate_into(100, &mut interner);
    let mut queries: Vec<Query> = wh_query_set(&mut interner)
        .into_iter()
        .map(|q| q.query)
        .collect();
    queries.extend(
        fb_query_set(corpus, &heldout, seed + 2)
            .into_iter()
            .map(|q| q.query),
    );
    queries
}

#[test]
fn batched_matches_equal_sequential_across_threads_and_codings() {
    let seed = 0xBA7C_0001;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(400);
    let queries = workload(&corpus, seed);
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("diff-{coding:?}").to_lowercase());
        let index = Arc::new(
            SubtreeIndex::build(
                &dir,
                corpus.trees(),
                corpus.interner(),
                IndexOptions::new(3, coding),
            )
            .unwrap(),
        );
        // Sequential ground truth through the plain streaming executor.
        let expected: Vec<_> = queries
            .iter()
            .map(|q| index.evaluate(q).unwrap().matches)
            .collect();
        for threads in [1, 4] {
            let service = QueryService::new(
                index.clone(),
                ServiceConfig {
                    threads,
                    ..ServiceConfig::default()
                },
            );
            // Two rounds: cold cache, then warm.
            for round in 0..2 {
                let report = service.run_batch(&queries).unwrap();
                assert_eq!(report.outcomes.len(), queries.len());
                for (i, outcome) in report.outcomes.iter().enumerate() {
                    assert_eq!(
                        outcome.result.matches, expected[i],
                        "query {i} under {coding}, {threads} threads, round {round}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn shared_scans_actually_fire_on_overlapping_batches() {
    let seed = 0xBA7C_0002;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(300);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("sharing");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap(),
    );
    let service = QueryService::new(index, ServiceConfig::default());
    let report = service.run_batch(&queries).unwrap();
    assert!(
        report.shared_keys > 0,
        "the WH+FB workload must overlap on cover keys"
    );
    assert!(
        report.shared_consumers >= 2 * report.shared_keys,
        "each shared key feeds >= 2 pipelines: {} keys, {} consumers",
        report.shared_keys,
        report.shared_consumers
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_never_exceeds_configured_budget() {
    let seed = 0xBA7C_0003;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(400);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("evict");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap(),
    );
    // A budget tiny enough that the workload's posting lists thrash it.
    let budget = 16 << 10;
    let service = QueryService::new(
        index.clone(),
        ServiceConfig {
            threads: 4,
            cache: BlockCacheConfig {
                budget_bytes: budget,
                shards: 4,
                block_postings: 64,
            },
            ..ServiceConfig::default()
        },
    );
    let expected: Vec<_> = queries
        .iter()
        .map(|q| index.evaluate(q).unwrap().matches)
        .collect();
    for _ in 0..2 {
        let report = service.run_batch(&queries).unwrap();
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.result.matches, expected[i], "query {i}");
        }
    }
    let stats = service.cache_stats();
    assert!(
        stats.peak_bytes as usize <= budget,
        "peak cache bytes {} exceed budget {budget}",
        stats.peak_bytes
    );
    assert!(stats.evictions > 0, "a thrashed cache must evict");
    std::fs::remove_dir_all(&dir).ok();
}

/// The sharded service must return, per query, exactly the sequential
/// streaming executor's matches over a monolithic index of the same
/// corpus — across codings, thread counts and cold/warm caches.
#[test]
fn sharded_service_matches_monolith_sequential() {
    let seed = 0xBA7C_0004;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(350);
    let queries = workload(&corpus, seed);
    for coding in Coding::ALL {
        let mono_dir = tmp_dir(&format!("shsvc-mono-{coding:?}").to_lowercase());
        let shard_dir = tmp_dir(&format!("shsvc-shard-{coding:?}").to_lowercase());
        let options = IndexOptions::new(3, coding);
        let mono =
            SubtreeIndex::build(&mono_dir, corpus.trees(), corpus.interner(), options).unwrap();
        let sharded = Arc::new(
            ShardedIndex::build(
                &shard_dir,
                corpus.trees(),
                corpus.interner(),
                options,
                ShardedBuildConfig {
                    shards: 4,
                    workers: 2,
                    mode: ShardBuildMode::InMemory,
                },
            )
            .unwrap(),
        );
        let expected: Vec<_> = queries
            .iter()
            .map(|q| mono.evaluate(q).unwrap().matches)
            .collect();
        for threads in [1, 4] {
            let service = ShardedQueryService::new(
                sharded.clone(),
                ServiceConfig {
                    threads,
                    ..ServiceConfig::default()
                },
            );
            for round in 0..2 {
                let report = service.run_batch(&queries).unwrap();
                assert_eq!(report.outcomes.len(), queries.len());
                for (i, outcome) in report.outcomes.iter().enumerate() {
                    assert_eq!(
                        outcome.result.matches, expected[i],
                        "query {i} under {coding}, {threads} threads, round {round}"
                    );
                    assert_eq!(outcome.result.stats.shards, 4, "query {i}");
                }
            }
        }
        std::fs::remove_dir_all(&mono_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }
}

/// The cross-batch shared-scan pool is a byte-bounded LRU now: under a
/// budget far smaller than the workload's shared vectors it must evict
/// (not refuse admission), keep residency within budget, and hit on
/// keys hot across consecutive batches — all without changing answers.
#[test]
fn shared_pool_lru_evicts_and_stays_within_budget() {
    let seed = 0xBA7C_0005;
    let corpus = GeneratorConfig::default().with_seed(seed).generate(400);
    let queries = workload(&corpus, seed);
    let dir = tmp_dir("pool-lru");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap(),
    );
    let budget = 32 << 10;
    let service = QueryService::new(
        index.clone(),
        ServiceConfig {
            threads: 2,
            shared_pool_budget_bytes: budget,
            ..ServiceConfig::default()
        },
    );
    let expected: Vec<_> = queries
        .iter()
        .map(|q| index.evaluate(q).unwrap().matches)
        .collect();
    // Two rounds per workload half: the repeat round must hit the pool
    // on whatever survived the first (insert order varies with worker
    // scheduling, but the key sets are identical, so any resident
    // vector hits), and switching halves under the tiny budget forces
    // evictions — the insert-until-budget pool would instead pin the
    // first half's keys forever.
    let mid = queries.len() / 2;
    for round in 0..4 {
        let (slice, offset) = if round < 2 {
            (&queries[..mid], 0)
        } else {
            (&queries[mid..], mid)
        };
        let report = service.run_batch(slice).unwrap();
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.result.matches, expected[offset + i], "query {i}");
        }
    }
    let pool = service.pool_stats();
    assert!(
        pool.peak_bytes <= budget as u64,
        "pool peak {} exceeds budget {budget}",
        pool.peak_bytes
    );
    assert!(pool.current_bytes <= budget as u64);
    assert!(pool.insertions > 0, "shared vectors must be admitted");
    assert!(
        pool.evictions > 0,
        "a rotating workload over a tiny budget must evict: {pool:?}"
    );
    assert!(
        pool.hits > 0,
        "keys hot across batches must be served from the pool: {pool:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_batch_is_fine() {
    let corpus = GeneratorConfig::default().with_seed(1).generate(50);
    let dir = tmp_dir("empty");
    let index = Arc::new(
        SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(2, Coding::RootSplit),
        )
        .unwrap(),
    );
    let service = QueryService::new(index, ServiceConfig::default());
    let report = service.run_batch(&[]).unwrap();
    assert!(report.outcomes.is_empty());
    assert_eq!(report.shared_keys, 0);
    std::fs::remove_dir_all(&dir).ok();
}
