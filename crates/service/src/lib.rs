//! Concurrent query service over the Subtree Index: a shared-scan batch
//! scheduler with a decoded posting-block cache.
//!
//! The single-query path (`si_core::exec`) is pull-based and fast, but
//! serving heavy traffic one query at a time leaves two wins on the
//! table that this crate collects:
//!
//! 1. **Shared scans.** Concurrent queries decompose into covers that
//!    frequently collide on hot canonical keys (`NP(NN)` appears in half
//!    a treebank workload). [`QueryService::run_batch`] groups the
//!    batch's cover keys, pre-decodes every key used by ≥
//!    [`ServiceConfig::shared_scan_min`] pipelines **once** into a
//!    shared tuple vector ([`si_core::exec::collect_scan_tuples`]), and
//!    every consumer pipeline scans it via
//!    [`SharedScan`](si_core::exec::SharedScan) — one `PostingCursor`
//!    pass feeding many queries.
//! 2. **Decoded-block cache.** All remaining scans run through a
//!    sharded, byte-bounded [`BlockCache`]: hot posting lists skip the
//!    pager *and* varint decode on repeat access, across batches.
//!
//! Worker threads pull queries from a shared counter; the storage layer
//! below (`si_storage::Pager`) uses sharded latches and positioned I/O,
//! so workers streaming different lists never serialize on a global
//! lock. Results are returned in input order with per-query latency,
//! and match sets are bit-identical to the sequential streaming
//! executor — the service differential suite and the
//! `BENCH_service.json` harness both assert it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use si_core::cover::decompose;
use si_core::eval::{EvalResult, EvalStats};
use si_core::exec::{collect_scan_tuples, ExecContext, SharedTuples, TreeCache};
use si_core::join::Tuple;
use si_core::sharded::{merge_shard_stats, shard_provably_empty_with, ShardedIndex};
use si_core::stats::{intersect_tid_ranges, key_stats_cached, KeyStats, StatsCache};
use si_core::{
    canonical_query_key, pack_match, unpack_match, BlockCache, BlockCacheConfig, BlockCacheStats,
    Coding, ResultCache, ResultCacheConfig, ResultCacheStats, SubtreeIndex,
};
use si_obs::{
    Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry, Timings,
    TimingsSnapshot, WindowedHistogram,
};
use si_query::Query;
use si_storage::{Result, StorageError};

/// Tuning knobs of a [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads evaluating queries (and pre-decoding shared
    /// scans). Defaults to the machine's available parallelism.
    pub threads: usize,
    /// Decoded-block cache configuration.
    pub cache: BlockCacheConfig,
    /// Queries per batch in line-oriented serving (`si serve`).
    pub batch_size: usize,
    /// Minimum number of pipelines that must scan a cover key before
    /// the batch pre-decodes it once and shares the tuples.
    pub shared_scan_min: usize,
    /// Byte budget of the cross-batch pool keeping hot shared tuple
    /// vectors pre-decoded between batches (0 disables pooling).
    pub shared_pool_budget_bytes: usize,
    /// Byte ceiling for eagerly pre-decoding a shared key that is not
    /// the base scan of any query in the batch. Pipelines often consume
    /// only a prefix of their *non-base* inputs (merge joins stop when
    /// the other side exhausts), so fully pre-decoding a huge list can
    /// cost more than it saves; above this size such keys rely on the
    /// block cache's lazy per-block sharing instead. Base-scan keys are
    /// always drained fully and are shared regardless of size.
    pub shared_scan_max_bytes: u64,
    /// Collect per-query timing spans ([`si_obs::Timings`]) into every
    /// [`QueryOutcome::timings`]. Off by default: workers then pass no
    /// accumulator at all, so the executor's instrumented paths cost
    /// one branch. Latency histograms are always recorded — they cost
    /// four relaxed atomics per query.
    pub collect_timings: bool,
    /// Byte budget (MiB) of the result cache storing whole per-shard
    /// match sets keyed by `(canonical query, coding, shard id, shard
    /// generation)`; 0 disables it. Off by default at the library
    /// level so differential tests compare like with like; the CLI's
    /// batch/serve modes turn it on. See `si_core::resultcache`.
    pub result_cache_mb: usize,
    /// Feed the process-wide metrics registry ([`ServiceMetrics`]):
    /// queue-depth / busy-worker gauges around the worker pool and a
    /// per-query fold of `EvalStats` plus latency into the registry's
    /// counters and windowed histogram. On by default — the whole path
    /// is relaxed atomics (the `experiments obs` bench gates it at
    /// ≤2% of batch throughput); turn off to measure that floor.
    pub collect_metrics: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache: BlockCacheConfig::default(),
            batch_size: 64,
            shared_scan_min: 2,
            shared_scan_max_bytes: 64 << 10,
            shared_pool_budget_bytes: 64 << 20,
            collect_timings: false,
            result_cache_mb: 0,
            collect_metrics: true,
        }
    }
}

/// The result cache a [`ServiceConfig`] asks for, if any.
fn result_cache_from(config: &ServiceConfig) -> Option<Arc<ResultCache>> {
    (config.result_cache_mb > 0).then(|| {
        Arc::new(ResultCache::new(ResultCacheConfig::with_budget(
            config.result_cache_mb << 20,
        )))
    })
}

/// One query's outcome within a batch.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Matches (identical to the sequential streaming executor's) plus
    /// evaluation statistics. The *stats* reflect service execution:
    /// shared scans count consumed tuples, cache/pager counters are
    /// nonzero — they intentionally differ from a sequential run.
    pub result: EvalResult,
    /// Wall-clock seconds this query spent in its worker (queueing
    /// excluded).
    pub seconds: f64,
    /// Stage/operator timing snapshot, when the service was configured
    /// with [`ServiceConfig::collect_timings`]. For a sharded service
    /// the per-shard snapshots are folded in under `shard-N` group
    /// nodes.
    pub timings: Option<TimingsSnapshot>,
}

/// The result of [`QueryService::run_batch`].
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query outcomes, in input order.
    pub outcomes: Vec<QueryOutcome>,
    /// Wall-clock seconds for the whole batch (grouping, shared decode
    /// and evaluation).
    pub wall_seconds: f64,
    /// Cover keys pre-decoded once and shared.
    pub shared_keys: usize,
    /// Total pipelines fed by shared scans (each saved its own decode).
    pub shared_consumers: usize,
    /// This batch's per-query latency distribution (nanoseconds):
    /// count/min/max and p50/p90/p99/p999 from the shared log-linear
    /// histogram type.
    pub latency: HistogramSummary,
}

impl BatchReport {
    /// Queries per second over the batch wall-clock.
    pub fn qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.outcomes.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Mean per-query latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.outcomes.iter().map(|o| o.seconds).sum::<f64>() / self.outcomes.len() as f64
        }
    }
}

/// Counter snapshot of a [`QueryService`]'s cross-batch tuple pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuplePoolStats {
    /// Shared keys served from the pool (no re-decode).
    pub hits: u64,
    /// Shared keys the pool did not hold.
    pub misses: u64,
    /// Vectors admitted.
    pub insertions: u64,
    /// Vectors evicted to stay within budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub current_bytes: u64,
    /// High-water mark of resident bytes (must stay ≤ the budget).
    pub peak_bytes: u64,
}

impl TuplePoolStats {
    /// Mirrors this snapshot into `registry` under the stable
    /// `tuplepool.*` dotted names (monotone counters via
    /// `Counter::set`, resident bytes as a gauge).
    pub fn register_into(&self, registry: &Registry) {
        registry.counter("tuplepool.hits").set(self.hits);
        registry.counter("tuplepool.misses").set(self.misses);
        registry
            .counter("tuplepool.insertions")
            .set(self.insertions);
        registry.counter("tuplepool.evictions").set(self.evictions);
        registry
            .gauge("tuplepool.bytes")
            .set(i64::try_from(self.current_bytes).unwrap_or(i64::MAX));
        registry
            .gauge("tuplepool.peak_bytes")
            .set(i64::try_from(self.peak_bytes).unwrap_or(i64::MAX));
    }
}

/// The process-wide metrics spine of a query service: one shared
/// [`Registry`] plus pre-resolved cells for everything the hot path
/// touches, so recording never takes the registry's name lock.
///
/// Two kinds of metric feed it:
///
/// * **Folded** — after each batch the service folds every query's
///   final merged [`EvalStats`] into cumulative `eval.*` / `shard.*`
///   counters and its latency into the `service.latency_ns` windowed
///   histogram, exactly once per query (a sharded service folds at the
///   outer layer; its inner per-shard services share these cells but
///   have folding disabled). `EvalStats` thus stays the per-query view
///   over the same quantities the registry accumulates for the process.
/// * **Mirrored** — subsystems that already keep their own monotone
///   atomics (pager, block cache, result cache, tuple pool) are copied
///   in at snapshot time via `Counter::set` / `Gauge::set` by
///   [`QueryService::sync_metrics`] (`pager.*`, `blockcache.*`,
///   `resultcache.*`, `tuplepool.*` names).
///
/// The `service.queue_depth` / `service.workers_busy` gauges are
/// updated live by the worker pool regardless of layer — they describe
/// the workers wherever those run.
#[derive(Clone)]
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    matches: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    workers_busy: Arc<Gauge>,
    latency: Arc<WindowedHistogram>,
    covers: Arc<Counter>,
    joins: Arc<Counter>,
    postings_fetched: Arc<Counter>,
    validated_trees: Arc<Counter>,
    postings_borrowed: Arc<Counter>,
    sort_exchanges_avoided: Arc<Counter>,
    seeks: Arc<Counter>,
    postings_skipped: Arc<Counter>,
    range_pruned: Arc<Counter>,
    shard_visits: Arc<Counter>,
    shard_skips: Arc<Counter>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// A fresh spine over its own registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// A spine over an existing registry (cells are get-or-created by
    /// their stable dotted names, so two spines over one registry share
    /// cells).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self {
            queries: registry.counter("service.queries"),
            batches: registry.counter("service.batches"),
            matches: registry.counter("service.matches"),
            queue_depth: registry.gauge("service.queue_depth"),
            workers_busy: registry.gauge("service.workers_busy"),
            latency: registry.windowed("service.latency_ns"),
            covers: registry.counter("eval.covers"),
            joins: registry.counter("eval.joins"),
            postings_fetched: registry.counter("eval.postings_fetched"),
            validated_trees: registry.counter("eval.validated_trees"),
            postings_borrowed: registry.counter("eval.postings_borrowed"),
            sort_exchanges_avoided: registry.counter("eval.sort_exchanges_avoided"),
            seeks: registry.counter("eval.seeks"),
            postings_skipped: registry.counter("eval.postings_skipped"),
            range_pruned: registry.counter("eval.range_pruned"),
            shard_visits: registry.counter("shard.visits"),
            shard_skips: registry.counter("shard.skips"),
            registry,
        }
    }

    /// The backing registry (snapshot it for telemetry lines).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The `service.latency_ns` windowed histogram — cumulative
    /// quantiles plus a per-tick resettable window for the periodic
    /// telemetry emitter.
    pub fn latency(&self) -> &Arc<WindowedHistogram> {
        &self.latency
    }

    /// Folds one completed query's outcome into the cumulative cells.
    /// Called exactly once per query by the outermost service layer.
    fn fold_outcome(&self, outcome: &QueryOutcome) {
        self.queries.inc();
        self.matches.add(outcome.result.matches.len() as u64);
        self.latency.record_secs(outcome.seconds);
        let s = &outcome.result.stats;
        self.covers.add(s.covers as u64);
        self.joins.add(s.joins as u64);
        self.postings_fetched.add(s.postings_fetched as u64);
        self.validated_trees.add(s.validated_trees as u64);
        self.postings_borrowed.add(s.postings_borrowed);
        self.sort_exchanges_avoided
            .add(s.sort_exchanges_avoided as u64);
        self.seeks.add(s.seeks);
        self.postings_skipped.add(s.postings_skipped);
        self.range_pruned.add(u64::from(s.range_pruned));
        self.shard_visits.add(s.shards as u64);
        self.shard_skips.add(s.shards_skipped as u64);
    }

    /// Folds a whole batch: one `service.batches` tick plus every
    /// outcome.
    fn fold_batch(&self, outcomes: &[QueryOutcome]) {
        self.batches.inc();
        for outcome in outcomes {
            self.fold_outcome(outcome);
        }
    }
}

/// Leading bytes hinted per cover of a batch's *next* query (see
/// [`QueryService::run_batch`]) — matches the executor's own plan-time
/// cover hint depth.
const NEXT_QUERY_HINT_BYTES: u64 = 64 * 1024;

/// Mirrors the process-wide pager totals
/// ([`si_storage::process_counters`]) into `registry` under the
/// `pager.*` names: `reads` are physical page reads (cache misses),
/// `mmap_reads` the zero-copy mapped subset of hits.
pub fn register_pager_metrics(registry: &Registry) {
    let p = si_storage::process_counters();
    registry.counter("pager.hits").set(p.hits);
    registry.counter("pager.reads").set(p.misses);
    registry.counter("pager.evictions").set(p.evictions);
    registry.counter("pager.mmap_reads").set(p.mmap_reads);
    registry
        .counter("pager.prefetch.issued")
        .set(p.prefetch_issued);
    registry
        .counter("pager.prefetch.useful")
        .set(p.prefetch_useful);
    registry
        .counter("pager.prefetch.wasted")
        .set(p.prefetch_wasted);
    registry
        .counter("pager.prefetch.cancelled")
        .set(p.prefetch_cancelled);
}

struct PoolEntry {
    tuples: Arc<Vec<Tuple>>,
    bytes: usize,
    /// Logical clock of the last touch (get or insert).
    stamp: u64,
}

/// Byte-bounded **LRU** pool of decoded shared tuple vectors, the
/// cross-batch successor of PR 2's insert-until-budget pool: like the
/// block cache, an insert over budget evicts the least-recently-used
/// entries until the new vector fits, so hot keys rotate in as the
/// workload shifts instead of the first-seen keys squatting the budget
/// forever. Entries are few and large (whole decoded lists), so
/// recency is a per-entry stamp and eviction scans for the minimum —
/// no intrusive list needed at this granularity.
struct TuplePool {
    map: HashMap<Vec<u8>, PoolEntry>,
    clock: u64,
    bytes: usize,
    budget: usize,
    stats: TuplePoolStats,
}

impl TuplePool {
    fn new(budget: usize) -> Self {
        Self {
            map: HashMap::new(),
            clock: 0,
            bytes: 0,
            budget,
            stats: TuplePoolStats::default(),
        }
    }

    fn entry_bytes(key: &[u8], tuples: &[Tuple]) -> usize {
        key.len() + std::mem::size_of_val(tuples)
    }

    /// Looks `key` up, refreshing its recency on a hit.
    fn get(&mut self, key: &[u8]) -> Option<Arc<Vec<Tuple>>> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.clock;
                self.stats.hits += 1;
                Some(entry.tuples.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Admits a freshly decoded vector, evicting least-recently-used
    /// entries until it fits; a vector larger than the whole budget is
    /// never admitted (it would evict everything for one key).
    fn insert(&mut self, key: &[u8], tuples: &Arc<Vec<Tuple>>) {
        let bytes = Self::entry_bytes(key, tuples);
        if bytes > self.budget || self.map.contains_key(key) {
            return;
        }
        while self.bytes + bytes > self.budget {
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = self.map.remove(&lru).expect("lru key present");
            self.bytes -= evicted.bytes;
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.map.insert(
            key.to_vec(),
            PoolEntry {
                tuples: tuples.clone(),
                bytes,
                stamp: self.clock,
            },
        );
        self.bytes += bytes;
        self.stats.insertions += 1;
        self.stats.current_bytes = self.bytes as u64;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.bytes as u64);
    }

    fn stats(&self) -> TuplePoolStats {
        TuplePoolStats {
            current_bytes: self.bytes as u64,
            ..self.stats
        }
    }
}

/// A multi-threaded batch query service; see the module docs.
pub struct QueryService {
    index: Arc<SubtreeIndex>,
    cache: Arc<BlockCache>,
    /// Memoized per-key planner statistics (stats-segment probes /
    /// B+Tree descents); valid for the service's lifetime because the
    /// index is read-only. Subsumes PR 2's `LenCache` — the cached
    /// [`KeyStats::bytes`] carries the encoded length.
    stats: StatsCache,
    /// Decoded-tree cache for validation phases (hot candidate trees
    /// recur across a batch's queries).
    trees: Arc<TreeCache>,
    /// Cross-batch LRU pool of shared tuple vectors, byte-bounded by
    /// [`ServiceConfig::shared_pool_budget_bytes`]; hot keys stay
    /// pre-decoded across batches (the index is read-only) and cold
    /// ones are evicted as the workload rotates.
    shared_pool: Mutex<TuplePool>,
    /// Cumulative per-query latency histogram (nanoseconds), recorded
    /// for every query the service ever ran. Lock-free: workers record
    /// straight into the shared atomics.
    latency: Histogram,
    /// Whole-answer result cache ([`si_core::resultcache`]), when
    /// [`ServiceConfig::result_cache_mb`] is nonzero. A monolithic
    /// index is one immutable state for the service's lifetime, so
    /// every entry lives under the fixed epoch `(shard 0, generation
    /// 0)` — an injected cache shared across services must therefore
    /// only ever see *this* index's answers (the sharded service,
    /// whose manifest generations disambiguate states, is the one that
    /// shares a cache across an ingest).
    results: Option<Arc<ResultCache>>,
    /// Process-wide metrics spine (shared cells when this service is a
    /// shard of a [`ShardedQueryService`]).
    metrics: ServiceMetrics,
    /// Whether this layer folds completed outcomes into the metrics
    /// cells. True standalone; false for the inner per-shard services
    /// of a sharded service, whose *outer* layer folds each query's
    /// final merged stats exactly once.
    fold_outcomes: bool,
    config: ServiceConfig,
}

impl QueryService {
    /// Creates a service over `index`. The index should be in the
    /// default streaming exec mode; the materializing oracle works but
    /// ignores the cache and shared scans.
    pub fn new(index: Arc<SubtreeIndex>, config: ServiceConfig) -> Self {
        Self::with_metrics(index, config, ServiceMetrics::new(), true)
    }

    /// [`QueryService::new`] recording into an existing metrics spine.
    /// `fold_outcomes` must be false when a parent layer (the sharded
    /// service) folds final merged outcomes itself.
    pub fn with_metrics(
        index: Arc<SubtreeIndex>,
        config: ServiceConfig,
        metrics: ServiceMetrics,
        fold_outcomes: bool,
    ) -> Self {
        Self {
            index,
            cache: Arc::new(BlockCache::new(config.cache)),
            stats: StatsCache::default(),
            trees: Arc::new(TreeCache::default()),
            shared_pool: Mutex::new(TuplePool::new(config.shared_pool_budget_bytes)),
            latency: Histogram::new(),
            results: result_cache_from(&config),
            metrics,
            fold_outcomes,
            config,
        }
    }

    /// The metrics spine this service records into.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Mirrors every subsystem's own counters (pager, block cache,
    /// result cache, tuple pool) into the registry and returns a full
    /// snapshot — the scrape entry point for telemetry ticks.
    pub fn sync_metrics(&self) -> MetricsSnapshot {
        let registry = self.metrics.registry();
        self.cache_stats().register_into(registry);
        if let Some(rc) = self.result_cache_stats() {
            rc.register_into(registry);
        }
        self.pool_stats().register_into(registry);
        register_pager_metrics(registry);
        registry.snapshot()
    }

    /// Replaces the result cache with a shared instance (see the
    /// `results` field docs for the aliasing contract).
    pub fn with_result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.results = Some(cache);
        self
    }

    /// Result-cache counters, when a result cache is configured.
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.results.as_ref().map(|c| c.stats())
    }

    /// The result cache, if one is configured.
    pub fn result_cache(&self) -> Option<Arc<ResultCache>> {
        self.results.clone()
    }

    /// Cumulative per-query latency quantiles (nanoseconds) across
    /// every batch this service has run.
    pub fn latency_summary(&self) -> HistogramSummary {
        self.latency.summary()
    }

    /// Batch-mode lookahead: while a worker drains its current query,
    /// hint the covers of the query it will pick **next**, so that
    /// query's leading posting pages arrive under the current drain.
    /// Covers whose first decoded block is already cached are skipped
    /// (warm queries cost one non-counting peek). Tickets are detached:
    /// the beneficiary is a future stack frame, so the requests run to
    /// completion on their own — bounded by the prefetcher's
    /// process-wide queue cap rather than this frame's lifetime.
    fn hint_next_query(&self, query: &Query) {
        if !si_storage::prefetch_enabled() {
            return;
        }
        let options = self.index.options();
        let cover = decompose(query, options.mss, options.coding);
        for st in &cover.subtrees {
            if self.cache.contains(&st.key, 0) {
                continue;
            }
            if let Some(t) = self.index.prefetch_posting(&st.key, NEXT_QUERY_HINT_BYTES) {
                t.detach();
            }
        }
    }

    /// Admits a freshly decoded shared vector into the cross-batch pool
    /// (LRU replacement within the byte budget).
    fn pool_insert(&self, key: &[u8], tuples: &Arc<Vec<Tuple>>) {
        self.shared_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, tuples);
    }

    /// Cross-batch tuple-pool counters (cumulative).
    pub fn pool_stats(&self) -> TuplePoolStats {
        self.shared_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats()
    }

    /// The underlying index.
    pub fn index(&self) -> &Arc<SubtreeIndex> {
        &self.index
    }

    /// The configured batch size for line-oriented serving.
    pub fn batch_size(&self) -> usize {
        self.config.batch_size.max(1)
    }

    /// Decoded-block cache counters (cumulative across batches).
    pub fn cache_stats(&self) -> BlockCacheStats {
        self.cache.stats()
    }

    /// Evaluates `queries` concurrently, sharing scans of cover keys
    /// that several pipelines need. Results arrive in input order and
    /// match the sequential streaming executor exactly.
    pub fn run_batch(&self, queries: &[Query]) -> Result<BatchReport> {
        let started = Instant::now();
        if queries.is_empty() {
            return Ok(BatchReport {
                outcomes: Vec::new(),
                wall_seconds: started.elapsed().as_secs_f64(),
                shared_keys: 0,
                shared_consumers: 0,
                latency: HistogramSummary::default(),
            });
        }
        let threads = self.config.threads.max(1).min(queries.len());
        let options = self.index.options();
        let coding = options.coding.id();

        // ---- Phase 0: result-cache probe. ----
        // A monolithic index is one immutable state, so every entry
        // lives under epoch (0, 0). A hit bypasses the whole pipeline
        // — grouping, shared decode, worker eval — and costs one map
        // probe plus the unpack; only misses proceed.
        let mut prefilled: Vec<Option<QueryOutcome>> = Vec::with_capacity(queries.len());
        let mut miss: Vec<usize> = Vec::with_capacity(queries.len());
        let mut miss_keys: Vec<Arc<[u8]>> = Vec::new();
        match &self.results {
            Some(rcache) => {
                for (i, q) in queries.iter().enumerate() {
                    let q_started = Instant::now();
                    let key = canonical_query_key(q);
                    match rcache.get(&key, coding, 0, 0) {
                        Some(packed) => {
                            let stats = EvalStats {
                                result_hits: 1,
                                negative_hits: u64::from(packed.is_empty()),
                                ..EvalStats::default()
                            };
                            let seconds = q_started.elapsed().as_secs_f64();
                            self.latency.record_secs(seconds);
                            prefilled.push(Some(QueryOutcome {
                                result: EvalResult {
                                    matches: packed.iter().map(|&p| unpack_match(p)).collect(),
                                    stats,
                                },
                                seconds,
                                timings: None,
                            }));
                        }
                        None => {
                            prefilled.push(None);
                            miss.push(i);
                            miss_keys.push(key);
                        }
                    }
                }
            }
            None => {
                prefilled.resize_with(queries.len(), || None);
                miss.extend(0..queries.len());
            }
        }

        // ---- Phase 1: group cover keys across the batch. ----
        // Decomposition is pure CPU over tiny query trees; recomputing
        // it inside evaluate() later is cheaper than threading covers
        // through, and keeps the executor's entry point unchanged.
        let ctx_base = || ExecContext {
            cache: Some(self.cache.clone()),
            shared: None,
            stats: Some(self.stats.clone()),
            trees: Some(self.trees.clone()),
            ..ExecContext::default()
        };
        let mut usage: HashMap<Vec<u8>, usize> = HashMap::new();
        // Keys some pipeline drains fully (its base scan): always worth
        // pre-decoding when shared. Other keys may be consumed only
        // partially, so eager decode is capped by size.
        let mut base_keys: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        if options.coding != Coding::FilterBased {
            let probe_ctx = ctx_base();
            for q in miss.iter().map(|&i| &queries[i]) {
                let cover = decompose(q, options.mss, options.coding);
                let mut cover_stats: Vec<Option<KeyStats>> =
                    Vec::with_capacity(cover.subtrees.len());
                for st in &cover.subtrees {
                    cover_stats.push(key_stats_cached(&self.index, &st.key, &probe_ctx)?);
                }
                // A query with a missing key or disjoint tid ranges never
                // opens a scan, so it must not count toward shared-scan
                // usage (an eager decode for it would be pure waste).
                if cover_stats.iter().any(|s| s.is_none()) {
                    continue;
                }
                let all: Vec<KeyStats> = cover_stats.iter().map(|s| s.unwrap()).collect();
                let Some(common) = intersect_tid_ranges(&all) else {
                    continue;
                };
                for st in &cover.subtrees {
                    *usage.entry(st.key.clone()).or_insert(0) += 1;
                }
                // The planner's own ranks predict the base scan (the one
                // pipeline that drains its list fully) — shared ordering
                // logic, so the prediction cannot drift from the plan.
                let base = (0..all.len()).min_by_key(|&i| {
                    si_core::plan::cost_rank(
                        &all[i],
                        &cover.subtrees[i].key,
                        options.coding,
                        common,
                        i,
                    )
                });
                if let Some(i) = base {
                    base_keys.insert(cover.subtrees[i].key.clone());
                }
            }
        }
        let probe_ctx = ctx_base();
        let mut shared_keys: Vec<Vec<u8>> = Vec::new();
        let mut shared_consumers = 0usize;
        for (key, count) in &usage {
            if *count < self.config.shared_scan_min.max(2) {
                continue;
            }
            let Some(key_stats) = key_stats_cached(&self.index, key, &probe_ctx)? else {
                continue;
            };
            if base_keys.contains(key) || key_stats.bytes <= self.config.shared_scan_max_bytes {
                shared_keys.push(key.clone());
                shared_consumers += count;
            }
        }

        // ---- Phase 2: pre-decode shared keys once, in parallel. ----
        // The cross-batch pool short-circuits most of this on a warm
        // service: the index is read-only, so a decoded tuple vector
        // never goes stale and hot keys are re-shared for free.
        let shared: Mutex<SharedTuples> = Mutex::new(HashMap::new());
        let mut to_decode: Vec<Vec<u8>> = Vec::new();
        {
            let mut pool = self.shared_pool.lock().unwrap_or_else(|e| e.into_inner());
            let mut shared = shared.lock().unwrap();
            for key in &shared_keys {
                match pool.get(key) {
                    Some(tuples) => {
                        shared.insert(key.clone(), tuples);
                    }
                    None => to_decode.push(key.clone()),
                }
            }
        }
        let first_error: Mutex<Option<StorageError>> = Mutex::new(None);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let next_key = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(to_decode.len().max(1)) {
                scope.spawn(|| {
                    let ctx = ctx_base();
                    loop {
                        let i = next_key.fetch_add(1, Ordering::Relaxed);
                        let Some(key) = to_decode.get(i) else { break };
                        match collect_scan_tuples(&self.index, key, &ctx) {
                            Ok(tuples) => {
                                self.pool_insert(key, &tuples);
                                shared.lock().unwrap().insert(key.clone(), tuples);
                            }
                            Err(e) => {
                                first_error.lock().unwrap().get_or_insert(e);
                                failed.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.lock().unwrap().take() {
            return Err(e);
        }
        let shared = shared.into_inner().unwrap();

        // ---- Phase 3: evaluate the cache misses on the worker pool.
        // (With no result cache configured, every query is a "miss".)
        let slots: Vec<Mutex<Option<QueryOutcome>>> =
            prefilled.into_iter().map(Mutex::new).collect();
        let next_query = AtomicUsize::new(0);
        // Live pool gauges: the whole miss set is "queued" the moment
        // the pool starts; each pick moves one unit from queue depth to
        // busy workers. Updated here regardless of layer — this is
        // where workers actually run, shard-inner or not.
        let collect_metrics = self.config.collect_metrics;
        if collect_metrics {
            self.metrics.queue_depth.add(miss.len() as i64);
        }
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let ctx = ExecContext {
                        cache: Some(self.cache.clone()),
                        shared: Some(&shared),
                        stats: Some(self.stats.clone()),
                        trees: Some(self.trees.clone()),
                        ..ExecContext::default()
                    };
                    while !failed.load(Ordering::Acquire) {
                        let j = next_query.fetch_add(1, Ordering::Relaxed);
                        let Some(&qi) = miss.get(j) else { break };
                        if collect_metrics {
                            self.metrics.queue_depth.add(-1);
                            self.metrics.workers_busy.add(1);
                        }
                        // Cross-query overlap: hint the covers of a
                        // query one pool-width ahead, so its leading
                        // pages load while this one drains. Each miss
                        // index ≥ `threads` is hinted exactly once;
                        // the first wave starts immediately anyway.
                        if let Some(&ni) = miss.get(j + threads) {
                            self.hint_next_query(&queries[ni]);
                        }
                        let query = &queries[qi];
                        let q_started = Instant::now();
                        // A `Timings` is single-threaded state, so an
                        // instrumented run gets a fresh one per query;
                        // the uninstrumented path reuses the worker's
                        // context untouched.
                        let timings = self.config.collect_timings.then(|| Timings::new(true));
                        let eval = match &timings {
                            Some(t) => {
                                let q_ctx = ExecContext {
                                    timings: Some(t),
                                    ..ctx.clone()
                                };
                                self.index.evaluate_with(query, &q_ctx)
                            }
                            None => self.index.evaluate_with(query, &ctx),
                        };
                        match eval {
                            Ok(mut result) => {
                                if let Some(rcache) = &self.results {
                                    result.stats.result_misses = 1;
                                    let packed: Vec<u64> = result
                                        .matches
                                        .iter()
                                        .map(|&(tid, pre)| pack_match(tid, pre))
                                        .collect();
                                    rcache.insert(&miss_keys[j], coding, 0, 0, Arc::new(packed));
                                }
                                let seconds = q_started.elapsed().as_secs_f64();
                                self.latency.record_secs(seconds);
                                *slots[qi].lock().unwrap() = Some(QueryOutcome {
                                    result,
                                    seconds,
                                    timings: timings.map(|t| t.snapshot()),
                                });
                                if collect_metrics {
                                    self.metrics.workers_busy.add(-1);
                                }
                            }
                            Err(e) => {
                                first_error.lock().unwrap().get_or_insert(e);
                                failed.store(true, Ordering::Release);
                                if collect_metrics {
                                    self.metrics.workers_busy.add(-1);
                                }
                                break;
                            }
                        }
                    }
                });
            }
        });
        if collect_metrics {
            // Queries never picked (an error aborted the pool early)
            // must leave the queue gauge, too — `add`, not `set`: a
            // sharded service's shards share this gauge concurrently.
            let picked = next_query.load(Ordering::Relaxed).min(miss.len());
            let leftover = miss.len() - picked;
            if leftover > 0 {
                self.metrics.queue_depth.add(-(leftover as i64));
            }
        }
        if let Some(e) = first_error.lock().unwrap().take() {
            return Err(e);
        }
        let outcomes: Vec<QueryOutcome> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
            .collect();
        if collect_metrics && self.fold_outcomes {
            self.metrics.fold_batch(&outcomes);
        }
        Ok(BatchReport {
            latency: batch_latency(&outcomes),
            outcomes,
            wall_seconds: started.elapsed().as_secs_f64(),
            shared_keys: shared_keys.len(),
            shared_consumers,
        })
    }
}

/// This batch's latency distribution, from the per-outcome worker
/// seconds (same histogram type as the cumulative services record
/// into, so quantile resolution matches everywhere).
fn batch_latency(outcomes: &[QueryOutcome]) -> HistogramSummary {
    let h = Histogram::new();
    for o in outcomes {
        h.record_secs(o.seconds);
    }
    h.summary()
}

/// The batch service over a tid-range sharded index
/// ([`ShardedIndex`]): one [`QueryService`] per shard, each with its
/// own block cache, stats cache, tree cache and shared-scan pool —
/// shards store the *same canonical keys* over different posting
/// lists, so no decoded state may ever cross a shard boundary. The
/// parent budgets ([`ServiceConfig::cache`],
/// [`ServiceConfig::shared_pool_budget_bytes`]) are split evenly
/// across shards so a sharded service is bounded like a monolithic
/// one.
///
/// A batch runs shard by shard (each shard batch uses the full worker
/// pool and its shared-scan machinery): queries a shard's own
/// statistics prove empty there are dropped from that shard's batch
/// ([`EvalStats::shards_skipped`]), and per-shard outcomes merge by
/// concatenating the tid-disjoint match sets in shard order — exactly
/// the scatter-gather of `ShardedIndex::evaluate`, with batching
/// inside each shard.
pub struct ShardedQueryService {
    index: Arc<ShardedIndex>,
    services: Vec<QueryService>,
    /// Cumulative whole-query latency (nanoseconds): one record per
    /// query per batch, over the summed per-shard worker time.
    latency: Histogram,
    /// Per-shard partial-result cache, keyed by the manifest's
    /// `(shard id, generation)` epochs — this layer owns result
    /// caching outright (the inner per-shard services run with theirs
    /// disabled: their fixed `(0, 0)` epoch cannot express an ingest).
    /// Because epochs name immutable shard states, one instance may
    /// outlive the service and be re-injected after an ingest via
    /// [`ShardedQueryService::with_result_cache`]; entries for
    /// untouched shards keep serving.
    results: Option<Arc<ResultCache>>,
    /// Process-wide metrics spine; the inner per-shard services share
    /// its cells (live worker gauges) but this layer alone folds each
    /// query's final merged outcome, so `service.queries` and the
    /// `eval.*` counters count every query exactly once.
    metrics: ServiceMetrics,
    config: ServiceConfig,
}

impl ShardedQueryService {
    /// Creates a service over a sharded index, splitting the cache and
    /// pool budgets evenly across per-shard services.
    pub fn new(index: Arc<ShardedIndex>, config: ServiceConfig) -> Self {
        let n = index.shards().len().max(1);
        let per_shard = ServiceConfig {
            cache: BlockCacheConfig {
                budget_bytes: (config.cache.budget_bytes / n).max(1),
                ..config.cache
            },
            shared_pool_budget_bytes: config.shared_pool_budget_bytes / n,
            // Result caching happens once, at this layer, with the
            // manifest epochs in the key.
            result_cache_mb: 0,
            ..config
        };
        let metrics = ServiceMetrics::new();
        let services = index
            .shards()
            .iter()
            .map(|shard| {
                QueryService::with_metrics(shard.clone(), per_shard, metrics.clone(), false)
            })
            .collect();
        Self {
            index,
            services,
            latency: Histogram::new(),
            results: result_cache_from(&config),
            metrics,
            config,
        }
    }

    /// The metrics spine this service records into.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Mirrors every subsystem's counters (pager, aggregated block
    /// cache / tuple pool, this layer's result cache) into the registry
    /// and returns a full snapshot.
    pub fn sync_metrics(&self) -> MetricsSnapshot {
        let registry = self.metrics.registry();
        self.cache_stats().register_into(registry);
        if let Some(rc) = self.result_cache_stats() {
            rc.register_into(registry);
        }
        self.pool_stats().register_into(registry);
        register_pager_metrics(registry);
        registry.snapshot()
    }

    /// Replaces the result cache with a shared instance — the ingest
    /// story: rebuild the service over the reloaded index and hand the
    /// old cache back in; `(id, generation)` keys keep every untouched
    /// shard's entries valid and make stale ones unreachable.
    pub fn with_result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.results = Some(cache);
        self
    }

    /// The shared result cache, if one is configured (to carry across
    /// an ingest via [`ShardedQueryService::with_result_cache`]).
    pub fn result_cache(&self) -> Option<Arc<ResultCache>> {
        self.results.clone()
    }

    /// Result-cache counters, when a result cache is configured.
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.results.as_ref().map(|c| c.stats())
    }

    /// Cumulative per-query latency quantiles (nanoseconds) across
    /// every batch, over the summed per-shard worker time of each
    /// query.
    pub fn latency_summary(&self) -> HistogramSummary {
        self.latency.summary()
    }

    /// The underlying sharded index.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        &self.index
    }

    /// The configured batch size for line-oriented serving.
    pub fn batch_size(&self) -> usize {
        self.config.batch_size.max(1)
    }

    /// Block-cache counters summed across shards.
    pub fn cache_stats(&self) -> BlockCacheStats {
        let mut agg = BlockCacheStats::default();
        for s in &self.services {
            let c = s.cache_stats();
            agg.hits += c.hits;
            agg.misses += c.misses;
            agg.insertions += c.insertions;
            agg.evictions += c.evictions;
            agg.current_bytes += c.current_bytes;
            agg.peak_bytes += c.peak_bytes;
        }
        agg
    }

    /// Cross-batch tuple-pool counters summed across shards.
    pub fn pool_stats(&self) -> TuplePoolStats {
        let mut agg = TuplePoolStats::default();
        for s in &self.services {
            let p = s.pool_stats();
            agg.hits += p.hits;
            agg.misses += p.misses;
            agg.insertions += p.insertions;
            agg.evictions += p.evictions;
            agg.current_bytes += p.current_bytes;
            agg.peak_bytes += p.peak_bytes;
        }
        agg
    }

    /// Evaluates `queries` across all shards; results arrive in input
    /// order and match the monolithic service (and the sequential
    /// executor) exactly. Per-query `seconds` sums the query's worker
    /// time across shards.
    pub fn run_batch(&self, queries: &[Query]) -> Result<BatchReport> {
        let started = Instant::now();
        let options = self.index.options();
        let covers: Vec<_> = queries
            .iter()
            .map(|q| decompose(q, options.mss, options.coding))
            .collect();
        let mut outcomes: Vec<QueryOutcome> = queries
            .iter()
            .zip(&covers)
            .map(|(_, cover)| QueryOutcome {
                result: EvalResult {
                    matches: Vec::new(),
                    stats: EvalStats {
                        covers: cover.subtrees.len(),
                        shards: self.services.len(),
                        ..EvalStats::default()
                    },
                },
                seconds: 0.0,
                timings: None,
            })
            .collect();
        let mut shared_keys = 0usize;
        let mut shared_consumers = 0usize;
        // Result cache: one canonical key per query, probed per shard
        // under that shard's `(id, generation)` epoch.
        let keys: Option<Vec<Arc<[u8]>>> = self
            .results
            .as_ref()
            .map(|_| queries.iter().map(canonical_query_key).collect());
        let coding = options.coding.id();

        // Per-query cache bookkeeping across shards: whether any shard
        // actually evaluated the query, how many cached partials it
        // reused and how many of those were negative entries.
        let mut evaluated = vec![false; queries.len()];
        let mut reused = vec![0u64; queries.len()];
        let mut negative = vec![0u64; queries.len()];
        // Phase 0: probe every `(query, shard)` pair once, up front and
        // sequentially — these are hash lookups. A query whose *every*
        // shard answers from cache is filled here and never reaches the
        // shard machinery, so a warm batch spawns no threads; the
        // partially-hit probes are kept and consumed by the shard pass
        // below instead of probing again.
        let mut preprobe: Vec<Vec<Option<Arc<Vec<u64>>>>> = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        if let (Some(rcache), Some(keys)) = (&self.results, &keys) {
            for (i, key) in keys.iter().enumerate() {
                let q_started = Instant::now();
                let row: Vec<Option<Arc<Vec<u64>>>> = self
                    .index
                    .manifest()
                    .shards
                    .iter()
                    .map(|entry| rcache.get(key, coding, entry.id, entry.generation))
                    .collect();
                if row.iter().all(Option::is_some) {
                    // Shards ascend in tid order with tid-disjoint
                    // answers: splicing in shard order keeps the global
                    // set sorted.
                    for (entry, partial) in self.index.manifest().shards.iter().zip(&row) {
                        let partial = partial.as_ref().expect("probed above");
                        reused[i] += 1;
                        negative[i] += u64::from(partial.is_empty());
                        outcomes[i].result.matches.extend(partial.iter().map(|&p| {
                            let (tid, pre) = unpack_match(p);
                            (entry.base + tid, pre)
                        }));
                    }
                    outcomes[i].seconds = q_started.elapsed().as_secs_f64();
                } else {
                    pending.push(i);
                }
                preprobe.push(row);
            }
        } else {
            pending.extend(0..queries.len());
        }

        // Shard-level parallelism complements the per-shard worker
        // pool. A big batch already saturates the inner pool, so shards
        // run one after another (`outer == 1`, the pre-existing
        // behavior); a *single* query leaves the inner pool almost idle
        // — its per-shard sub-batch has one query, hence one inner
        // worker — so the shards themselves fan out across the
        // configured threads instead. The product of outer and inner
        // workers stays around `config.threads` either way.
        let nshards = self.services.len();
        let outer = (self.config.threads.max(1) / pending.len().max(1)).clamp(1, nshards.max(1));
        // Per shard: (live query indices, skipped query indices, cached
        // partial results, report if any query was live). Computed
        // possibly out of order, always merged in shard order below.
        type ShardRun = (
            Vec<usize>,
            Vec<usize>,
            Vec<(usize, Arc<Vec<u64>>)>,
            Option<BatchReport>,
        );
        let run_shard = |s: usize| -> Result<ShardRun> {
            let service = &self.services[s];
            let entry = &self.index.manifest().shards[s];
            // Shard-skip pruning: this shard's own stats segment can
            // prove a query empty here before any list is opened. The
            // probes run through the per-shard service's StatsCache, so
            // repeat batches pay one B+Tree descent per key per shard
            // lifetime, not per query.
            let probe_ctx = ExecContext {
                stats: Some(service.stats.clone()),
                ..ExecContext::default()
            };
            let mut live: Vec<usize> = Vec::with_capacity(pending.len());
            let mut skipped: Vec<usize> = Vec::new();
            let mut cached: Vec<(usize, Arc<Vec<u64>>)> = Vec::new();
            for &i in &pending {
                let cover = &covers[i];
                // Phase-0 probe first: a cached partial (positive or
                // negative) answers this shard without even the
                // provably-empty stats probes.
                if let Some(partial) = preprobe.get(i).and_then(|row| row[s].clone()) {
                    cached.push((i, partial));
                    continue;
                }
                if shard_provably_empty_with(
                    service.index(),
                    &cover.subtrees,
                    si_core::PlannerMode::CostBased,
                    &probe_ctx,
                )? {
                    skipped.push(i);
                    // A proven-empty shard is a zero answer known
                    // without opening a list — store it as an explicit
                    // negative entry so the repeat query skips even
                    // the stats probes.
                    if let (Some(rcache), Some(keys)) = (&self.results, &keys) {
                        rcache.insert(
                            &keys[i],
                            coding,
                            entry.id,
                            entry.generation,
                            Arc::new(Vec::new()),
                        );
                    }
                } else {
                    live.push(i);
                }
            }
            if live.is_empty() {
                return Ok((live, skipped, cached, None));
            }
            let shard_queries: Vec<Query> = live.iter().map(|&i| queries[i].clone()).collect();
            let report = service.run_batch(&shard_queries)?;
            if let (Some(rcache), Some(keys)) = (&self.results, &keys) {
                for (&i, outcome) in live.iter().zip(&report.outcomes) {
                    let packed: Vec<u64> = outcome
                        .result
                        .matches
                        .iter()
                        .map(|&(tid, pre)| pack_match(tid, pre))
                        .collect();
                    rcache.insert(
                        &keys[i],
                        coding,
                        entry.id,
                        entry.generation,
                        Arc::new(packed),
                    );
                }
            }
            Ok((live, skipped, cached, Some(report)))
        };
        if pending.is_empty() {
            // Every query answered from the cache (or the batch was
            // empty): no shard pass at all.
        } else {
            let slots: Vec<Mutex<Option<Result<ShardRun>>>> =
                self.services.iter().map(|_| Mutex::new(None)).collect();
            if outer == 1 {
                for (s, slot) in slots.iter().enumerate() {
                    *slot.lock().unwrap() = Some(run_shard(s));
                }
            } else {
                let next_shard = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..outer {
                        scope.spawn(|| loop {
                            let s = next_shard.fetch_add(1, Ordering::Relaxed);
                            if s >= nshards {
                                break;
                            }
                            *slots[s].lock().unwrap() = Some(run_shard(s));
                        });
                    }
                });
            }
            for (entry, slot) in self.index.manifest().shards.iter().zip(slots) {
                let (live, skipped, cached, report) =
                    slot.into_inner().unwrap().expect("shard ran")?;
                for i in skipped {
                    outcomes[i].result.stats.shards_skipped += 1;
                }
                // Cached partials splice into the same shard-order walk as
                // evaluated ones, so the concatenated global set stays
                // sorted regardless of where each shard's answer came from.
                for (i, partial) in cached {
                    reused[i] += 1;
                    negative[i] += u64::from(partial.is_empty());
                    outcomes[i].result.matches.extend(partial.iter().map(|&p| {
                        let (tid, pre) = unpack_match(p);
                        (entry.base + tid, pre)
                    }));
                }
                let Some(report) = report else { continue };
                shared_keys += report.shared_keys;
                shared_consumers += report.shared_consumers;
                for (&i, outcome) in live.iter().zip(report.outcomes) {
                    evaluated[i] = true;
                    let out = &mut outcomes[i];
                    // Shards ascend in tid order and their answers are
                    // tid-disjoint: appending keeps the global set sorted.
                    out.result.matches.extend(
                        outcome
                            .result
                            .matches
                            .iter()
                            .map(|&(tid, pre)| (entry.base + tid, pre)),
                    );
                    merge_shard_stats(&mut out.result.stats, &outcome.result.stats);
                    out.seconds += outcome.seconds;
                    // Shard-merge aware timings: fold this shard's span
                    // tree in under a `shard-N` group node, mirroring the
                    // core sharded executor's presentation.
                    if let Some(snap) = &outcome.timings {
                        out.timings
                            .get_or_insert_with(TimingsSnapshot::default)
                            .absorb(snap, &format!("shard-{}", entry.id));
                    }
                }
            }
        }
        if self.results.is_some() {
            for (i, out) in outcomes.iter_mut().enumerate() {
                let s = &mut out.result.stats;
                // The inner services run with result caching disabled,
                // so these counters are exclusively this layer's. A
                // query no shard evaluated that reused at least one
                // cached partial (the rest skip-pruned at worst) is a
                // whole-query hit; cached partials riding along an
                // evaluation are the reuses that make an ingest
                // invalidate only the shards it touched. A cold query
                // every shard skip-pruned counts as neither — the
                // cache played no part in answering it.
                if evaluated[i] {
                    s.result_misses = 1;
                    s.partial_reuses = reused[i];
                } else if reused[i] > 0 {
                    s.result_hits = 1;
                }
                s.negative_hits = negative[i];
            }
        }
        for o in &outcomes {
            self.latency.record_secs(o.seconds);
        }
        if self.config.collect_metrics {
            // Exactly-once fold of the final merged per-query stats —
            // the inner shard services share the cells but never fold.
            self.metrics.fold_batch(&outcomes);
        }
        Ok(BatchReport {
            latency: batch_latency(&outcomes),
            outcomes,
            wall_seconds: started.elapsed().as_secs_f64(),
            shared_keys,
            shared_consumers,
        })
    }
}

/// The batch service over either index layout — the service-level
/// mirror of `si_core::AnyIndex`, so embedders (the CLI's `si batch` /
/// `si serve` included) get one dispatch seam instead of re-writing
/// it: monolithic directories get the shared-scan [`QueryService`],
/// sharded ones the scatter-gather [`ShardedQueryService`].
pub enum AnyQueryService {
    /// Service over a single `index.bt` directory.
    Mono(QueryService),
    /// Service over a `MANIFEST.si` directory of tid-range shards.
    Sharded(ShardedQueryService),
}

impl AnyQueryService {
    /// Opens `dir` and wraps the matching service (sharded when
    /// `MANIFEST.si` is present).
    pub fn open(dir: &std::path::Path, config: ServiceConfig) -> Result<Self> {
        Ok(if ShardedIndex::is_sharded(dir) {
            AnyQueryService::Sharded(ShardedQueryService::new(
                Arc::new(ShardedIndex::open(dir)?),
                config,
            ))
        } else {
            AnyQueryService::Mono(QueryService::new(
                Arc::new(SubtreeIndex::open(dir)?),
                config,
            ))
        })
    }

    /// The interner queries should be parsed against.
    pub fn interner(&self) -> si_parsetree::LabelInterner {
        match self {
            AnyQueryService::Mono(s) => s.index().interner(),
            AnyQueryService::Sharded(s) => s.index().interner(),
        }
    }

    /// The configured batch size for line-oriented serving.
    pub fn batch_size(&self) -> usize {
        match self {
            AnyQueryService::Mono(s) => s.batch_size(),
            AnyQueryService::Sharded(s) => s.batch_size(),
        }
    }

    /// Evaluates a batch on whichever layout is open; results arrive in
    /// input order and match the sequential executor exactly.
    pub fn run_batch(&self, queries: &[Query]) -> Result<BatchReport> {
        match self {
            AnyQueryService::Mono(s) => s.run_batch(queries),
            AnyQueryService::Sharded(s) => s.run_batch(queries),
        }
    }

    /// Block-cache counters (summed across shards when sharded).
    pub fn cache_stats(&self) -> BlockCacheStats {
        match self {
            AnyQueryService::Mono(s) => s.cache_stats(),
            AnyQueryService::Sharded(s) => s.cache_stats(),
        }
    }

    /// Result-cache counters, when a result cache is configured
    /// ([`ServiceConfig::result_cache_mb`] > 0).
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        match self {
            AnyQueryService::Mono(s) => s.result_cache_stats(),
            AnyQueryService::Sharded(s) => s.result_cache_stats(),
        }
    }

    /// Cross-batch tuple-pool counters (summed across shards when
    /// sharded) — how often shared-scan vectors were re-served without
    /// a re-decode.
    pub fn pool_stats(&self) -> TuplePoolStats {
        match self {
            AnyQueryService::Mono(s) => s.pool_stats(),
            AnyQueryService::Sharded(s) => s.pool_stats(),
        }
    }

    /// Cumulative per-query latency quantiles (nanoseconds) across
    /// every batch this service has run.
    pub fn latency_summary(&self) -> HistogramSummary {
        match self {
            AnyQueryService::Mono(s) => s.latency_summary(),
            AnyQueryService::Sharded(s) => s.latency_summary(),
        }
    }

    /// The metrics spine this service records into.
    pub fn metrics(&self) -> &ServiceMetrics {
        match self {
            AnyQueryService::Mono(s) => s.metrics(),
            AnyQueryService::Sharded(s) => s.metrics(),
        }
    }

    /// Mirrors every subsystem's counters into the registry and returns
    /// a full snapshot — one call per telemetry tick.
    pub fn sync_metrics(&self) -> MetricsSnapshot {
        match self {
            AnyQueryService::Mono(s) => s.sync_metrics(),
            AnyQueryService::Sharded(s) => s.sync_metrics(),
        }
    }

    /// The read path the open index serves from: `"mmap"` when every
    /// B+Tree is a read-only mapping, `"buffered"` otherwise (any
    /// fallback demotes the whole answer — operators care about the
    /// slowest member).
    pub fn read_path(&self) -> &'static str {
        let mapped = match self {
            AnyQueryService::Mono(s) => s.index().is_mapped(),
            AnyQueryService::Sharded(s) => s.index().shards().iter().all(|sh| sh.is_mapped()),
        };
        if mapped {
            "mmap"
        } else {
            "buffered"
        }
    }

    /// The configured result-cache budget in MiB (0 = disabled).
    pub fn result_cache_mb(&self) -> usize {
        match self {
            AnyQueryService::Mono(s) => s.config.result_cache_mb,
            AnyQueryService::Sharded(s) => s.config.result_cache_mb,
        }
    }
}
