//! Lock-free metrics: counters, gauges and log-linear histograms.
//!
//! Everything here is shared by `&` across threads and records through
//! relaxed atomics — no mutex, no allocation after construction. The
//! histogram is the HDR idea at fixed precision: one octave of values
//! per bucket *group*, `SUB` linear sub-buckets per group, so any
//! recorded value lands in a bucket whose width is at most `value /
//! SUB` (≈3% relative error) and quantile readout is a single
//! cumulative walk.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::json::json_escape;

/// A monotonically increasing event count.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the count. Only for mirroring an *external* monotonic
    /// source (e.g. a subsystem that keeps its own atomics) into a
    /// registry cell at snapshot time; never mix `set` with `add` on
    /// the same counter.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A signed instantaneous level (queue depths, resident bytes).
#[derive(Default, Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per octave: 2^5 = 32 linear steps inside each power of
/// two, bounding quantile error at ~1/32 of the value.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: values below `2·SUB`
/// get exact unit buckets, every octave above contributes `SUB` more.
const BUCKETS: usize = ((63 - SUB_BITS as usize) << SUB_BITS as usize) + 2 * SUB as usize;

/// Bucket index of `v` (monotone in `v`).
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        ((shift << SUB_BITS) + (v >> shift)) as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i` (unit-width below
/// `2·SUB`, width `2^group` above).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 2 * SUB as usize {
        (i as u64, i as u64)
    } else {
        let g = (i as u64 >> SUB_BITS) - 1;
        let top = i as u64 - (g << SUB_BITS);
        let lo = top << g;
        // `(top + 1) << g` would overflow on the topmost bucket; adding
        // the bucket width minus one is equivalent and stays in range.
        (lo, lo + ((1u64 << g) - 1))
    }
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds, by
/// convention). Recording touches four relaxed atomics and allocates
/// nothing; reading walks the bucket array. Suitable for sharing by
/// `&`/`Arc` across recording threads.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free, allocation-free.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a latency given in (non-negative) seconds, as nanoseconds.
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples: the
    /// representative value of the bucket holding the sample of rank
    /// `ceil(q · count)` — the same rank a sorted vector would select,
    /// so the readout is exact up to the bucket's ~3% width. Returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        self.max()
    }

    /// Folds `other`'s samples into `self` bucket-by-bucket. Merging is
    /// associative and commutative (each bucket is a plain sum), so
    /// per-shard histograms can be gathered in any order.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Point-in-time summary with the standard quantile set.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Per-bucket counts, for equality in tests.
    #[doc(hidden)]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Plain-data snapshot of a [`Histogram`]: count, extrema and the
/// p50/p90/p99/p999 quantiles (same unit as the samples, nanoseconds by
/// convention).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl HistogramSummary {
    /// Appends this summary as a JSON object
    /// (`{"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..,"p999":..}`).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.count, self.sum, self.min, self.max, self.p50, self.p90, self.p99, self.p999
        );
    }
}

/// A cumulative histogram paired with a resettable *window*: every
/// sample lands in both, a periodic reader drains the window to get
/// quantiles over just the last interval while the cumulative side
/// keeps the full distribution. Recording takes a shared read lock
/// (uncontended except during the brief per-tick reset) plus the usual
/// relaxed atomics.
pub struct WindowedHistogram {
    cumulative: Histogram,
    window: RwLock<Histogram>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowedHistogram {
    /// An empty windowed histogram.
    pub fn new() -> Self {
        Self {
            cumulative: Histogram::new(),
            window: RwLock::new(Histogram::new()),
        }
    }

    /// Records one sample into both the cumulative and window sides.
    pub fn record(&self, v: u64) {
        self.cumulative.record(v);
        self.window
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .record(v);
    }

    /// Records a latency given in (non-negative) seconds, as nanoseconds.
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9) as u64);
    }

    /// The cumulative (never-reset) side.
    pub fn cumulative(&self) -> &Histogram {
        &self.cumulative
    }

    /// Summary of the current window without resetting it.
    pub fn window_summary(&self) -> HistogramSummary {
        self.window
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .summary()
    }

    /// Summarizes the window and starts a fresh one; the cumulative
    /// side is untouched.
    pub fn reset_window(&self) -> HistogramSummary {
        let mut w = self.window.write().unwrap_or_else(|e| e.into_inner());
        let summary = w.summary();
        *w = Histogram::new();
        summary
    }
}

/// Plain-data, point-in-time copy of every metric in a [`Registry`],
/// sorted by name. Snapshots subtract ([`MetricsSnapshot::counter_delta_since`])
/// to give per-interval rates and serialize to one JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name (cumulative side for windowed ones).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Per-counter increase since `prev` (saturating: a counter absent
    /// from `prev` counts from zero, and mirrors that move backwards
    /// clamp at zero rather than wrapping).
    pub fn counter_delta_since(&self, prev: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(name, &now)| {
                let before = prev.counters.get(name).copied().unwrap_or(0);
                (name.clone(), now.saturating_sub(before))
            })
            .collect()
    }

    /// Appends `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape(name));
            s.write_json(out);
        }
        out.push_str("}}");
    }
}

/// A named-metric registry for long-lived processes: get-or-create by
/// name behind one mutex, record through the returned `Arc` without
/// ever touching the registry again (the record path stays lock-free).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    windowed: Mutex<BTreeMap<String, Arc<WindowedHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Snapshot of every histogram, sorted by name.
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, h)| (k.clone(), h.summary())).collect()
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }

    /// The windowed histogram named `name`, created on first use.
    pub fn windowed(&self, name: &str) -> Arc<WindowedHistogram> {
        let mut map = self.windowed.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Snapshot of every gauge, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    }

    /// Point-in-time copy of every metric. Windowed histograms
    /// contribute their cumulative side (the window is a per-reader
    /// concern, drained via [`WindowedHistogram::reset_window`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
        };
        let mut histograms: BTreeMap<String, HistogramSummary> = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, h)| (k.clone(), h.summary())).collect()
        };
        {
            let map = self.windowed.lock().unwrap_or_else(|e| e.into_inner());
            for (k, w) in map.iter() {
                histograms.insert(k.clone(), w.cumulative().summary());
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — deterministic, dependency-free test randomness.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert_it() {
        let probes = [
            0u64,
            1,
            31,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last = 0usize;
        for (n, &v) in probes.iter().enumerate() {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
            if n > 0 {
                assert!(i >= last, "index not monotone at {v}");
            }
            last = i;
        }
        // Adjacent buckets tile the line with no gaps.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo, "gap between buckets {i} and {}", i + 1);
        }
    }

    /// Randomized differential test: histogram quantiles vs the exact
    /// sorted-vector quantile at the same rank, across value ranges
    /// spanning nanoseconds to hours. The histogram must land in the
    /// same bucket as the exact answer, i.e. within one bucket width.
    #[test]
    fn quantiles_match_sorted_vector_within_bucket_width() {
        let mut rng = Rng(0x5EED_0001);
        for &span in &[100u64, 10_000, 1_000_000, 10_000_000_000, u64::MAX / 2] {
            let h = Histogram::new();
            let mut exact: Vec<u64> = Vec::new();
            for _ in 0..5000 {
                let v = rng.next() % span;
                h.record(v);
                exact.push(v);
            }
            exact.sort_unstable();
            for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
                let want = exact[rank - 1];
                let got = h.quantile(q);
                let (lo, hi) = bucket_bounds(bucket_index(want));
                assert!(
                    lo <= got && got <= hi,
                    "span {span} q {q}: got {got}, exact {want} in bucket [{lo}, {hi}]"
                );
            }
            assert_eq!(h.min(), exact[0]);
            assert_eq!(h.max(), *exact.last().unwrap());
            assert_eq!(h.count(), exact.len() as u64);
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut rng = Rng(42);
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..1000).map(|_| rng.next() % 1_000_000).collect())
            .collect();
        let hist = |values: &[&[u64]]| {
            let h = Histogram::new();
            for vs in values {
                for &v in *vs {
                    h.record(v);
                }
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = hist(&[&parts[0], &parts[1]]);
        left.merge_from(&hist(&[&parts[2]]));
        // a ⊕ (b ⊕ c)
        let right = hist(&[&parts[0]]);
        let bc = hist(&[&parts[1], &parts[2]]);
        right.merge_from(&bc);
        assert_eq!(left.bucket_counts(), right.bucket_counts());
        assert_eq!(left.summary(), right.summary());
    }

    #[test]
    fn counters_gauges_and_registry() {
        let r = Registry::new();
        r.counter("queries").add(3);
        r.counter("queries").inc();
        assert_eq!(r.counter("queries").get(), 4);
        r.gauge("depth").set(7);
        r.gauge("depth").add(-2);
        assert_eq!(r.gauge("depth").get(), 5);
        r.histogram("latency").record(100);
        let sums = r.histogram_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].0, "latency");
        assert_eq!(sums[0].1.count, 1);
        assert_eq!(r.counter_values(), vec![("queries".to_owned(), 4)]);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        let s = h.summary();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p999, 0);
    }

    #[test]
    fn registry_snapshot_and_delta() {
        let r = Registry::new();
        r.counter("pager.reads").add(10);
        r.counter("eval.seeks").add(3);
        r.gauge("service.queue_depth").set(5);
        r.histogram("decode.ns").record(1000);
        r.windowed("service.latency").record(2000);

        let first = r.snapshot();
        assert_eq!(first.counters["pager.reads"], 10);
        assert_eq!(first.gauges["service.queue_depth"], 5);
        assert_eq!(first.histograms["decode.ns"].count, 1);
        // Windowed histograms surface their cumulative side.
        assert_eq!(first.histograms["service.latency"].count, 1);

        r.counter("pager.reads").add(7);
        r.counter("blockcache.hits").add(2); // born between snapshots
        r.gauge("service.queue_depth").add(-5);
        let second = r.snapshot();

        let delta = second.counter_delta_since(&first);
        assert_eq!(delta["pager.reads"], 7);
        assert_eq!(delta["eval.seeks"], 0);
        assert_eq!(delta["blockcache.hits"], 2, "new counters count from zero");
        assert_eq!(second.gauges["service.queue_depth"], 0);

        // A mirror that (incorrectly) moved backwards clamps at zero.
        r.counter("pager.reads").set(1);
        let third = r.snapshot();
        assert_eq!(third.counter_delta_since(&second)["pager.reads"], 0);

        // Snapshots serialize to one JSON object with all three sections.
        let mut line = String::new();
        second.write_json(&mut line);
        assert!(line.starts_with("{\"counters\":{"));
        assert!(line.contains("\"pager.reads\":17"));
        assert!(line.contains("\"gauges\":{"));
        assert!(line.contains("\"service.latency\":{\"count\":1"));
    }

    #[test]
    fn gauge_set_and_add_under_concurrency() {
        // N threads each do +1 ... -1 pairs around a critical region;
        // the final level must return to the initial `set`. Exercises
        // `add` atomicity under contention.
        let g = std::sync::Arc::new(Gauge::new());
        g.set(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        g.add(1);
                        g.add(-1);
                    }
                });
            }
        });
        assert_eq!(g.get(), 0);

        // Registry hands out the *same* cell for the same name, so
        // concurrent get-or-create keeps one level.
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.gauge("workers").add(1);
                    }
                });
            }
        });
        assert_eq!(r.gauge("workers").get(), 4000);
    }

    #[test]
    fn windowed_reset_leaves_cumulative_untouched() {
        let w = WindowedHistogram::new();
        for v in [100u64, 200, 300] {
            w.record(v);
        }
        assert_eq!(w.window_summary().count, 3);
        let drained = w.reset_window();
        assert_eq!(drained.count, 3);
        assert_eq!(drained.min, 100);
        assert_eq!(drained.max, 300);

        // Window is now empty; cumulative still holds everything.
        assert_eq!(w.window_summary().count, 0);
        assert_eq!(w.cumulative().count(), 3);

        // New samples only populate the fresh window.
        w.record(5000);
        let s = w.window_summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 5000, "window quantiles cover the window only");
        assert_eq!(w.cumulative().count(), 4);
        assert_eq!(w.cumulative().min(), 100);

        // record_secs lands in nanoseconds like Histogram::record_secs.
        w.record_secs(0.001);
        let s = w.window_summary();
        assert_eq!(s.count, 2);
        assert!(s.max >= 900_000 && s.max <= 1_100_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 39_999);
    }
}
