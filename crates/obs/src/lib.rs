//! Observability primitives for the Subtree Index engine.
//!
//! Three layers, all `std`-only and allocation-free on their hot paths:
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s and log-linear
//!   (HDR-style) [`Histogram`]s with p50/p90/p99/p999 quantile readout,
//!   plus a named [`Registry`] for long-lived processes (the query
//!   service's cumulative latency distribution lives in one).
//! * [`timings`] — per-query [`Timings`]: nanosecond attribution to
//!   named pipeline [`Stage`]s (parse, canonicalize, plan,
//!   posting-seek, decode, join, validate, merge) plus a per-operator
//!   node tree the streaming executor fills in. A disabled `Timings`
//!   (and an absent one) costs the instrumented code one branch.
//! * [`json`] — the hand-rolled JSON escaping the trace sinks share
//!   and the small [`Json`] value parser `si report` reads trace /
//!   slow-log / metrics lines back with (this workspace links no
//!   external crates).
//!
//! [`TimingsSnapshot`] is the plain-data hand-off: workers snapshot
//! their per-query `Timings`, snapshots travel across threads, merge
//! across shards and serialize to the `--trace-json` sink.

pub mod json;
pub mod metrics;
pub mod timings;

pub use json::{json_escape, Json};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry, WindowedHistogram,
};
pub use timings::{OpNode, Stage, StageSpan, Timings, TimingsSnapshot, STAGE_COUNT};
