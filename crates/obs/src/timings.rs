//! Per-query timing spans and per-operator node timings.
//!
//! One [`Timings`] lives for one query evaluation on one thread
//! (interior mutability through `Cell`/`RefCell`, the same shape as the
//! executor's shared tallies). Instrumented code holds an
//! `Option<&Timings>`; a `None` — or a `Timings` built disabled —
//! costs exactly one branch, which is what lets the instrumentation
//! stay compiled into the hot paths. [`Timings::snapshot`] turns the
//! accumulated state into a [`TimingsSnapshot`] — plain `Send` data
//! that crosses worker threads, merges across shards
//! ([`TimingsSnapshot::absorb`]) and serializes to the JSON trace sink.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::json::json_escape;

/// The named pipeline stages nanoseconds are attributed to. `Decode`
/// and `Join` are derived from the operator tree (scan self-time vs
/// everything else in the drain); the rest are direct span
/// measurements at their call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Query-text parsing (CLI/service front door).
    Parse,
    /// Cover decomposition + canonical-key construction.
    Canonicalize,
    /// Statistics probes + join-order planning.
    Plan,
    /// Restart-block seeks: scan seeding and leapfrog jumps.
    PostingSeek,
    /// Posting decode: scan operators pulling off feeds.
    Decode,
    /// Join/sort operators and the drain loop around them.
    Join,
    /// Candidate validation against decoded trees.
    Validate,
    /// Gathering shard answers / batch result merging.
    Merge,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Parse,
        Stage::Canonicalize,
        Stage::Plan,
        Stage::PostingSeek,
        Stage::Decode,
        Stage::Join,
        Stage::Validate,
        Stage::Merge,
    ];

    /// Stable lowercase name (JSON keys, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Canonicalize => "canonicalize",
            Stage::Plan => "plan",
            Stage::PostingSeek => "posting-seek",
            Stage::Decode => "decode",
            Stage::Join => "join",
            Stage::Validate => "validate",
            Stage::Merge => "merge",
        }
    }

    fn idx(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Canonicalize => 1,
            Stage::Plan => 2,
            Stage::PostingSeek => 3,
            Stage::Decode => 4,
            Stage::Join => 5,
            Stage::Validate => 6,
            Stage::Merge => 7,
        }
    }
}

/// One operator in the executed plan tree, with its measured inclusive
/// time and the counters attributable to it. `children` index into the
/// owning snapshot's `ops` vector; a node referenced by no other node
/// is a root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpNode {
    /// Operator name (`scan`, `shared scan`, `merge-eq join`, …).
    pub label: String,
    /// Cover-subtree index for scan nodes (lets callers render the
    /// canonical key behind the scan).
    pub cover: Option<usize>,
    /// Child operator indices (inputs of a join, the wrapped input of
    /// a sort).
    pub children: Vec<usize>,
    /// Inclusive wall nanoseconds spent inside this operator's pulls
    /// (children included — subtract theirs for self-time).
    pub nanos: u64,
    /// Tuples this operator emitted.
    pub rows: u64,
    /// Postings decoded by this scan.
    pub postings_fetched: u64,
    /// Postings served zero-copy from cache-hit blocks.
    pub postings_borrowed: u64,
    /// Postings skipped undecoded by seeks on this scan.
    pub postings_skipped: u64,
    /// Seeks this scan performed.
    pub seeks: u64,
}

/// Accumulates one query's stage nanoseconds and operator tree. See the
/// module docs for the threading model.
pub struct Timings {
    enabled: bool,
    stages: [Cell<u64>; STAGE_COUNT],
    ops: RefCell<Vec<OpNode>>,
}

impl Timings {
    /// A fresh accumulator. `enabled == false` builds the disabled
    /// variant every record call bails out of after one branch — the
    /// configuration the overhead bench measures.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            stages: Default::default(),
            ops: RefCell::new(Vec::new()),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `nanos` to `stage`.
    pub fn add(&self, stage: Stage, nanos: u64) {
        if !self.enabled {
            return;
        }
        let cell = &self.stages[stage.idx()];
        cell.set(cell.get() + nanos);
    }

    /// Nanoseconds attributed to `stage` so far.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stages[stage.idx()].get()
    }

    /// An RAII span: measures from now until drop and adds the elapsed
    /// nanoseconds to `stage`. Disabled timings never read the clock.
    pub fn span(&self, stage: Stage) -> StageSpan<'_> {
        StageSpan {
            target: self.enabled.then(|| (self, stage, Instant::now())),
        }
    }

    /// Appends an operator node and returns its index. No-op (returns
    /// 0) when disabled — callers guard on [`Timings::enabled`] anyway.
    pub fn push_op(&self, label: &str, cover: Option<usize>, children: Vec<usize>) -> usize {
        if !self.enabled {
            return 0;
        }
        let mut ops = self.ops.borrow_mut();
        ops.push(OpNode {
            label: label.to_owned(),
            cover,
            children,
            ..OpNode::default()
        });
        ops.len() - 1
    }

    /// Folds measured totals into operator `id` (the flush point of the
    /// executor's stream wrappers).
    #[allow(clippy::too_many_arguments)]
    pub fn record_op(
        &self,
        id: usize,
        nanos: u64,
        rows: u64,
        postings_fetched: u64,
        postings_borrowed: u64,
        postings_skipped: u64,
        seeks: u64,
    ) {
        if !self.enabled {
            return;
        }
        let mut ops = self.ops.borrow_mut();
        let op = &mut ops[id];
        op.nanos += nanos;
        op.rows += rows;
        op.postings_fetched += postings_fetched;
        op.postings_borrowed += postings_borrowed;
        op.postings_skipped += postings_skipped;
        op.seeks += seeks;
    }

    /// Inclusive nanoseconds recorded for operator `id` so far.
    pub fn op_nanos(&self, id: usize) -> u64 {
        self.ops.borrow().get(id).map_or(0, |op| op.nanos)
    }

    /// Plain-data copy of the accumulated state.
    pub fn snapshot(&self) -> TimingsSnapshot {
        let mut stage_nanos = [0u64; STAGE_COUNT];
        for (out, cell) in stage_nanos.iter_mut().zip(self.stages.iter()) {
            *out = cell.get();
        }
        TimingsSnapshot {
            stage_nanos,
            ops: self.ops.borrow().clone(),
        }
    }

    /// Folds a snapshot (a shard's, say) into this accumulator: stage
    /// nanoseconds add, and the snapshot's operator forest is appended
    /// under a fresh group node labeled `group_label`.
    pub fn absorb(&self, snap: &TimingsSnapshot, group_label: &str) {
        if !self.enabled {
            return;
        }
        for (stage, &n) in Stage::ALL.iter().zip(snap.stage_nanos.iter()) {
            self.add(*stage, n);
        }
        let mut ops = self.ops.borrow_mut();
        let base = ops.len();
        for op in &snap.ops {
            let mut op = op.clone();
            for c in &mut op.children {
                *c += base;
            }
            ops.push(op);
        }
        let roots: Vec<usize> = snap.roots().iter().map(|&r| r + base).collect();
        let nanos = snap.ops.iter().enumerate().fold(0, |acc, (i, op)| {
            if roots.contains(&(i + base)) {
                acc + op.nanos
            } else {
                acc
            }
        });
        let rows = roots.iter().map(|&r| ops[r].rows).sum();
        ops.push(OpNode {
            label: group_label.to_owned(),
            cover: None,
            children: roots,
            nanos,
            rows,
            ..OpNode::default()
        });
    }
}

/// RAII guard of [`Timings::span`].
pub struct StageSpan<'a> {
    target: Option<(&'a Timings, Stage, Instant)>,
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        if let Some((t, stage, start)) = self.target.take() {
            t.add(
                stage,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
}

/// Plain-data snapshot of a [`Timings`]: `Send + Sync`, mergeable, and
/// the unit the JSON trace sink serializes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingsSnapshot {
    /// Nanoseconds per stage, indexed like [`Stage::ALL`].
    pub stage_nanos: [u64; STAGE_COUNT],
    /// The operator forest (see [`OpNode::children`]).
    pub ops: Vec<OpNode>,
}

impl TimingsSnapshot {
    /// Nanoseconds attributed to `stage`.
    pub fn stage(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage.idx()]
    }

    /// Sum over all stages — the span-accounted fraction of the query's
    /// wall time.
    pub fn stage_total(&self) -> u64 {
        self.stage_nanos.iter().sum()
    }

    /// Indices of operator nodes no other node references — the tree
    /// roots, in insertion order.
    pub fn roots(&self) -> Vec<usize> {
        let mut is_child = vec![false; self.ops.len()];
        for op in &self.ops {
            for &c in &op.children {
                is_child[c] = true;
            }
        }
        (0..self.ops.len()).filter(|&i| !is_child[i]).collect()
    }

    /// Folds `other` into `self` the way [`Timings::absorb`] does:
    /// stage nanoseconds add, operators append under a group node.
    pub fn absorb(&mut self, other: &TimingsSnapshot, group_label: &str) {
        for (mine, theirs) in self.stage_nanos.iter_mut().zip(other.stage_nanos.iter()) {
            *mine += theirs;
        }
        let base = self.ops.len();
        for op in &other.ops {
            let mut op = op.clone();
            for c in &mut op.children {
                *c += base;
            }
            self.ops.push(op);
        }
        let roots: Vec<usize> = other.roots().iter().map(|&r| r + base).collect();
        let nanos = roots.iter().map(|&r| self.ops[r].nanos).sum();
        let rows = roots.iter().map(|&r| self.ops[r].rows).sum();
        self.ops.push(OpNode {
            label: group_label.to_owned(),
            cover: None,
            children: roots,
            nanos,
            rows,
            ..OpNode::default()
        });
    }

    /// Serializes the snapshot as a JSON object fragment
    /// (`{"stages": {...}, "ops": [...]}`) appended to `out`. Stages
    /// with zero nanoseconds are kept so the schema is stable.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"stages\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", stage.name(), self.stage(*stage)));
        }
        out.push_str("},\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"nanos\":{},\"rows\":{}",
                json_escape(&op.label),
                op.nanos,
                op.rows
            ));
            if let Some(cover) = op.cover {
                out.push_str(&format!(",\"cover\":{cover}"));
            }
            if op.postings_fetched + op.postings_borrowed + op.postings_skipped + op.seeks > 0 {
                out.push_str(&format!(
                    ",\"postings_fetched\":{},\"postings_borrowed\":{},\"postings_skipped\":{},\"seeks\":{}",
                    op.postings_fetched, op.postings_borrowed, op.postings_skipped, op.seeks
                ));
            }
            out.push_str(",\"children\":[");
            for (j, c) in op.children.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timings_record_nothing() {
        let t = Timings::new(false);
        t.add(Stage::Join, 100);
        {
            let _s = t.span(Stage::Plan);
        }
        let id = t.push_op("scan", Some(0), vec![]);
        t.record_op(id, 5, 5, 0, 0, 0, 0);
        let snap = t.snapshot();
        assert_eq!(snap.stage_total(), 0);
        assert!(snap.ops.is_empty());
    }

    #[test]
    fn spans_and_ops_accumulate() {
        let t = Timings::new(true);
        t.add(Stage::Decode, 40);
        t.add(Stage::Decode, 2);
        {
            let _s = t.span(Stage::Plan);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(t.stage_nanos(Stage::Decode), 42);
        assert!(t.stage_nanos(Stage::Plan) >= 1_000_000);
        let scan = t.push_op("scan", Some(1), vec![]);
        let join = t.push_op("join", None, vec![scan]);
        t.record_op(scan, 10, 3, 7, 1, 2, 1);
        t.record_op(join, 25, 2, 0, 0, 0, 0);
        assert_eq!(t.op_nanos(join), 25);
        let snap = t.snapshot();
        assert_eq!(snap.roots(), vec![join]);
        assert_eq!(snap.ops[scan].postings_fetched, 7);
        assert_eq!(snap.ops[join].rows, 2);
    }

    #[test]
    fn absorb_groups_a_shard_forest() {
        let shard = {
            let t = Timings::new(true);
            t.add(Stage::Decode, 100);
            let s = t.push_op("scan", Some(0), vec![]);
            let j = t.push_op("join", None, vec![s]);
            t.record_op(s, 60, 10, 10, 0, 0, 0);
            t.record_op(j, 90, 4, 0, 0, 0, 0);
            t.snapshot()
        };
        let total = Timings::new(true);
        total.absorb(&shard, "shard-0");
        total.absorb(&shard, "shard-1");
        let snap = total.snapshot();
        assert_eq!(snap.stage(Stage::Decode), 200);
        // Two group roots, each holding a two-node subtree.
        let roots = snap.roots();
        assert_eq!(roots.len(), 2);
        for r in roots {
            assert_eq!(snap.ops[r].label.as_str().split('-').next(), Some("shard"));
            assert_eq!(snap.ops[r].children.len(), 1);
            assert_eq!(snap.ops[r].rows, 4);
            let j = snap.ops[r].children[0];
            assert_eq!(snap.ops[j].label, "join");
            assert_eq!(snap.ops[snap.ops[j].children[0]].label, "scan");
        }
        // Snapshot-level absorb agrees with Timings-level absorb.
        let mut a = shard.clone();
        a.absorb(&shard, "shard-1");
        assert_eq!(a.stage(Stage::Decode), 200);
    }

    #[test]
    fn json_fragment_is_well_formed() {
        let t = Timings::new(true);
        t.add(Stage::Parse, 5);
        let s = t.push_op("scan \"quoted\"", Some(0), vec![]);
        t.record_op(s, 10, 1, 2, 0, 0, 0);
        let mut out = String::new();
        t.snapshot().write_json(&mut out);
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"parse\":5"));
        assert!(out.contains("\\\"quoted\\\""));
        assert!(out.contains("\"postings_fetched\":2"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }
}
