//! Minimal JSON support shared by the trace sinks, bench emitters and
//! the offline `si report` reader (this workspace links no external
//! crates): string escaping for writers and a small recursive-descent
//! value parser for readers.

/// Escapes `s` for inclusion inside a double-quoted JSON string.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers are `f64` — every count this engine
/// emits (nanoseconds, posting tallies) stays far below 2^53, where
/// `f64` is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, first match wins on `get`.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (one trace/metrics line is one value).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs: peek for the low half.
                        let c = if (0xd800..0xdc00).contains(&cp) {
                            let low = b
                                .get(*pos + 1..*pos + 7)
                                .filter(|t| t.starts_with(b"\\u"))
                                .and_then(|t| std::str::from_utf8(&t[2..]).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .filter(|lo| (0xdc00..0xe000).contains(lo));
                            match low {
                                Some(lo) => {
                                    *pos += 6;
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c).unwrap_or('\u{fffd}')
                                }
                                None => '\u{fffd}',
                            }
                        } else {
                            char::from_u32(cp).unwrap_or('\u{fffd}')
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::{json_escape, Json};

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"a b\"").unwrap().as_str(), Some("a b"));
        let v = Json::parse("[1, 2, [3]]").unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 3);
        let v = Json::parse("{\"a\": {\"b\": 7}, \"c\": []}").unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("c").unwrap().as_arr(), Some(&[][..]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\n\u0041""#).unwrap().as_str(),
            Some("a\"b\\c\nA")
        );
        // Surrogate pair → one scalar.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
    }

    #[test]
    fn round_trips_own_escapes() {
        let original = "tricky \"quotes\"\\slashes\nnewlines\tand \u{01} controls";
        let line = format!("{{\"q\":\"{}\"}}", json_escape(original));
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("q").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
