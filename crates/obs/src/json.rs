//! Minimal JSON string escaping shared by the trace sinks and bench
//! emitters (this workspace links no external crates).

/// Escapes `s` for inclusion inside a double-quoted JSON string.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }
}
