//! The Subtree Index (SI) — the paper's primary contribution.
//!
//! * [`extract`] — enumeration of all unique rooted subtrees of sizes
//!   `1..=mss` (§4.1–4.2, Figures 2–4);
//! * [`canonical`] — canonical unordered subtree encoding used as B+Tree
//!   keys (§4.2);
//! * [`coding`] — the three posting-list coding schemes (§4.4):
//!   filter-based, subtree interval and root-split;
//! * [`build`] — index construction (§4.2, §6.2);
//! * [`cover`] — query decomposition: covers, `assign`, `optimalCover`,
//!   `minRC` (§5);
//! * [`join`] — MPMGJN and stack-based structural joins plus sort-merge
//!   equality joins (§2);
//! * [`stats`] — per-key planning statistics (§7's "statistics about
//!   subtrees such as their selectivities"): persisted at build time in
//!   the B+Tree's stats segment, estimated from byte lengths for
//!   pre-stats index files;
//! * [`plan`] — cost-based left-deep streaming join planning over the
//!   per-key statistics (no decoding at plan time);
//! * [`exec`] — the Volcano-style streaming executor: cursor-based
//!   posting scans, merge/structural join operators and order
//!   enforcers (§4.3, the default query path);
//! * [`eval`] — the legacy materializing query processor, retained as
//!   the equivalence oracle behind [`exec::ExecMode::Materialized`];
//! * [`sharded`] — tid-range partitioned shards: parallel build,
//!   scatter-gather execution with shard-skip pruning, and incremental
//!   ingest via the shard manifest (`si_storage::shard`).

pub mod blockcache;
pub mod build;
pub mod build_ext;
pub mod canonical;
pub mod coding;
pub mod cover;
pub mod eval;
pub mod exec;
pub mod extract;
pub mod holistic;
pub mod join;
pub mod plan;
pub mod resultcache;
pub mod sharded;
pub mod stats;

pub use blockcache::{BlockCache, BlockCacheConfig, BlockCacheStats};
pub use build::{IndexOptions, IndexStats, SubtreeIndex};
pub use coding::Coding;
pub use cover::{minrc, optimal_cover, Cover, CoverSubtree};
pub use eval::{EvalResult, EvalStats};
pub use exec::{ExecContext, ExecMode, SharedTuples};
pub use extract::{extract_subtrees, SubtreeRef};
pub use plan::PlannerMode;
pub use resultcache::{
    canonical_query_key, pack_match, unpack_match, ResultCache, ResultCacheConfig, ResultCacheStats,
};
pub use sharded::{AnyIndex, ShardBuildMode, ShardedBuildConfig, ShardedIndex};
pub use stats::{KeyStats, Stats, StatsCache};
