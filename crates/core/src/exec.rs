//! Volcano-style streaming execution of a [`Plan`] (§4.3).
//!
//! Every operator is a pull-based [`TupleStream`] over `(tid, slots)`
//! tuples sorted tid-major; posting bytes flow from the B+Tree one page
//! at a time ([`si_storage::ValueReader`] →
//! [`PostingCursor`](crate::coding::PostingCursor)) and are
//! decoded, expanded and joined incrementally. Peak memory is bounded by
//! the pages in flight plus the small per-operator windows (one tid
//! group for merge joins, the ancestor stack for Stack-Tree) — never by
//! the largest posting list, which the legacy materializing evaluator
//! pays in full.
//!
//! Operators:
//!
//! * [`PostingScan`] — decodes one cover subtree's posting list straight
//!   off the pager; expands interval postings by the key's
//!   automorphisms;
//! * `SortExchange` — order enforcer; the only operator that
//!   materializes, inserted by the planner solely where a driving slot's
//!   order is not already established (never for root-split covers);
//! * `MergeEqJoin` — sort-merge equality join on a shared query node
//!   (§4.3's equality joins);
//! * `MpmgjnJoin` / `StackTreeJoin` — the paper's structural joins
//!   (Zhang et al. SIGMOD 2001; Al-Khalifa et al. ICDE 2002), both
//!   streaming merges over `(tid, pre)`-sorted inputs;
//! * `TidCrossJoin` — per-tid nested loop, the fallback for disconnected
//!   join graphs (rare; valid covers are connected).
//!
//! Filter-based coding intersects the cover's tid streams with a k-way
//! merge and hands the survivors to the filtering phase, so candidate
//! tid lists are never materialized either.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use si_obs::{Stage, StageSpan, Timings};
use si_parsetree::TreeId;
use si_query::Query;
use si_storage::{Result, StorageError};

use crate::blockcache::{BlockCache, CacheTally, CachedListReader};
use crate::build::SubtreeIndex;
use crate::canonical::{automorphisms, decode_key};
use crate::coding::{Coding, Posting, PostingFeed};
use crate::cover::{decompose, Cover};
use crate::eval::{validate_candidates_with, EvalResult, EvalStats};
use crate::join::{combine, JoinKind, Pred, Slots, Tuple};
use crate::plan::{plan_structural_with, Plan, PlanStep, PlannerMode};
use crate::stats::{intersect_tid_ranges, key_stats_cached, KeyStats};

/// Pre-decoded tuple vectors shared across the queries of one service
/// batch, keyed by canonical cover key: the product of one
/// [`collect_scan_tuples`] pass, consumed by [`SharedScan`] operators in
/// many pipelines.
pub type SharedTuples = HashMap<Vec<u8>, Arc<Vec<Tuple>>>;

pub use crate::stats::StatsCache;

/// A bounded concurrent cache of decoded parse trees, used by the
/// validation/filtering phase: fetching a candidate tree parses it off
/// the data file, and hot trees recur across the queries of a batch.
pub struct TreeCache {
    map: std::sync::Mutex<HashMap<TreeId, Arc<si_parsetree::ParseTree>>>,
    cap: usize,
}

impl TreeCache {
    /// A cache holding at most `cap` decoded trees (inserts beyond the
    /// cap are dropped — validation still works, just uncached).
    pub fn new(cap: usize) -> Self {
        Self {
            map: std::sync::Mutex::new(HashMap::new()),
            cap,
        }
    }

    /// Fetches tree `tid` through the cache.
    pub fn get(&self, index: &SubtreeIndex, tid: TreeId) -> Result<Arc<si_parsetree::ParseTree>> {
        if let Some(tree) = self.map.lock().unwrap_or_else(|e| e.into_inner()).get(&tid) {
            return Ok(tree.clone());
        }
        let tree = Arc::new(index.store().get(tid)?);
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() < self.cap {
            map.insert(tid, tree.clone());
        }
        Ok(tree)
    }
}

impl Default for TreeCache {
    fn default() -> Self {
        Self::new(1 << 16)
    }
}

/// Ambient execution resources for one evaluation. The default (no
/// cache, no shared scans) reproduces the plain PR 1 streaming executor;
/// the query service (`si_service`) supplies all three.
#[derive(Clone)]
pub struct ExecContext<'s> {
    /// Decoded posting-block cache shared across queries and threads.
    pub cache: Option<Arc<BlockCache>>,
    /// Batch-shared tuple vectors: covers whose key appears here scan
    /// the shared vector instead of re-reading the B+Tree.
    pub shared: Option<&'s SharedTuples>,
    /// Memoized per-key planner statistics ([`crate::stats`]; subsumes
    /// the former `posting_len` memo — [`KeyStats::bytes`] carries the
    /// encoded length).
    pub stats: Option<StatsCache>,
    /// Decoded-tree cache for the validation/filtering phase.
    pub trees: Option<Arc<TreeCache>>,
    /// Join-ordering heuristic ([`PlannerMode::CostBased`] default;
    /// `ByteLen` reproduces PR 1's byte ordering for A/B comparison).
    pub planner: PlannerMode,
    /// Root-slot preference factor of the sort-free plan rule: when the
    /// cheapest joinable stream would need an order enforcer, a stream
    /// drivable on its scan's root slot (already in posting order) is
    /// preferred instead, as long as its estimated cardinality is
    /// within this factor of the cheapest. Values ≤ 1.0 disable the
    /// preference; the default is
    /// [`crate::plan::DEFAULT_ROOT_PREF_FACTOR`].
    pub root_pref_factor: f64,
    /// Whether cursors may **seek** (skip restart blocks via the
    /// per-list skip tables) instead of draining postings one by one.
    /// On by default; the bench's seek-vs-drain A/B and the executor
    /// differential tests turn it off to prove answer equivalence.
    /// Requires cost-based planning (seeks are seeded from the exact
    /// common tid range) and an index with skip headers — otherwise
    /// it is a silent no-op.
    pub seeks: bool,
    /// Per-query timing accumulator ([`si_obs::Timings`]). `None` — or
    /// a disabled `Timings` — keeps the instrumented paths at one
    /// branch per record point; when present and enabled the executor
    /// attributes nanoseconds to pipeline [`Stage`]s and fills in a
    /// per-operator node tree (the `--explain-analyze` /
    /// `--trace-json` surface).
    pub timings: Option<&'s Timings>,
}

impl Default for ExecContext<'_> {
    fn default() -> Self {
        Self {
            cache: None,
            shared: None,
            stats: None,
            trees: None,
            planner: PlannerMode::default(),
            root_pref_factor: crate::plan::DEFAULT_ROOT_PREF_FACTOR,
            seeks: true,
            timings: None,
        }
    }
}

impl ExecContext<'_> {
    /// Whether any resource beyond the plain executor is configured.
    pub fn is_plain(&self) -> bool {
        self.cache.is_none()
            && self.shared.is_none()
            && self.stats.is_none()
            && self.trees.is_none()
    }

    /// Opens a stage span against the context's timings; a no-op guard
    /// when timings are absent or disabled.
    pub fn span(&self, stage: Stage) -> Option<StageSpan<'_>> {
        self.timings.map(|t| t.span(stage))
    }
}

/// Executor selector: the streaming pipeline (default) or the legacy
/// materializing evaluator, retained as the equivalence oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Cursor-based pipeline from disk pages to joins (this module).
    #[default]
    Streaming,
    /// Legacy evaluator: materializes every posting list into `Vec`s
    /// before the join phase ([`crate::eval`]).
    Materialized,
}

impl ExecMode {
    /// Name for CLI/bench output.
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Streaming => "streaming",
            ExecMode::Materialized => "materialized",
        }
    }
}

/// Shared accounting of resident posting/tuple bytes across the operator
/// tree; `peak` is the figure the bench ablation reports.
#[derive(Clone, Default)]
pub struct MemMeter {
    inner: Rc<Cell<(usize, usize)>>,
}

impl MemMeter {
    fn adjust(&self, old: usize, new: usize) {
        let (cur, peak) = self.inner.get();
        let cur = cur + new - old.min(cur);
        self.inner.set((cur, peak.max(cur)));
    }

    fn add(&self, n: usize) {
        self.adjust(0, n);
    }

    fn sub(&self, n: usize) {
        self.adjust(n, 0);
    }

    /// High-water mark of resident bytes.
    pub fn peak(&self) -> usize {
        self.inner.get().1
    }
}

use crate::join::{tuple_bytes, tuples_bytes};

/// A pull-based stream of join tuples, tid-major ordered.
///
/// The stream **lends** each tuple: the borrow lives until the next
/// `next` call, extending the posting pipeline's borrow contract (pager
/// page → cursor window → posting → tuple) one level further up.
/// Consumers that only inspect the tuple (joins reading the driving
/// slots, the final projection) pay no copy at all; consumers that
/// buffer it (sort groups, join windows, merge lookaheads) clone
/// exactly what they would previously have owned. The big winner is
/// [`SharedScan`], which now serves borrows straight out of the
/// batch-shared vector instead of cloning every tuple for every
/// consumer.
pub trait TupleStream {
    /// Produces the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<&Tuple>>;
}

/// Clones a child stream's next tuple into an owned buffer slot —
/// the one copy point of operators that must hold tuples across pulls
/// (`lnext`/`rnext` lookaheads). Free function over disjoint `&mut`s so
/// callers can keep a borrow of a *different* child stream alive.
fn pull_into(stream: &mut BoxStream<'_>, next: &mut Option<Tuple>, done: &mut bool) -> Result<()> {
    if *done {
        *next = None;
        return Ok(());
    }
    *next = stream.next()?.cloned();
    if next.is_none() {
        *done = true;
    }
    Ok(())
}

type BoxStream<'a> = Box<dyn TupleStream + 'a>;

/// Opens the borrow-lending posting feed for one cover key — the
/// single construction point of the `Box<dyn PostingFeed>` seam, shared
/// by [`PostingScan`] and the filter-coding leapfrog intersection. With
/// a block cache in `ctx` the feed is a [`CachedListReader`] (hits are
/// served as zero-copy borrows out of pinned blocks, misses warm the
/// cache; an absent key yields an empty feed); without one it is a
/// [`PostingCursor`](crate::coding::PostingCursor) decoding straight
/// off the pager, where an absent key returns `None`.
pub fn make_feed<'a>(
    index: &'a SubtreeIndex,
    key: &[u8],
    ctx: &ExecContext<'_>,
    tally: &Rc<CacheTally>,
) -> Result<Option<Box<dyn PostingFeed + 'a>>> {
    Ok(match &ctx.cache {
        Some(cache) => Some(Box::new(CachedListReader::new(
            index,
            cache.clone(),
            key,
            tally.clone(),
        ))),
        None => index
            .posting_cursor(key)?
            .map(|cursor| Box::new(cursor) as Box<dyn PostingFeed + 'a>),
    })
}

/// Leading bytes of a cover list hinted at plan time — enough to cover
/// a list's first restart block (skip header + 1024 postings) on every
/// coding, without flooding the prefetch queue on wide covers.
pub(crate) const COVER_HINT_BYTES: u64 = 64 * 1024;

/// Plan-driven prefetch: once the join order is fixed, hint every cover
/// key's leading posting pages — in the order the plan will open them —
/// so the scans' first pulls find their pages warm or in flight.
/// `indices` selects cover subtrees (plan order for the structural
/// path; all covers for the leapfrog intersection, whose "join order"
/// is every stream at once). Lists whose first decoded block already
/// sits in the block cache are skipped via a non-counting peek
/// ([`BlockCache::contains`]): a warm list must cost nothing. The
/// returned tickets are held for the run's duration; dropping them
/// cancels whatever was not yet loaded.
///
/// Seek targets need no hint here: a leapfrog laggard's restart-block
/// hop bottoms out in `ValueReader::skip_chunk_bytes`, which hints its
/// own walk (see `si_storage::btree`).
pub(crate) fn hint_cover_lists(
    index: &SubtreeIndex,
    cover: &Cover,
    indices: impl Iterator<Item = usize>,
    ctx: &ExecContext<'_>,
) -> Vec<si_storage::PrefetchTicket> {
    if !si_storage::prefetch_enabled() {
        return Vec::new();
    }
    let mut tickets = Vec::new();
    for i in indices {
        let key = &cover.subtrees[i].key;
        if ctx.cache.as_ref().is_some_and(|c| c.contains(key, 0)) {
            continue;
        }
        if let Some(t) = index.prefetch_posting(key, COVER_HINT_BYTES) {
            tickets.push(t);
        }
    }
    tickets
}

/// Leaf operator: streams one cover subtree's postings — from the
/// B+Tree via a [`PostingCursor`](crate::coding::PostingCursor), or
/// from the decoded-block cache via
/// [`CachedListReader`] — and turns them into single- or multi-slot
/// tuples, sorted by `(tid, slots[0].pre)` — the order
/// [`crate::coding::PostingBuilder`] wrote them in. Postings arrive as
/// borrows from the feed's buffer; node values are copied into owned
/// [`Slots`] only here, the point where a tuple outlives its source
/// posting.
pub struct PostingScan<'a> {
    feed: Box<dyn PostingFeed + 'a>,
    /// Automorphic slot permutations (interval coding only).
    autos: Vec<Vec<usize>>,
    pending: VecDeque<Tuple>,
    fetched: Rc<Cell<usize>>,
    meter: MemMeter,
    reported: usize,
    /// Lending slot the borrow returned by `next` points into.
    slot: Option<Tuple>,
}

impl<'a> PostingScan<'a> {
    /// Opens a scan over `key`'s posting list; `None` when the key is
    /// absent from the index. With a block cache in `ctx`, the feed
    /// serves decoded blocks (reporting hits/misses into `tally`);
    /// otherwise it decodes straight off the pager.
    pub fn open(
        index: &'a SubtreeIndex,
        key: &[u8],
        fetched: Rc<Cell<usize>>,
        meter: MemMeter,
        ctx: &ExecContext<'_>,
        tally: Rc<CacheTally>,
    ) -> Result<Option<Self>> {
        let Some(feed) = make_feed(index, key, ctx, &tally)? else {
            return Ok(None);
        };
        let autos = match index.options().coding {
            Coding::SubtreeInterval => {
                let shape = decode_key(key)
                    .ok_or_else(|| StorageError::Corrupt("bad canonical key".into()))?;
                automorphisms(&shape, 720)
            }
            _ => Vec::new(),
        };
        Ok(Some(Self {
            feed,
            autos,
            pending: VecDeque::new(),
            fetched,
            meter,
            reported: 0,
            slot: None,
        }))
    }

    /// Forwards a seek to the underlying feed: postings with `tid <
    /// target` are skipped at restart-block granularity without being
    /// decoded. Only meaningful before the first tuple is pulled (the
    /// executor seeds scans to the cover's common tid-range start).
    /// Returns the number of postings skipped; 0 when the list has no
    /// skip table or the target lands in the current block.
    pub fn seek_to_tid(&mut self, target: TreeId) -> Result<u64> {
        debug_assert!(self.pending.is_empty() && self.slot.is_none());
        self.feed.seek_to_tid(target)
    }

    fn report(&mut self) {
        // The scan's footprint is its page window (reported at its
        // high-water mark so short inline lists register too) plus the
        // pending automorphic expansion.
        let now =
            self.feed.peak_buffer_bytes() + self.pending.iter().map(tuple_bytes).sum::<usize>();
        self.meter.adjust(self.reported, now);
        self.reported = now;
    }
}

impl TupleStream for PostingScan<'_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                self.report();
                self.slot = Some(t);
                return Ok(self.slot.as_ref());
            }
            // The posting is a borrow of the feed's buffer; everything
            // below copies node values (plain `Copy` data) into the
            // owned lending slot before the borrow ends.
            let Some(posting) = self.feed.next_posting()? else {
                self.report();
                return Ok(None);
            };
            self.fetched.set(self.fetched.get() + 1);
            match posting {
                Posting::Root { tid, root } => {
                    let t = Tuple {
                        tid: *tid,
                        slots: Slots::one(*root),
                    };
                    self.report();
                    self.slot = Some(t);
                    return Ok(self.slot.as_ref());
                }
                Posting::Occurrence { tid, nodes } => {
                    // Each posting fixes one arbitrary assignment of data
                    // nodes to canonical positions; automorphic
                    // reassignments are equally valid and joins must see
                    // them all.
                    for perm in &self.autos {
                        self.pending.push_back(Tuple {
                            tid: *tid,
                            slots: perm.iter().map(|&j| nodes[j].0).collect(),
                        });
                    }
                }
                Posting::Tid(_) => {
                    return Err(StorageError::Corrupt(
                        "tid posting in structural scan".into(),
                    ))
                }
            }
        }
    }
}

/// Leaf operator over a **batch-shared** tuple vector: one
/// [`collect_scan_tuples`] pass over a posting list (decode +
/// automorphic expansion done once) feeds any number of `SharedScan`s
/// across the concurrent pipelines of a service batch — the paper-scale
/// answer to many queries hitting the same hot cover key. Emits exactly
/// the tuples (and order) a fresh [`PostingScan`] over the same key
/// would.
pub struct SharedScan {
    tuples: Arc<Vec<Tuple>>,
    pos: usize,
    fetched: Rc<Cell<usize>>,
}

impl SharedScan {
    /// A scan over `tuples`, counting consumed tuples into `fetched`.
    pub fn new(tuples: Arc<Vec<Tuple>>, fetched: Rc<Cell<usize>>) -> Self {
        Self {
            tuples,
            pos: 0,
            fetched,
        }
    }

    /// Seeks the cursor past every tuple with `tid < target` — the
    /// shared-vector analogue of a posting seek, a binary search over
    /// the tid-major order instead of a skip table. Returns the number
    /// of tuples jumped (never handed to the consumer).
    pub fn seek_to_tid(&mut self, target: TreeId) -> u64 {
        let at = self.tuples.partition_point(|t| t.tid < target);
        let skipped = at.saturating_sub(self.pos);
        self.pos = self.pos.max(at);
        skipped as u64
    }
}

impl TupleStream for SharedScan {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        // The backing vector is owned by the batch, not this query; its
        // bytes are accounted once by the service, not per consumer —
        // and the tuple is **lent** straight out of it: no clone, the
        // zero-copy contract extended to batch-shared scans.
        match self.tuples.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                self.fetched.set(self.fetched.get() + 1);
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }
}

/// Fully drains one cover key's posting scan into a tuple vector that
/// [`SharedScan`] consumers can share. Runs through `ctx`'s block cache
/// when configured (warming it for later misses). Returns an empty
/// vector for an absent key.
pub fn collect_scan_tuples(
    index: &SubtreeIndex,
    key: &[u8],
    ctx: &ExecContext<'_>,
) -> Result<Arc<Vec<Tuple>>> {
    let fetched = Rc::new(Cell::new(0usize));
    let meter = MemMeter::default();
    let tally = Rc::new(CacheTally::default());
    let Some(mut scan) = PostingScan::open(index, key, fetched, meter, ctx, tally)? else {
        return Ok(Arc::new(Vec::new()));
    };
    let mut out = Vec::new();
    while let Some(t) = scan.next()? {
        out.push(t.clone());
    }
    Ok(Arc::new(out))
}

/// Order enforcer: re-emits its input sorted by `(tid,
/// slots[slot].pre)`. The planner inserts one only where the driving
/// slot's order is not already established symbolically; at runtime the
/// exchange exploits two facts the plan cannot see:
///
/// * every [`TupleStream`] is already **tid-major**, so only one tid
///   group is ever buffered (memory is bounded by the widest group, not
///   the stream — the old enforcer materialized everything);
/// * a group that *arrives* ordered on the driving slot is passed
///   through untouched (run detection), and an exchange that drains its
///   whole input without sorting a single group reports itself into
///   [`EvalStats::sort_exchanges_avoided`] — the observable "sort-free
///   plan" win.
struct SortExchange<'a> {
    input: BoxStream<'a>,
    slot: usize,
    group: VecDeque<Tuple>,
    /// One-tuple lookahead: the first tuple of the *next* tid group.
    lookahead: Option<Tuple>,
    started: bool,
    input_done: bool,
    /// Whether any tuple flowed at all (an empty input avoids nothing).
    saw_tuples: bool,
    /// Whether any group actually needed sorting.
    sorted_any: bool,
    /// Whether the drain outcome was already reported into `avoided`.
    reported: bool,
    /// Shared per-evaluation counter of avoided sorts.
    avoided: Rc<Cell<usize>>,
    meter: MemMeter,
    /// Lending slot the borrow returned by `next` points into.
    out_slot: Option<Tuple>,
}

impl<'a> SortExchange<'a> {
    fn new(input: BoxStream<'a>, slot: usize, avoided: Rc<Cell<usize>>, meter: MemMeter) -> Self {
        Self {
            input,
            slot,
            group: VecDeque::new(),
            lookahead: None,
            started: false,
            input_done: false,
            saw_tuples: false,
            sorted_any: false,
            reported: false,
            avoided,
            meter,
            out_slot: None,
        }
    }

    /// Buffers the next tid group from the input, sorting it only when
    /// it arrived out of driving-slot order. Returns whether any tuples
    /// were buffered.
    fn fill_group(&mut self) -> Result<bool> {
        if !self.started {
            self.started = true;
            self.lookahead = self.input.next()?.cloned();
        }
        let Some(first) = self.lookahead.take() else {
            self.input_done = true;
            return Ok(false);
        };
        let tid = first.tid;
        let slot = self.slot;
        let mut group = vec![first];
        let mut ordered = true;
        loop {
            match self.input.next()? {
                Some(t) if t.tid == tid => {
                    if t.slots[slot].pre < group.last().expect("non-empty group").slots[slot].pre {
                        ordered = false;
                    }
                    group.push(t.clone());
                }
                next => {
                    self.input_done = next.is_none();
                    self.lookahead = next.cloned();
                    break;
                }
            }
        }
        for t in &group {
            self.meter.add(tuple_bytes(t));
        }
        if !ordered {
            self.sorted_any = true;
            group.sort_by_key(|t| t.slots[slot].pre);
        }
        self.saw_tuples = true;
        self.group = group.into();
        Ok(true)
    }
}

impl TupleStream for SortExchange<'_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        loop {
            if let Some(t) = self.group.pop_front() {
                self.meter.sub(tuple_bytes(&t));
                self.out_slot = Some(t);
                return Ok(self.out_slot.as_ref());
            }
            if !self.input_done && self.fill_group()? {
                continue;
            }
            if !self.reported {
                self.reported = true;
                // An avoided sort requires tuples to have flowed: an
                // empty input (key absent from this shard, say) never
                // had anything to sort and must not inflate the
                // counter the CI smoke gate watches.
                if self.saw_tuples && !self.sorted_any {
                    self.avoided.set(self.avoided.get() + 1);
                }
            }
            return Ok(None);
        }
    }
}

fn passes(residuals: &[Pred], t: &Tuple) -> bool {
    residuals.iter().all(|p| p.holds(&t.slots))
}

/// Sort-merge equality join on `(tid, pre)` of the driving slots; both
/// inputs must arrive sorted on them. Buffers only the current
/// equal-key groups (the cross product of duplicates).
struct MergeEqJoin<'a> {
    left: BoxStream<'a>,
    right: BoxStream<'a>,
    ls: usize,
    rs: usize,
    residuals: Vec<Pred>,
    lnext: Option<Tuple>,
    rnext: Option<Tuple>,
    started: bool,
    out: VecDeque<Tuple>,
    meter: MemMeter,
    out_slot: Option<Tuple>,
}

impl<'a> MergeEqJoin<'a> {
    fn new(
        left: BoxStream<'a>,
        right: BoxStream<'a>,
        ls: usize,
        rs: usize,
        residuals: Vec<Pred>,
        meter: MemMeter,
    ) -> Self {
        Self {
            left,
            right,
            ls,
            rs,
            residuals,
            lnext: None,
            rnext: None,
            started: false,
            out: VecDeque::new(),
            meter,
            out_slot: None,
        }
    }
}

impl TupleStream for MergeEqJoin<'_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        loop {
            if let Some(t) = self.out.pop_front() {
                self.meter.sub(tuple_bytes(&t));
                self.out_slot = Some(t);
                return Ok(self.out_slot.as_ref());
            }
            if !self.started {
                self.started = true;
                self.lnext = self.left.next()?.cloned();
                self.rnext = self.right.next()?.cloned();
            }
            let (Some(l), Some(r)) = (&self.lnext, &self.rnext) else {
                return Ok(None);
            };
            let lk = (l.tid, l.slots[self.ls].pre);
            let rk = (r.tid, r.slots[self.rs].pre);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => self.lnext = self.left.next()?.cloned(),
                std::cmp::Ordering::Greater => self.rnext = self.right.next()?.cloned(),
                std::cmp::Ordering::Equal => {
                    // Gather both equal-key groups and emit their cross
                    // product (groups are tiny: same data node in the
                    // same tree).
                    let mut lgroup = Vec::new();
                    while let Some(l) = &self.lnext {
                        if (l.tid, l.slots[self.ls].pre) != lk {
                            break;
                        }
                        lgroup.push(self.lnext.take().unwrap());
                        self.lnext = self.left.next()?.cloned();
                    }
                    let mut rgroup = Vec::new();
                    while let Some(r) = &self.rnext {
                        if (r.tid, r.slots[self.rs].pre) != rk {
                            break;
                        }
                        rgroup.push(self.rnext.take().unwrap());
                        self.rnext = self.right.next()?.cloned();
                    }
                    for l in &lgroup {
                        for r in &rgroup {
                            let c = combine(l, r);
                            if passes(&self.residuals, &c) {
                                self.meter.add(tuple_bytes(&c));
                                self.out.push_back(c);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Streaming Multi-Predicate Merge Join (Zhang et al.): both inputs
/// sorted by `(tid, pre)` on the driving slots; buffers the left tuples
/// of the current tid whose interval can still contain upcoming right
/// tuples (per-tree windows — tens of nodes in parse trees).
struct MpmgjnJoin<'a> {
    left: BoxStream<'a>,
    right: BoxStream<'a>,
    kind: JoinKind,
    ls: usize,
    rs: usize,
    residuals: Vec<Pred>,
    window: Vec<Tuple>,
    window_bytes: usize,
    lnext: Option<Tuple>,
    left_done: bool,
    started: bool,
    out: VecDeque<Tuple>,
    meter: MemMeter,
    out_slot: Option<Tuple>,
}

impl<'a> MpmgjnJoin<'a> {
    fn new(
        left: BoxStream<'a>,
        right: BoxStream<'a>,
        kind: JoinKind,
        ls: usize,
        rs: usize,
        residuals: Vec<Pred>,
        meter: MemMeter,
    ) -> Self {
        debug_assert!(matches!(kind, JoinKind::Parent | JoinKind::Ancestor));
        Self {
            left,
            right,
            kind,
            ls,
            rs,
            residuals,
            window: Vec::new(),
            window_bytes: 0,
            lnext: None,
            left_done: false,
            started: false,
            out: VecDeque::new(),
            meter,
            out_slot: None,
        }
    }
}

impl TupleStream for MpmgjnJoin<'_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        loop {
            if let Some(t) = self.out.pop_front() {
                self.meter.sub(tuple_bytes(&t));
                self.out_slot = Some(t);
                return Ok(self.out_slot.as_ref());
            }
            if !self.started {
                self.started = true;
                pull_into(&mut self.left, &mut self.lnext, &mut self.left_done)?;
            }
            // `r` stays a borrow of the right child for the whole round:
            // every mutation below touches fields disjoint from
            // `self.right` (which is why the pulls go through the free
            // `pull_into` rather than a `&mut self` method).
            let Some(r) = self.right.next()? else {
                self.meter.sub(self.window_bytes);
                self.window_bytes = 0;
                self.window.clear();
                return Ok(None);
            };
            // Left tuples of earlier trees can never match this or any
            // future right tuple.
            if self.window.first().is_some_and(|w| w.tid < r.tid) {
                self.meter.sub(self.window_bytes);
                self.window_bytes = 0;
                self.window.clear();
            }
            while let Some(l) = &self.lnext {
                if l.tid < r.tid {
                    pull_into(&mut self.left, &mut self.lnext, &mut self.left_done)?;
                } else if l.tid == r.tid && l.slots[self.ls].pre < r.slots[self.rs].pre {
                    let l = self.lnext.take().unwrap();
                    self.window_bytes += tuple_bytes(&l);
                    self.meter.add(tuple_bytes(&l));
                    self.window.push(l);
                    pull_into(&mut self.left, &mut self.lnext, &mut self.left_done)?;
                } else {
                    break;
                }
            }
            if self.window.is_empty() && self.left_done {
                // No left candidate can ever appear again.
                return Ok(None);
            }
            let rv = r.slots[self.rs];
            for l in &self.window {
                if l.tid != r.tid {
                    continue;
                }
                let lv = l.slots[self.ls];
                let ok = match self.kind {
                    JoinKind::Parent => lv.is_parent_of(&rv),
                    JoinKind::Ancestor => lv.is_ancestor_of(&rv),
                    JoinKind::Eq => unreachable!("Eq uses MergeEqJoin"),
                };
                if ok {
                    let c = combine(l, r);
                    if passes(&self.residuals, &c) {
                        self.meter.add(tuple_bytes(&c));
                        self.out.push_back(c);
                    }
                }
            }
        }
    }
}

/// Streaming Stack-Tree join (Al-Khalifa et al.): one merged pass with a
/// stack of open ancestors — the per-tid memory is the tree depth, not
/// the node count.
struct StackTreeJoin<'a> {
    left: BoxStream<'a>,
    right: BoxStream<'a>,
    kind: JoinKind,
    ls: usize,
    rs: usize,
    residuals: Vec<Pred>,
    stack: Vec<Tuple>,
    lnext: Option<Tuple>,
    left_done: bool,
    started: bool,
    out: VecDeque<Tuple>,
    meter: MemMeter,
    out_slot: Option<Tuple>,
}

impl<'a> StackTreeJoin<'a> {
    fn new(
        left: BoxStream<'a>,
        right: BoxStream<'a>,
        kind: JoinKind,
        ls: usize,
        rs: usize,
        residuals: Vec<Pred>,
        meter: MemMeter,
    ) -> Self {
        debug_assert!(matches!(kind, JoinKind::Parent | JoinKind::Ancestor));
        Self {
            left,
            right,
            kind,
            ls,
            rs,
            residuals,
            stack: Vec::new(),
            lnext: None,
            left_done: false,
            started: false,
            out: VecDeque::new(),
            meter,
            out_slot: None,
        }
    }
}

impl TupleStream for StackTreeJoin<'_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        loop {
            if let Some(t) = self.out.pop_front() {
                self.meter.sub(tuple_bytes(&t));
                self.out_slot = Some(t);
                return Ok(self.out_slot.as_ref());
            }
            if !self.started {
                self.started = true;
                pull_into(&mut self.left, &mut self.lnext, &mut self.left_done)?;
            }
            // As in MPMGJN, `r` borrows the right child across the
            // round; all mutation below stays on disjoint fields.
            let Some(r) = self.right.next()? else {
                let freed = tuples_bytes(&self.stack);
                self.meter.sub(freed);
                self.stack.clear();
                return Ok(None);
            };
            let rv = r.slots[self.rs];
            // Pop ancestors that cannot contain r (different tree or
            // closed interval).
            while let Some(top) = self.stack.last() {
                let tv = top.slots[self.ls];
                if top.tid < r.tid || (top.tid == r.tid && !tv.is_ancestor_of(&rv)) {
                    let freed = tuple_bytes(top);
                    self.meter.sub(freed);
                    self.stack.pop();
                } else {
                    break;
                }
            }
            // Push left tuples that start before r, keeping only the
            // ancestor path of r.
            while let Some(l) = &self.lnext {
                let on_path = l.tid == r.tid && l.slots[self.ls].pre < rv.pre;
                let earlier_tree = l.tid < r.tid;
                if !(on_path || earlier_tree) {
                    break;
                }
                let l = self.lnext.take().unwrap();
                if l.tid == r.tid && l.slots[self.ls].is_ancestor_of(&rv) {
                    while let Some(top) = self.stack.last() {
                        if top.tid != r.tid || !top.slots[self.ls].is_ancestor_of(&rv) {
                            let freed = tuple_bytes(top);
                            self.meter.sub(freed);
                            self.stack.pop();
                        } else {
                            break;
                        }
                    }
                    self.meter.add(tuple_bytes(&l));
                    self.stack.push(l);
                }
                pull_into(&mut self.left, &mut self.lnext, &mut self.left_done)?;
            }
            if self.stack.is_empty() && self.left_done {
                return Ok(None);
            }
            for l in &self.stack {
                if l.tid != r.tid {
                    continue;
                }
                let lv = l.slots[self.ls];
                let ok = match self.kind {
                    JoinKind::Parent => lv.is_parent_of(&rv),
                    JoinKind::Ancestor => lv.is_ancestor_of(&rv),
                    JoinKind::Eq => unreachable!("Eq uses MergeEqJoin"),
                };
                if ok {
                    let c = combine(l, r);
                    if passes(&self.residuals, &c) {
                        self.meter.add(tuple_bytes(&c));
                        self.out.push_back(c);
                    }
                }
            }
        }
    }
}

/// Per-tid nested-loop join, the fallback when no predicate connects two
/// streams (disconnected join graphs; rare — valid covers are
/// connected). Buffers one tid group per side.
struct TidCrossJoin<'a> {
    left: BoxStream<'a>,
    right: BoxStream<'a>,
    residuals: Vec<Pred>,
    lnext: Option<Tuple>,
    rnext: Option<Tuple>,
    started: bool,
    out: VecDeque<Tuple>,
    meter: MemMeter,
    out_slot: Option<Tuple>,
}

impl<'a> TidCrossJoin<'a> {
    fn new(
        left: BoxStream<'a>,
        right: BoxStream<'a>,
        residuals: Vec<Pred>,
        meter: MemMeter,
    ) -> Self {
        Self {
            left,
            right,
            residuals,
            lnext: None,
            rnext: None,
            started: false,
            out: VecDeque::new(),
            meter,
            out_slot: None,
        }
    }
}

impl TupleStream for TidCrossJoin<'_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        loop {
            if let Some(t) = self.out.pop_front() {
                self.meter.sub(tuple_bytes(&t));
                self.out_slot = Some(t);
                return Ok(self.out_slot.as_ref());
            }
            if !self.started {
                self.started = true;
                self.lnext = self.left.next()?.cloned();
                self.rnext = self.right.next()?.cloned();
            }
            let (Some(l), Some(r)) = (&self.lnext, &self.rnext) else {
                return Ok(None);
            };
            match l.tid.cmp(&r.tid) {
                std::cmp::Ordering::Less => self.lnext = self.left.next()?.cloned(),
                std::cmp::Ordering::Greater => self.rnext = self.right.next()?.cloned(),
                std::cmp::Ordering::Equal => {
                    let tid = l.tid;
                    let mut lgroup = Vec::new();
                    while let Some(l) = &self.lnext {
                        if l.tid != tid {
                            break;
                        }
                        lgroup.push(self.lnext.take().unwrap());
                        self.lnext = self.left.next()?.cloned();
                    }
                    let mut rgroup = Vec::new();
                    while let Some(r) = &self.rnext {
                        if r.tid != tid {
                            break;
                        }
                        rgroup.push(self.rnext.take().unwrap());
                        self.rnext = self.right.next()?.cloned();
                    }
                    for l in &lgroup {
                        for r in &rgroup {
                            let c = combine(l, r);
                            if passes(&self.residuals, &c) {
                                self.meter.add(tuple_bytes(&c));
                                self.out.push_back(c);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Seek accounting shared by every scan of one evaluation.
#[derive(Default)]
struct SeekTally {
    seeks: Cell<u64>,
    postings_skipped: Cell<u64>,
}

impl SeekTally {
    fn record(&self, skipped: u64) {
        if skipped > 0 {
            self.seeks.set(self.seeks.get() + 1);
            self.postings_skipped
                .set(self.postings_skipped.get() + skipped);
        }
    }
}

/// A scan operator's **private** tally cells. When timings are enabled
/// each scan writes into its own cells instead of the query-shared
/// ones, so attribution is exact with zero work on the pull path: the
/// operator wrapper reads the totals once at drop, and the drain folds
/// them back into the query-wide counters afterwards.
struct ScanSnap {
    fetched: Rc<Cell<usize>>,
    tally: Rc<CacheTally>,
    seeks: Rc<SeekTally>,
}

/// Clock reads dominate the cost of per-pull operator timing (two
/// `Instant` calls against pulls that often decode a single posting),
/// so the wrapper samples the clock: the first `OP_WARM` pulls are
/// timed exactly (they cover open/seek work and short streams
/// entirely), then every `OP_SAMPLE`th pull after that, and the drop
/// scales sampled nanoseconds to the pull count. Rows and posting
/// tallies stay exact — rows are a plain increment, tallies live in
/// the scan's private cells ([`ScanSnap`]).
const OP_SAMPLE: u64 = 64;
const OP_WARM: u64 = 8;

/// Decorator stream measuring one operator: inclusive wall time
/// (clock-sampled, see [`OP_SAMPLE`]) and exact rows out per pull.
/// Only constructed when timings are enabled, so the disabled pipeline
/// runs the undecorated operators. Totals — including a scan's private
/// posting tallies — flush to the owning [`Timings`] node on drop.
struct TimedStream<'t, 'a> {
    inner: BoxStream<'a>,
    timings: &'t Timings,
    id: usize,
    sampled_nanos: u64,
    sampled_pulls: u64,
    pulls: u64,
    rows: u64,
    scan: Option<ScanSnap>,
}

impl TupleStream for TimedStream<'_, '_> {
    fn next(&mut self) -> Result<Option<&Tuple>> {
        let sampled = self.pulls < OP_WARM || self.pulls.is_multiple_of(OP_SAMPLE);
        self.pulls += 1;
        if sampled {
            return self.next_timed();
        }
        let r = self.inner.next();
        if matches!(r, Ok(Some(_))) {
            self.rows += 1;
        }
        r
    }
}

impl TimedStream<'_, '_> {
    /// The sampled pull: wraps `inner.next()` in a clock-read pair.
    /// Outlined and `#[cold]` so the clock machinery stays off the
    /// unsampled hot path — keeping it inline costs measurably more
    /// than the sampled clock reads themselves.
    #[cold]
    #[inline(never)]
    fn next_timed(&mut self) -> Result<Option<&Tuple>> {
        let start = std::time::Instant::now();
        let r = self.inner.next();
        self.sampled_nanos += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.sampled_pulls += 1;
        if matches!(r, Ok(Some(_))) {
            self.rows += 1;
        }
        r
    }
}

impl Drop for TimedStream<'_, '_> {
    fn drop(&mut self) {
        let nanos = if self.sampled_pulls == 0 {
            0
        } else {
            u64::try_from(
                u128::from(self.sampled_nanos) * u128::from(self.pulls)
                    / u128::from(self.sampled_pulls),
            )
            .unwrap_or(u64::MAX)
        };
        let (fetched, borrowed, skipped, seeks) = match &self.scan {
            Some(s) => (
                s.fetched.get() as u64,
                s.tally.borrowed.get(),
                s.seeks.postings_skipped.get(),
                s.seeks.seeks.get(),
            ),
            None => (0, 0, 0, 0),
        };
        self.timings
            .record_op(self.id, nanos, self.rows, fetched, borrowed, skipped, seeks);
    }
}

/// Wraps `stream` in a [`TimedStream`] when timings are enabled,
/// registering an operator node with the given label/cover/children.
/// Returns the (possibly undecorated) stream plus the node id.
fn wrap_op<'t: 'a, 'a>(
    timings: Option<&'t Timings>,
    stream: BoxStream<'a>,
    label: &str,
    cover: Option<usize>,
    children: Vec<usize>,
    scan: Option<ScanSnap>,
) -> (BoxStream<'a>, Option<usize>) {
    match timings {
        Some(t) => {
            let id = t.push_op(label, cover, children);
            (
                Box::new(TimedStream {
                    inner: stream,
                    timings: t,
                    id,
                    sampled_nanos: 0,
                    sampled_pulls: 0,
                    pulls: 0,
                    rows: 0,
                    scan,
                }),
                Some(id),
            )
        }
        None => (stream, None),
    }
}

/// Opens the tuple source for one cover key: a [`SharedScan`] when the
/// batch pre-decoded the key, otherwise a fresh [`PostingScan`]
/// (cache-aware when `ctx` has a block cache). `None` = key absent.
///
/// When `seek_lo` is set every match is known to live at `tid >=
/// seek_lo` (the cover's common tid-range start), so the scan is
/// **seeded**: it seeks past the prefix of its list below `seek_lo`
/// instead of decoding and join-discarding it — restart-block jumps for
/// posting feeds, a binary search for shared vectors.
#[allow(clippy::too_many_arguments)]
fn open_source<'a>(
    index: &'a SubtreeIndex,
    key: &[u8],
    ctx: &ExecContext<'_>,
    fetched: Rc<Cell<usize>>,
    meter: MemMeter,
    tally: Rc<CacheTally>,
    seek_lo: Option<TreeId>,
    seek_tally: &Rc<SeekTally>,
) -> Result<Option<(BoxStream<'a>, &'static str)>> {
    if let Some(shared) = ctx.shared {
        if let Some(tuples) = shared.get(key) {
            let mut scan = SharedScan::new(tuples.clone(), fetched);
            if let Some(lo) = seek_lo {
                seek_tally.record(scan.seek_to_tid(lo));
            }
            return Ok(Some((Box::new(scan), "shared scan")));
        }
    }
    let Some(mut scan) = PostingScan::open(index, key, fetched, meter, ctx, tally)? else {
        return Ok(None);
    };
    if let Some(lo) = seek_lo {
        seek_tally.record(scan.seek_to_tid(lo)?);
    }
    Ok(Some((Box::new(scan), "scan")))
}

/// Builds the operator tree for `plan` and fully evaluates it.
/// `common_range` is the intersection of the cover keys' exact tid
/// ranges when known (cost-based planning over exact stats): every scan
/// is seeded to its start, since a match needs all cover keys in one
/// tree.
fn run_structural(
    index: &SubtreeIndex,
    query: &Query,
    cover: &Cover,
    plan: &Plan,
    ctx: &ExecContext<'_>,
    common_range: Option<(TreeId, TreeId)>,
    stats: &mut EvalStats,
) -> Result<Vec<(TreeId, u32)>> {
    let meter = MemMeter::default();
    let fetched = Rc::new(Cell::new(0usize));
    let tally = Rc::new(CacheTally::default());
    let seek_tally = Rc::new(SeekTally::default());
    // Only an **enabled** accumulator decorates the pipeline; a
    // disabled one costs exactly the branches on this option.
    let timings = ctx.timings.filter(|t| t.enabled());
    let run_start = timings.map(|_| std::time::Instant::now());
    let (seek_before, validate_before) = timings.map_or((0, 0), |t| {
        (
            t.stage_nanos(Stage::PostingSeek),
            t.stage_nanos(Stage::Validate),
        )
    });
    let mut scan_ops: Vec<usize> = Vec::new();
    let seek_lo = match common_range {
        Some((lo, _)) if ctx.seeks => Some(lo),
        _ => None,
    };
    // Seeded with the sorts the planner itself proved unnecessary (a
    // root-slot driver chosen over one that would have required an
    // order enforcer); remaining exchanges add themselves when their
    // run detection never had to sort.
    let avoided = Rc::new(Cell::new(plan.sorts_avoided));
    // When instrumenting, each scan writes its posting tallies into
    // private cells (exact per-operator attribution with no work on
    // the pull path); the cells fold back into the query totals after
    // the drain. Kept here so the totals survive the operator drops.
    let scan_cells: std::cell::RefCell<Vec<ScanSnap>> = std::cell::RefCell::new(Vec::new());
    let open_scan =
        |cover_idx: usize| -> Result<Option<(BoxStream<'_>, &'static str, Option<ScanSnap>)>> {
            // Opening seeds the scan to the cover's common range start —
            // the structural path's posting-seek work.
            let _span = ctx.span(Stage::PostingSeek);
            let (f, t, s) = if timings.is_some() {
                (
                    Rc::new(Cell::new(0usize)),
                    Rc::new(CacheTally::default()),
                    Rc::new(SeekTally::default()),
                )
            } else {
                (fetched.clone(), tally.clone(), seek_tally.clone())
            };
            let opened = open_source(
                index,
                &cover.subtrees[cover_idx].key,
                ctx,
                f.clone(),
                meter.clone(),
                t.clone(),
                seek_lo,
                &s,
            )?;
            Ok(opened.map(|(stream, label)| {
                let snap = timings.is_some().then(|| {
                    scan_cells.borrow_mut().push(ScanSnap {
                        fetched: f.clone(),
                        tally: t.clone(),
                        seeks: s.clone(),
                    });
                    ScanSnap {
                        fetched: f,
                        tally: t,
                        seeks: s,
                    }
                });
                (stream, label, snap)
            }))
        };

    let Some((base, base_label, base_snap)) = open_scan(plan.base)? else {
        return Ok(Vec::new());
    };
    let (mut stream, mut left_id) = wrap_op(
        timings,
        base,
        base_label,
        Some(plan.base),
        vec![],
        base_snap,
    );
    scan_ops.extend(left_id);
    for step in &plan.steps {
        let PlanStep {
            cover: ci,
            driving,
            residuals,
            sort_left,
            sort_right,
        } = step;
        let Some((scan, scan_label, scan_snap)) = open_scan(*ci)? else {
            return Ok(Vec::new());
        };
        let (mut right, mut right_id) =
            wrap_op(timings, scan, scan_label, Some(*ci), vec![], scan_snap);
        scan_ops.extend(right_id);
        if let Some(slot) = sort_right {
            let sorted: BoxStream<'_> = Box::new(SortExchange::new(
                right,
                *slot,
                avoided.clone(),
                meter.clone(),
            ));
            (right, right_id) = wrap_op(
                timings,
                sorted,
                &format!("sort (slot {slot})"),
                None,
                right_id.into_iter().collect(),
                None,
            );
        }
        if let Some(slot) = sort_left {
            let sorted: BoxStream<'_> = Box::new(SortExchange::new(
                stream,
                *slot,
                avoided.clone(),
                meter.clone(),
            ));
            (stream, left_id) = wrap_op(
                timings,
                sorted,
                &format!("sort (slot {slot})"),
                None,
                left_id.into_iter().collect(),
                None,
            );
        }
        let join_label = match driving {
            Some((JoinKind::Eq, ..)) => "merge-eq join",
            Some((JoinKind::Parent, ..)) => match index.join_algo() {
                crate::join::JoinAlgo::Mpmgjn => "mpmgjn parent",
                crate::join::JoinAlgo::StackTree => "stack-tree parent",
            },
            Some((JoinKind::Ancestor, ..)) => match index.join_algo() {
                crate::join::JoinAlgo::Mpmgjn => "mpmgjn ancestor",
                crate::join::JoinAlgo::StackTree => "stack-tree ancestor",
            },
            None => "tid-cross join",
        };
        let joined: BoxStream<'_> = match driving {
            Some((JoinKind::Eq, l, rs)) => Box::new(MergeEqJoin::new(
                stream,
                right,
                *l,
                *rs,
                residuals.clone(),
                meter.clone(),
            )),
            Some((kind @ (JoinKind::Parent | JoinKind::Ancestor), l, rs)) => {
                match index.join_algo() {
                    crate::join::JoinAlgo::Mpmgjn => Box::new(MpmgjnJoin::new(
                        stream,
                        right,
                        *kind,
                        *l,
                        *rs,
                        residuals.clone(),
                        meter.clone(),
                    )),
                    crate::join::JoinAlgo::StackTree => Box::new(StackTreeJoin::new(
                        stream,
                        right,
                        *kind,
                        *l,
                        *rs,
                        residuals.clone(),
                        meter.clone(),
                    )),
                }
            }
            None => Box::new(TidCrossJoin::new(
                stream,
                right,
                residuals.clone(),
                meter.clone(),
            )),
        };
        (stream, left_id) = wrap_op(
            timings,
            joined,
            join_label,
            None,
            left_id.into_iter().chain(right_id).collect(),
            None,
        );
        stats.joins += 1;
    }

    let matches = if plan.needs_validation {
        stats.used_validation = true;
        let mut tids: Vec<TreeId> = Vec::new();
        while let Some(t) = stream.next()? {
            if tids.last() != Some(&t.tid) {
                tids.push(t.tid);
            }
        }
        tids.sort_unstable();
        tids.dedup();
        let _span = ctx.span(Stage::Validate);
        validate_candidates_with(index, query, &tids, ctx.trees.as_deref(), stats)?
    } else {
        let root_slot = plan.root_slot.expect("projection slot planned");
        // A join-free root-split plan emits straight off the posting
        // scan, which arrives sorted by (tid, root.pre) — dedup without
        // the sort.
        let presorted =
            plan.steps.is_empty() && root_slot == 0 && index.options().coding == Coding::RootSplit;
        // Sort-based dedup: cheaper than hashing for the output sizes
        // the workload produces, and the result must be sorted anyway.
        let mut matches: Vec<(TreeId, u32)> = Vec::new();
        while let Some(t) = stream.next()? {
            let pair = (t.tid, t.slots[root_slot].pre);
            if presorted {
                debug_assert!(matches.last().is_none_or(|&last| last <= pair));
                if matches.last() != Some(&pair) {
                    matches.push(pair);
                }
            } else {
                matches.push(pair);
            }
        }
        if !presorted {
            matches.sort_unstable();
            matches.dedup();
        }
        matches
    };
    // Flush the operator wrappers (their totals land in the timings on
    // drop), then partition the run's wall time into stages: decode is
    // the scan leaves' inclusive time, join is everything else in the
    // drain once seeding and validation are taken back out.
    drop(stream);
    if let (Some(t), Some(start)) = (timings, run_start) {
        let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let seek_delta = t.stage_nanos(Stage::PostingSeek) - seek_before;
        let validate_delta = t.stage_nanos(Stage::Validate) - validate_before;
        // Seek and validate were measured exactly by their spans; the
        // remaining budget splits into decode (the scan leaves' clock-
        // sampled inclusive time, capped so the sampled estimate can
        // never push the stage sum past the wall) and join (the rest
        // of the drain).
        let budget = total.saturating_sub(seek_delta + validate_delta);
        let decode: u64 = scan_ops.iter().map(|&id| t.op_nanos(id)).sum();
        let decode = decode.min(budget);
        t.add(Stage::Decode, decode);
        t.add(Stage::Join, budget - decode);
        if plan.needs_validation {
            let vid = t.push_op("validate", None, left_id.into_iter().collect());
            t.record_op(vid, validate_delta, matches.len() as u64, 0, 0, 0, 0);
        }
    }
    // Fold the scans' private tallies (instrumented runs only; see
    // `open_scan`) back into the query-wide cells before aggregating.
    for snap in scan_cells.borrow().iter() {
        fetched.set(fetched.get() + snap.fetched.get());
        tally.hits.set(tally.hits.get() + snap.tally.hits.get());
        tally
            .misses
            .set(tally.misses.get() + snap.tally.misses.get());
        tally
            .borrowed
            .set(tally.borrowed.get() + snap.tally.borrowed.get());
        seek_tally
            .seeks
            .set(seek_tally.seeks.get() + snap.seeks.seeks.get());
        seek_tally
            .postings_skipped
            .set(seek_tally.postings_skipped.get() + snap.seeks.postings_skipped.get());
    }
    stats.postings_fetched += fetched.get();
    stats.peak_posting_bytes = stats.peak_posting_bytes.max(meter.peak());
    stats.cache_hits += tally.hits.get();
    stats.cache_misses += tally.misses.get();
    stats.postings_borrowed += tally.borrowed.get();
    stats.sort_exchanges_avoided += avoided.get();
    stats.seeks += seek_tally.seeks.get();
    stats.postings_skipped += seek_tally.postings_skipped.get();
    Ok(matches)
}

/// Streaming evaluation under the filter-based coding: a k-way merge
/// intersection of the covers' ascending tid streams feeds the
/// filtering phase directly — no tid list is ever materialized. With
/// exact per-key statistics the intersection is **range-seeded**:
/// disjoint tid ranges prune the whole query up front, the initial
/// target is implicitly `max(first_tid)` (each stream's head *is* its
/// first tid), and the merge stops once the target passes
/// `min(last_tid)` instead of draining the longest list's tail.
fn eval_filter_streaming(
    index: &SubtreeIndex,
    query: &Query,
    cover: &Cover,
    ctx: &ExecContext<'_>,
    stats: &mut EvalStats,
) -> Result<EvalResult> {
    // Per-key statistics: a missing key means no matches; disjoint tid
    // ranges prove the intersection empty before any list is opened
    // (exact stats only — the fallback estimate never prunes).
    let plan_span = ctx.span(Stage::Plan);
    let mut key_stats: Vec<KeyStats> = Vec::with_capacity(cover.subtrees.len());
    for st in &cover.subtrees {
        match key_stats_cached(index, &st.key, ctx)? {
            Some(s) => key_stats.push(s),
            None => {
                return Ok(EvalResult {
                    matches: Vec::new(),
                    stats: *stats,
                })
            }
        }
    }
    let range = if ctx.planner == PlannerMode::CostBased {
        match intersect_tid_ranges(&key_stats) {
            Some(r) => Some(r),
            None => {
                stats.range_pruned = true;
                return Ok(EvalResult {
                    matches: Vec::new(),
                    stats: *stats,
                });
            }
        }
    } else {
        None
    };
    drop(plan_span);
    // The leapfrog drives every cover stream at once, so its "join
    // order" is all of them: hint each list's head before opening a
    // single cursor.
    let _cover_hints = hint_cover_lists(index, cover, 0..cover.subtrees.len(), ctx);

    let meter = MemMeter::default();
    let fetched = Rc::new(Cell::new(0usize));
    let tally = Rc::new(CacheTally::default());
    let seek_tally = SeekTally::default();
    let timings = ctx.timings.filter(|t| t.enabled());
    let use_seeks = ctx.seeks;
    let mut cursors: Vec<Box<dyn PostingFeed + '_>> = Vec::with_capacity(cover.subtrees.len());
    {
        let _span = ctx.span(Stage::PostingSeek);
        for st in &cover.subtrees {
            let Some(mut feed) = make_feed(index, &st.key, ctx, &tally)? else {
                return Ok(EvalResult {
                    matches: Vec::new(),
                    stats: *stats,
                });
            };
            // Seed each stream to the common range start: postings below
            // max(first_tid) can never survive the intersection, so jump
            // their restart blocks instead of decoding them.
            if use_seeks {
                if let Some((lo, _)) = range {
                    seek_tally.record(feed.seek_to_tid(lo)?);
                }
            }
            cursors.push(feed);
        }
    }
    stats.joins = cursors.len().saturating_sub(1);
    // Snapshot after seeding: only the seeks inside the merge loop are
    // subtracted from its wall time below.
    let seek_before = timings.map_or(0, |t| t.stage_nanos(Stage::PostingSeek));
    let isect_start = timings.map(|_| std::time::Instant::now());

    let advance = |cursor: &mut Box<dyn PostingFeed + '_>| -> Result<Option<TreeId>> {
        let Some(p) = cursor.next_posting()? else {
            return Ok(None);
        };
        fetched.set(fetched.get() + 1);
        match p {
            Posting::Tid(tid) => Ok(Some(*tid)),
            _ => Err(StorageError::Corrupt(
                "structural posting in filter index".into(),
            )),
        }
    };

    // Classic leapfrog intersection over ascending streams.
    let mut candidates: Vec<TreeId> = Vec::new();
    'outer: {
        let mut heads: Vec<TreeId> = Vec::with_capacity(cursors.len());
        for cursor in &mut cursors {
            match advance(cursor)? {
                Some(tid) => heads.push(tid),
                None => break 'outer,
            }
        }
        loop {
            let target = *heads.iter().max().unwrap();
            // Ceiling: no candidate can exceed min(last_tid) across the
            // cover, so stop instead of draining the remaining tails.
            if range.is_some_and(|(_, hi)| target > hi) {
                break 'outer;
            }
            let mut all_equal = true;
            for (i, cursor) in cursors.iter_mut().enumerate() {
                // Leapfrog: a lagging stream seeks to the target's
                // restart block first (skipping whole blocks of
                // postings undecoded), then drains the remainder of
                // the block posting by posting as before.
                if use_seeks && heads[i] < target {
                    let _span = ctx.span(Stage::PostingSeek);
                    seek_tally.record(cursor.seek_to_tid(target)?);
                }
                while heads[i] < target {
                    match advance(cursor)? {
                        Some(tid) => heads[i] = tid,
                        None => break 'outer,
                    }
                }
                if heads[i] > target {
                    all_equal = false;
                }
            }
            if all_equal {
                candidates.push(target);
                for (i, cursor) in cursors.iter_mut().enumerate() {
                    match advance(cursor)? {
                        Some(tid) => heads[i] = tid,
                        None => break 'outer,
                    }
                }
            }
        }
    }
    // Stage attribution: the merge loop's wall time minus the seek time
    // it contains is decode (pulling + comparing postings); the seeks
    // themselves were recorded in place.
    let isect_nanos = isect_start.map_or(0, |s| {
        u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
    });
    // Resident bytes: the cursor windows plus the candidate list.
    let windows: usize = cursors.iter().map(|c| c.peak_buffer_bytes()).sum();
    meter.add(windows + candidates.len() * std::mem::size_of::<TreeId>());
    stats.postings_fetched += fetched.get();
    stats.cache_hits += tally.hits.get();
    stats.cache_misses += tally.misses.get();
    stats.postings_borrowed += tally.borrowed.get();
    stats.seeks += seek_tally.seeks.get();
    stats.postings_skipped += seek_tally.postings_skipped.get();
    let validate_before = timings.map_or(0, |t| t.stage_nanos(Stage::Validate));
    let matches = {
        let _span = ctx.span(Stage::Validate);
        validate_candidates_with(index, query, &candidates, ctx.trees.as_deref(), stats)?
    };
    if let Some(t) = timings {
        let seek_delta = t.stage_nanos(Stage::PostingSeek) - seek_before;
        t.add(Stage::Decode, isect_nanos.saturating_sub(seek_delta));
        let leap = t.push_op("tid leapfrog", None, Vec::new());
        t.record_op(
            leap,
            isect_nanos,
            candidates.len() as u64,
            fetched.get() as u64,
            tally.borrowed.get(),
            seek_tally.postings_skipped.get(),
            seek_tally.seeks.get(),
        );
        let vid = t.push_op("validate", None, vec![leap]);
        t.record_op(
            vid,
            t.stage_nanos(Stage::Validate) - validate_before,
            matches.len() as u64,
            0,
            0,
            0,
            0,
        );
    }
    stats.peak_posting_bytes = stats.peak_posting_bytes.max(meter.peak());
    Ok(EvalResult {
        matches,
        stats: *stats,
    })
}

/// Evaluates `query` with the streaming pipeline. Entry point behind
/// [`SubtreeIndex::evaluate`] when [`ExecMode::Streaming`] is selected
/// (the default).
pub fn evaluate_streaming(index: &SubtreeIndex, query: &Query) -> Result<EvalResult> {
    evaluate_streaming_with(index, query, &ExecContext::default())
}

/// [`evaluate_streaming`] with explicit execution resources: the query
/// service's entry point (block cache + batch-shared scans).
pub fn evaluate_streaming_with(
    index: &SubtreeIndex,
    query: &Query,
    ctx: &ExecContext<'_>,
) -> Result<EvalResult> {
    let options = index.options();
    let cover = {
        let _span = ctx.span(Stage::Canonicalize);
        decompose(query, options.mss, options.coding)
    };
    debug_assert_eq!(cover.validate(query, options.mss), Ok(()));
    let mut stats = EvalStats {
        covers: cover.subtrees.len(),
        ..EvalStats::default()
    };
    if options.coding == Coding::FilterBased {
        return eval_filter_streaming(index, query, &cover, ctx, &mut stats);
    }

    // Per-key statistics (stats segment, or byte-length estimates for
    // pre-stats index files) — the planner's only input. A missing key
    // means some cover subtree occurs nowhere: no matches, and no
    // posting list is ever opened.
    let plan_span = ctx.span(Stage::Plan);
    let mut key_stats = Vec::with_capacity(cover.subtrees.len());
    for st in &cover.subtrees {
        match key_stats_cached(index, &st.key, ctx)? {
            Some(s) => key_stats.push(s),
            None => {
                return Ok(EvalResult {
                    matches: Vec::new(),
                    stats,
                })
            }
        }
    }
    // Tid-range pruning: every match needs all cover keys in the same
    // tree, so disjoint [first, last] ranges prove the result empty
    // before a single posting is decoded. Exact ranges only (the
    // byte-length fallback carries the full range and never prunes);
    // gated off in ByteLen mode so A/B runs isolate the cost model.
    let common_range = if ctx.planner == PlannerMode::CostBased {
        match intersect_tid_ranges(&key_stats) {
            Some(range) => Some(range),
            None => {
                stats.range_pruned = true;
                return Ok(EvalResult {
                    matches: Vec::new(),
                    stats,
                });
            }
        }
    } else {
        None
    };
    let plan = plan_structural_with(
        query,
        &cover,
        options.coding,
        &key_stats,
        ctx.planner,
        ctx.root_pref_factor,
    );
    drop(plan_span);
    // The join order is now fixed: overlap the cover lists' leading
    // reads under operator-tree construction and the first pulls.
    let _cover_hints = hint_cover_lists(
        index,
        &cover,
        std::iter::once(plan.base).chain(plan.steps.iter().map(|s| s.cover)),
        ctx,
    );
    let matches = run_structural(index, query, &cover, &plan, ctx, common_range, &mut stats)?;
    Ok(EvalResult { matches, stats })
}
