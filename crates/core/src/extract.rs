//! Enumeration of all rooted subtrees up to `mss` nodes (§4.1–4.2).
//!
//! A *subtree* (Definition 4, Figure 4) is a node of the data tree
//! together with a connected set of its descendants, keeping only
//! parent-child edges. For every node the enumeration produces every such
//! subtree of size `1..=mss`; the subtree's canonical key
//! ([`crate::canonical`]) identifies its index entry and the canonical
//! node listing drives posting construction.
//!
//! The count per node grows with the branching factor (Figure 3) but
//! parse trees keep branching small (§4.1), so complete enumeration is
//! cheap — the property that makes subtree indexing feasible at all, in
//! contrast to the arbitrary graphs of Williams et al. (ICDE 2007).

use si_parsetree::varint;
use si_parsetree::{NodeId, ParseTree};

/// One enumerated subtree occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeRef {
    /// Canonical key bytes identifying the index entry.
    pub key: Vec<u8>,
    /// Data nodes in canonical order; `nodes[0]` is the subtree root.
    pub nodes: Vec<NodeId>,
}

impl SubtreeRef {
    /// The subtree root within the data tree.
    pub fn root(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// Enumerates every subtree of size `1..=mss` of `tree`, roots in
/// pre-order (subtrees sharing a root are adjacent). See
/// [`for_each_subtree`] for the streaming variant used by index builds.
pub fn extract_subtrees(tree: &ParseTree, mss: usize) -> Vec<SubtreeRef> {
    let mut out = Vec::new();
    for_each_subtree(tree, mss, |s| out.push(s.clone()));
    out
}

/// Streaming enumeration: calls `f` for every subtree, roots in
/// pre-order. Postings built from this order arrive sorted by
/// `(tid, root.pre)`, the sort order the index stores.
///
/// # Panics
/// Panics if `mss == 0`.
pub fn for_each_subtree<F: FnMut(&SubtreeRef)>(tree: &ParseTree, mss: usize, mut f: F) {
    assert!(mss >= 1, "mss must be at least 1");
    let n = tree.len();
    // items[v] = all subtrees rooted at v with size <= mss. Children have
    // larger pre ids, so reverse pre-order is a valid bottom-up schedule.
    let mut items: Vec<Vec<SubtreeRef>> = vec![Vec::new(); n];
    for v in (0..n as u32).rev().map(NodeId) {
        // A combo picks at most one enumerated subtree per child; the
        // node itself plus the combo is a subtree rooted at v. Combos are
        // tracked as (child pre, item index) pairs plus their total size.
        let mut combos: Vec<(Vec<(u32, u32)>, usize)> = vec![(Vec::new(), 0)];
        if mss > 1 {
            for c in tree.children(v) {
                let ci = c.0 as usize;
                let mut extended = Vec::new();
                for (combo, used) in &combos {
                    for (ii, item) in items[ci].iter().enumerate() {
                        if used + item.size() < mss {
                            let mut e = combo.clone();
                            e.push((c.0, ii as u32));
                            extended.push((e, used + item.size()));
                        }
                    }
                }
                combos.extend(extended);
            }
        }
        let mut my_items = Vec::with_capacity(combos.len());
        for (combo, total) in combos {
            let mut blocks: Vec<&SubtreeRef> = combo
                .iter()
                .map(|&(c, i)| &items[c as usize][i as usize])
                .collect();
            // Canonical child order: lexicographic on encoded blocks,
            // matching `canonical::canon_encode`.
            blocks.sort_by(|a, b| a.key.cmp(&b.key));
            let size = total + 1;
            let mut key = Vec::with_capacity(8 + blocks.iter().map(|b| b.key.len()).sum::<usize>());
            varint::write_u32(&mut key, tree.label(v).id());
            varint::write_u64(&mut key, size as u64);
            let mut nodes = Vec::with_capacity(size);
            nodes.push(v);
            for b in blocks {
                key.extend_from_slice(&b.key);
                nodes.extend_from_slice(&b.nodes);
            }
            my_items.push(SubtreeRef { key, nodes });
        }
        items[v.0 as usize] = my_items;
    }
    for node_items in &items {
        for item in node_items {
            f(item);
        }
    }
}

/// Number of subtrees of each size rooted at `v` (index `s` holds the
/// count for size `s`; index 0 unused). Drives Figure 3.
pub fn count_by_size(tree: &ParseTree, v: NodeId, mss: usize) -> Vec<u64> {
    let mut counts = vec![0u64; mss + 1];
    // Cheap local DP: counts per size for subtrees rooted at each node.
    fn counts_at(
        tree: &ParseTree,
        v: NodeId,
        mss: usize,
        memo: &mut Vec<Option<Vec<u64>>>,
    ) -> Vec<u64> {
        if let Some(c) = &memo[v.0 as usize] {
            return c.clone();
        }
        // dp[s] = number of child combos of total size s.
        let mut dp = vec![0u64; mss];
        dp[0] = 1;
        for c in tree.children(v) {
            let child = counts_at(tree, c, mss, memo);
            let mut next = dp.clone();
            for s in 0..mss {
                if dp[s] == 0 {
                    continue;
                }
                for (cs, &cc) in child.iter().enumerate().skip(1) {
                    if s + cs < mss {
                        next[s + cs] += dp[s] * cc;
                    }
                }
            }
            dp = next;
        }
        let mut out = vec![0u64; mss + 1];
        for (s, &v) in dp.iter().enumerate() {
            out[s + 1] = v;
        }
        memo[v.0 as usize] = Some(out.clone());
        out
    }
    let mut memo = vec![None; tree.len()];
    let at = counts_at(tree, v, mss, &mut memo);
    counts[..(mss + 1)].copy_from_slice(&at[..(mss + 1)]);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{canon_encode, key_size};
    use si_parsetree::{ptb, LabelInterner, ParseTree};
    use std::collections::HashSet;

    fn parse(src: &str) -> (ParseTree, LabelInterner) {
        let mut li = LabelInterner::new();
        let t = ptb::parse(src, &mut li).unwrap();
        (t, li)
    }

    /// Brute-force baseline: enumerate connected rooted node sets.
    fn brute_force(tree: &ParseTree, mss: usize) -> HashSet<Vec<u32>> {
        let mut all = HashSet::new();
        for root in tree.nodes() {
            // BFS over subsets: grow sets by adding children of members.
            let mut sets: Vec<Vec<NodeId>> = vec![vec![root]];
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            while let Some(set) = sets.pop() {
                let mut ids: Vec<u32> = set.iter().map(|n| n.0).collect();
                ids.sort_unstable();
                if !seen.insert(ids.clone()) {
                    continue;
                }
                all.insert(ids);
                if set.len() == mss {
                    continue;
                }
                for &m in &set {
                    for c in tree.children(m) {
                        if !set.contains(&c) {
                            let mut bigger = set.clone();
                            bigger.push(c);
                            sets.push(bigger);
                        }
                    }
                }
            }
        }
        all
    }

    #[test]
    fn figure_4_style_key_extraction() {
        // Figure 4 shows an 8-node tree whose size-2 keys are one per
        // edge modulo symmetry and whose unique-key counts shrink
        // relative to occurrence counts. We verify those structural facts
        // on a similar 8-node tree.
        let (t, _) = parse("(A (C (A) (B)) (B (A (C) (D))))");
        let subtrees = extract_subtrees(&t, 5);
        let by_size = |s: usize| subtrees.iter().filter(|x| x.size() == s).count();
        assert_eq!(by_size(1), 8); // one per node
        assert_eq!(by_size(2), 7); // one per edge
        let unique = |s: usize| {
            subtrees
                .iter()
                .filter(|x| x.size() == s)
                .map(|x| x.key.clone())
                .collect::<HashSet<_>>()
                .len()
        };
        // Duplicate structures (two A(C) edges, two A(B)-shaped edges)
        // collapse under canonical keying.
        assert!(unique(2) < by_size(2));
        assert_eq!(unique(1), 4); // labels A, B, C, D
                                  // Unique counts can never exceed occurrence counts.
        for s in 1..=5 {
            assert!(unique(s) <= by_size(s), "size {s}");
        }
    }

    #[test]
    fn matches_brute_force_on_small_trees() {
        for src in [
            "(A (B) (C))",
            "(A (B (C) (D)) (E))",
            "(S (NP (DT) (NN)) (VP (VBZ) (NP (NN))))",
            "(A (A (A (A))))",
            "(A (B) (B) (B))",
        ] {
            let (t, _) = parse(src);
            for mss in 1..=4 {
                let ours: HashSet<Vec<u32>> = extract_subtrees(&t, mss)
                    .into_iter()
                    .map(|s| {
                        let mut ids: Vec<u32> = s.nodes.iter().map(|n| n.0).collect();
                        ids.sort_unstable();
                        ids
                    })
                    .collect();
                let want = brute_force(&t, mss);
                assert_eq!(ours, want, "{src} mss={mss}");
            }
        }
    }

    #[test]
    fn keys_agree_with_canon_encode() {
        let (t, _) = parse("(S (NP (DT) (NN)) (VP (VBZ)))");
        // Full-tree extraction at mss = tree size includes the whole tree,
        // whose key must equal canon_encode of the tree itself.
        let subtrees = extract_subtrees(&t, t.len());
        let (full_key, _) = canon_encode(t.root(), &|n| t.label(n).id(), &|n| {
            t.children(n).collect::<Vec<_>>()
        });
        assert!(
            subtrees.iter().any(|s| s.key == full_key),
            "whole tree enumerated with canonical key"
        );
        for s in &subtrees {
            assert_eq!(key_size(&s.key), Some(s.size()));
            assert_eq!(s.nodes[0], s.root());
        }
    }

    #[test]
    fn unary_chain_has_linear_counts() {
        // A chain of n nodes has n - m + 1 subtrees of size m (§4.1).
        let (t, _) = parse("(A (B (C (D (E)))))");
        for mss in 1..=5 {
            let subtrees = extract_subtrees(&t, mss);
            let count_m = subtrees.iter().filter(|s| s.size() == mss).count();
            assert_eq!(count_m, 5 - mss + 1, "mss={mss}");
        }
    }

    #[test]
    fn flat_fanout_has_binomial_counts() {
        // Root with 5 leaf children: C(5, m-1) subtrees of size m.
        let (t, _) = parse("(A (B) (C) (D) (E) (F))");
        let subtrees = extract_subtrees(&t, 4);
        let rooted_at_root = |s: usize| {
            subtrees
                .iter()
                .filter(|x| x.size() == s && x.root() == t.root())
                .count()
        };
        assert_eq!(rooted_at_root(2), 5);
        assert_eq!(rooted_at_root(3), 10);
        assert_eq!(rooted_at_root(4), 10);
    }

    #[test]
    fn symmetric_occurrences_share_one_key() {
        // A(B)(C) and A(C)(B) are the same unordered key (Figure 4).
        let mut li = LabelInterner::new();
        let t1 = ptb::parse("(A (B) (C))", &mut li).unwrap();
        let t2 = ptb::parse("(A (C) (B))", &mut li).unwrap();
        let k1: HashSet<Vec<u8>> = extract_subtrees(&t1, 3)
            .into_iter()
            .map(|s| s.key)
            .collect();
        let k2: HashSet<Vec<u8>> = extract_subtrees(&t2, 3)
            .into_iter()
            .map(|s| s.key)
            .collect();
        assert_eq!(k1, k2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn count_by_size_matches_enumeration() {
        let (t, _) = parse("(S (NP (DT) (NN)) (VP (VBZ) (NP (NN))))");
        let subtrees = extract_subtrees(&t, 4);
        for v in t.nodes() {
            let counts = count_by_size(&t, v, 4);
            for s in 1..=4 {
                let actual = subtrees
                    .iter()
                    .filter(|x| x.root() == v && x.size() == s)
                    .count() as u64;
                assert_eq!(counts[s], actual, "node {} size {s}", v.0);
            }
        }
    }

    #[test]
    fn roots_arrive_in_preorder() {
        let (t, _) = parse("(S (NP (DT) (NN)) (VP (VBZ)))");
        let subtrees = extract_subtrees(&t, 3);
        let roots: Vec<u32> = subtrees.iter().map(|s| s.root().0).collect();
        let mut sorted = roots.clone();
        sorted.sort_unstable();
        assert_eq!(roots, sorted);
    }

    #[test]
    #[should_panic(expected = "mss must be at least 1")]
    fn zero_mss_panics() {
        let (t, _) = parse("(A)");
        extract_subtrees(&t, 0);
    }
}
