//! Cost-based left-deep join planning for the streaming executor
//! (§4.3's join phase, planned ahead of execution).
//!
//! The legacy evaluator materialized every cover's posting list and only
//! then ordered the joins by tuple counts. This module plans the whole
//! pipeline *before* a single posting is decoded, from per-key
//! statistics ([`KeyStats`]) persisted in the
//! index's stats segment — the "statistics about subtrees such as their
//! selectivities" §7 of the paper anticipates as the step beyond its
//! own implementation.
//!
//! # The cost model
//!
//! Join order is chosen by **estimated cardinality**, not raw encoded
//! bytes. For cover `i` with statistics `s(i)` and the batch-wide
//! common tid range `common = ⋂ᵢ [s(i).first_tid, s(i).last_tid]`:
//!
//! ```text
//! est(i) = postings(i) × autos(i) × |common| / span(i)
//! ```
//!
//! * `postings(i)` — exact posting count from the stats segment (for
//!   pre-stats index files, an estimate from the encoded byte length —
//!   which degrades to the old byte-ordering heuristic);
//! * `autos(i)` — the automorphism expansion factor of the key
//!   (interval coding only): each stored posting expands into one join
//!   tuple per automorphic slot assignment, so a symmetric key's true
//!   stream cardinality is a multiple of its posting count. Byte length
//!   systematically mis-ranks such keys;
//! * `|common| / span(i)` — the fraction of the key's tid range that
//!   can still participate after every cover's range is intersected
//!   (assuming uniform posting density). A long list concentrated
//!   outside the common range is cheaper than its byte length suggests.
//!
//! When `common` is empty the executor never calls this planner: no
//! tree holds all cover keys, so the query provably has no matches
//! (the pre-execution pruning in `crate::exec`).
//!
//! [`PlannerMode::ByteLen`] retains the previous ordering (encoded
//! bytes, PR 1's heuristic) for A/B comparison — the `experiments
//! planner` bench runs both modes on the same seeded workload and
//! asserts identical match sets; join order never affects correctness,
//! only cost.
//!
//! # Plan shape
//!
//! The resulting [`Plan`] is a left-deep operator tree:
//!
//! * the cheapest stream (by `est`) becomes the base [`PostingScan`
//!   (`crate::exec::PostingScan`)];
//! * each further step joins the cheapest *connected* remaining stream
//!   via one driving predicate — a sort-merge equality join for shared
//!   query nodes, MPMGJN or Stack-Tree for `/` and `//` edges (Zhang et
//!   al. SIGMOD 2001; Al-Khalifa et al. ICDE 2002) — with every other
//!   predicate between the two sides applied as a residual filter;
//! * order requirements are tracked symbolically: posting scans arrive
//!   sorted by `(tid, root.pre)`, joins emit in right-input order, and a
//!   sort enforcer is inserted only where the driving slot's order is
//!   not already established.
//!
//! Predicate derivation (shared query nodes, query edges across covers,
//! and the same-label `/`-sibling distinctness rule of DESIGN.md §5) is
//! shared with the legacy evaluator so both executors enforce exactly
//! the same semantics — the basis of the equivalence suite.

use si_query::{Axis, QNodeId, Query};

use crate::canonical::{automorphisms, decode_key};
use crate::coding::Coding;
use crate::cover::Cover;
use crate::join::{JoinKind, Pred};
use crate::stats::{intersect_tid_ranges, KeyStats};

/// Relation between two query nodes exposed by different streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// Both streams bind the same data node.
    Eq,
    /// The first node is the parent of the second.
    Parent,
    /// The first node is a proper ancestor of the second.
    Ancestor,
    /// The nodes bind distinct data nodes (sibling distinctness).
    Neq,
}

/// A predicate between two streams: `kind` relates query node `aq`
/// (exposed by stream `a`) to `bq` (exposed by stream `b`); for
/// Parent/Ancestor, `aq` is the upper end.
#[derive(Debug, Clone, Copy)]
pub struct StreamPred {
    /// Stream exposing the first endpoint.
    pub a: usize,
    /// Stream exposing the second endpoint.
    pub b: usize,
    /// First endpoint (upper end for Parent/Ancestor).
    pub aq: QNodeId,
    /// Second endpoint.
    pub bq: QNodeId,
    /// The relation.
    pub kind: PredKind,
}

/// The query nodes each cover subtree exposes as tuple slots under
/// `coding`: just the root for root-split, every member for the interval
/// coding.
pub fn exposed_qnodes(cover: &Cover, coding: Coding) -> Vec<Vec<QNodeId>> {
    cover
        .subtrees
        .iter()
        .map(|st| match coding {
            Coding::RootSplit => vec![st.root],
            Coding::SubtreeInterval => st.nodes.clone(),
            Coding::FilterBased => Vec::new(),
        })
        .collect()
}

/// Derives all cross-stream predicates plus the validation-fallback
/// flag. `exposed` lists the query nodes each stream exposes (see
/// [`exposed_qnodes`]).
pub fn cross_stream_predicates(
    query: &Query,
    cover: &Cover,
    exposed: &[Vec<QNodeId>],
) -> (Vec<StreamPred>, bool) {
    let streams_of = |q: QNodeId| -> Vec<usize> {
        exposed
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(&q))
            .map(|(i, _)| i)
            .collect()
    };
    let mut preds: Vec<StreamPred> = Vec::new();

    // Shared exposures: same query node in several streams.
    for q in query.nodes() {
        let ex = streams_of(q);
        for w in ex.windows(2) {
            preds.push(StreamPred {
                a: w[0],
                b: w[1],
                aq: q,
                bq: q,
                kind: PredKind::Eq,
            });
        }
    }

    // Query edges across streams.
    for v in query.nodes().skip(1) {
        let u = query.parent(v).expect("non-root");
        let kind = match query.axis(v) {
            Axis::Child => PredKind::Parent,
            Axis::Descendant => PredKind::Ancestor,
        };
        for &a in &streams_of(u) {
            for &b in &streams_of(v) {
                if a != b {
                    preds.push(StreamPred {
                        a,
                        b,
                        aq: u,
                        bq: v,
                        kind,
                    });
                }
            }
        }
    }

    // Same-label `/`-sibling distinctness (DESIGN.md §5).
    let mut needs_validation = false;
    for p in query.nodes() {
        let kids: Vec<QNodeId> = query.children_via(p, Axis::Child).collect();
        for (i, &u) in kids.iter().enumerate() {
            for &v in &kids[i + 1..] {
                if query.label(u) != query.label(v) {
                    continue;
                }
                // Co-residence in one cover implies distinctness (an
                // occurrence is a real subtree).
                if cover
                    .subtrees
                    .iter()
                    .any(|s| s.contains(u) && s.contains(v))
                {
                    continue;
                }
                let eu = streams_of(u);
                let ev = streams_of(v);
                if eu.is_empty() || ev.is_empty() {
                    needs_validation = true;
                    continue;
                }
                for &a in &eu {
                    for &b in &ev {
                        if a != b {
                            preds.push(StreamPred {
                                a,
                                b,
                                aq: u,
                                bq: v,
                                kind: PredKind::Neq,
                            });
                        }
                    }
                }
            }
        }
    }
    (preds, needs_validation)
}

/// One join step of a left-deep [`Plan`]: the accumulated left input is
/// combined with cover `cover`'s posting scan.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Index into `cover.subtrees` of the stream joined at this step.
    pub cover: usize,
    /// Driving condition `(kind, left_combined_slot, right_slot)`; `None`
    /// falls back to a per-tid cross join (disconnected join graphs).
    pub driving: Option<(JoinKind, usize, usize)>,
    /// Residual predicates over the *combined* slot vector (left slots
    /// first), applied as a filter after the driving join.
    pub residuals: Vec<Pred>,
    /// Sort the left input by this combined slot before joining (order
    /// enforcer; absent when the required order is already established).
    pub sort_left: Option<usize>,
    /// Sort the right posting scan by this slot before joining (posting
    /// scans arrive sorted by slot 0, the subtree root).
    pub sort_right: Option<usize>,
}

/// A planned left-deep streaming pipeline for structural codings.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Cover index of the base (smallest) posting scan.
    pub base: usize,
    /// Join steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// Slot of the query root in the final combined slot vector (absent
    /// only when the validation fallback is required).
    pub root_slot: Option<usize>,
    /// Whether matches must be re-validated against the data file
    /// (sibling distinctness not expressible over the exposed slots).
    pub needs_validation: bool,
    /// Order enforcers the planner proved unnecessary: steps where the
    /// root-slot preference picked a driving predicate (or stream)
    /// already in posting order while the first-come rule would have
    /// inserted a `SortExchange`. Seeds
    /// [`crate::eval::EvalStats::sort_exchanges_avoided`].
    pub sorts_avoided: usize,
}

/// Default [`crate::exec::ExecContext::root_pref_factor`]: a stream
/// drivable sort-free on its scan's root slot is preferred over a
/// cheaper stream needing an order enforcer as long as its estimated
/// cardinality is within this factor of the cheapest.
pub const DEFAULT_ROOT_PREF_FACTOR: f64 = 4.0;

/// Selects how [`plan_structural`] orders joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Estimated-cardinality ordering plus tid-range pruning and
    /// leapfrog seeding (the module-doc cost model). The default.
    #[default]
    CostBased,
    /// PR 1's heuristic: order by encoded posting-list byte length, no
    /// statistics beyond [`KeyStats::bytes`]. Retained for A/B
    /// comparison (`experiments planner`, `si query --planner bytes`).
    ByteLen,
}

impl PlannerMode {
    /// Name for CLI/bench output.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerMode::CostBased => "cost-based",
            PlannerMode::ByteLen => "byte-ordered",
        }
    }
}

/// The sort key the cost-based planner orders streams by: estimated
/// cardinality, then encoded bytes, then cover index (deterministic
/// ties). Build one with [`cost_rank`]; the `Ord` impl is total
/// (`f64::total_cmp`). The service's base-scan prediction uses the
/// same ranks, so it can never drift from the planner's ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRank {
    /// Estimated stream cardinality ([`estimated_cardinality`]).
    pub est: f64,
    /// Encoded posting-list bytes (first tie-breaker).
    pub bytes: u64,
    /// Cover index (final tie-breaker).
    pub idx: usize,
}

impl Eq for CostRank {}

impl Ord for CostRank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.est
            .total_cmp(&other.est)
            .then(self.bytes.cmp(&other.bytes))
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for CostRank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The cost-based rank of cover `idx` (see [`CostRank`]).
pub fn cost_rank(
    stats: &KeyStats,
    key: &[u8],
    coding: Coding,
    common: (si_parsetree::TreeId, si_parsetree::TreeId),
    idx: usize,
) -> CostRank {
    CostRank {
        est: estimated_cardinality(stats, key, coding, common),
        bytes: stats.bytes,
        idx,
    }
}

/// The cost model's cardinality estimate for one cover stream (see the
/// module docs): postings × automorphism expansion × the fraction of
/// the key's tid range overlapping `common`.
pub fn estimated_cardinality(
    stats: &KeyStats,
    key: &[u8],
    coding: Coding,
    common: (si_parsetree::TreeId, si_parsetree::TreeId),
) -> f64 {
    let autos = match coding {
        Coding::SubtreeInterval => decode_key(key)
            .map(|shape| automorphisms(&shape, 720).len().max(1))
            .unwrap_or(1),
        _ => 1,
    };
    let span = stats.tid_span() as f64;
    let overlap_lo = common.0.max(stats.first_tid);
    let overlap_hi = common.1.min(stats.last_tid);
    let surviving = if overlap_lo > overlap_hi {
        0.0
    } else if stats.has_hist() {
        hist_overlap_fraction(stats, overlap_lo, overlap_hi)
    } else {
        let overlap = (u64::from(overlap_hi) - u64::from(overlap_lo) + 1) as f64;
        (overlap / span).min(1.0)
    };
    stats.postings as f64 * autos as f64 * surviving
}

/// Fraction of a key's postings falling inside `[lo, hi]`, refined by
/// the persisted tid histogram: each of the 8 buckets covers an equal
/// slice of the key's tid span, so the estimate sums fully-covered
/// buckets plus pro-rated boundary buckets instead of assuming uniform
/// density over the whole span. This is what makes block-granular
/// skipping costable: a list whose mass sits outside the common range
/// ranks as nearly free even when its span overlaps it.
fn hist_overlap_fraction(
    stats: &KeyStats,
    lo: si_parsetree::TreeId,
    hi: si_parsetree::TreeId,
) -> f64 {
    let total: u64 = stats.tid_hist.iter().map(|&c| u64::from(c)).sum();
    if total == 0 {
        return 0.0;
    }
    let span = stats.tid_span() as f64;
    let n = stats.tid_hist.len() as f64;
    let first = f64::from(stats.first_tid);
    let mut surviving = 0.0;
    for (b, &count) in stats.tid_hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let b_lo = first + (b as f64) * span / n;
        let b_hi = first + (b as f64 + 1.0) * span / n;
        let o_lo = b_lo.max(f64::from(lo));
        let o_hi = b_hi.min(f64::from(hi) + 1.0);
        if o_hi > o_lo {
            surviving += f64::from(count) * (o_hi - o_lo) / (b_hi - b_lo);
        }
    }
    (surviving / total as f64).min(1.0)
}

/// Resolves a predicate between stream `s` and the placed prefix into
/// `(left combined slot, right stream-local slot, forward)`; `None`
/// when the predicate does not touch `s` or a slot is unexposed.
fn step_endpoints(
    p: &StreamPred,
    placed: &[usize],
    joined_qnodes: &[QNodeId],
    qnodes: &[QNodeId],
    s: usize,
) -> Option<(usize, usize, bool)> {
    let (placed_q, new_q, forward) = if p.b == s && placed.contains(&p.a) {
        (p.aq, p.bq, true)
    } else if p.a == s && placed.contains(&p.b) {
        (p.bq, p.aq, false)
    } else {
        return None;
    };
    let l = joined_qnodes.iter().position(|&x| x == placed_q)?;
    let rs = qnodes.iter().position(|&x| x == new_q)?;
    Some((l, rs, forward))
}

/// Picks the driving condition for joining stream `s` to the placed
/// prefix — no residuals are built, so this doubles as the planner's
/// cheap "would this step need a sort?" probe. Returns the chosen
/// candidate `(kind, l, rs, pred_idx)` plus how many order enforcers
/// the sort-free preference saved relative to the legacy first-come
/// choice.
///
/// The preference: a driving predicate whose right slot is the scan's
/// root slot (slot 0 — posting order) needs no `sort_right`, and one
/// whose left slot matches the established order needs no `sort_left`.
/// Fewest enforcers win; predicate order breaks ties, reproducing the
/// legacy rule when it was already sort-free. Parent/Ancestor
/// predicates whose child end is already placed cannot drive the merge
/// forms and are never candidates.
fn choose_driving(
    preds: &[StreamPred],
    placed: &[usize],
    joined_qnodes: &[QNodeId],
    qnodes: &[QNodeId],
    s: usize,
    left_sorted: Option<usize>,
) -> (Option<(JoinKind, usize, usize, usize)>, usize) {
    let sorts_needed = |l: usize, rs: usize| -> usize {
        usize::from(left_sorted != Some(l)) + usize::from(rs != 0)
    };
    let mut first: Option<(usize, usize)> = None;
    let mut chosen: Option<(JoinKind, usize, usize, usize)> = None;
    for (pi, p) in preds.iter().enumerate() {
        let Some((l, rs, forward)) = step_endpoints(p, placed, joined_qnodes, qnodes, s) else {
            continue;
        };
        let kind = match (p.kind, forward) {
            (PredKind::Eq, _) => JoinKind::Eq,
            (PredKind::Parent, true) => JoinKind::Parent,
            (PredKind::Ancestor, true) => JoinKind::Ancestor,
            _ => continue,
        };
        if first.is_none() {
            first = Some((l, rs));
        }
        let better = match chosen {
            None => true,
            // Candidates arrive in predicate order, so a strict
            // improvement is required to displace the incumbent.
            Some((_, cl, crs, _)) => sorts_needed(l, rs) < sorts_needed(cl, crs),
        };
        if better {
            chosen = Some((kind, l, rs, pi));
        }
    }
    let saved = match (first, chosen) {
        (Some((fl, frs)), Some((_, cl, crs, _))) => {
            sorts_needed(fl, frs).saturating_sub(sorts_needed(cl, crs))
        }
        _ => 0,
    };
    (chosen, saved)
}

/// One step's predicate split: the chosen driving condition (stream-
/// local right slot), the residual filters (combined slot indexing),
/// and how many order enforcers the sort-free preference saved relative
/// to the legacy first-come driving choice (see [`choose_driving`]).
fn split_step_preds(
    preds: &[StreamPred],
    placed: &[usize],
    joined_qnodes: &[QNodeId],
    qnodes: &[QNodeId],
    s: usize,
    left_sorted: Option<usize>,
) -> (Option<(JoinKind, usize, usize)>, Vec<Pred>, usize) {
    let offset = joined_qnodes.len();
    let (chosen, saved) = choose_driving(preds, placed, joined_qnodes, qnodes, s, left_sorted);
    let chosen_pi = chosen.map(|(_, _, _, pi)| pi);
    let mut residuals: Vec<Pred> = Vec::new();
    for (pi, p) in preds.iter().enumerate() {
        if Some(pi) == chosen_pi {
            continue;
        }
        let Some((l, rs, forward)) = step_endpoints(p, placed, joined_qnodes, qnodes, s) else {
            continue;
        };
        let r_combined = offset + rs;
        match (p.kind, forward) {
            (PredKind::Eq, _) => residuals.push(Pred::Eq(l, r_combined)),
            (PredKind::Parent, true) => residuals.push(Pred::Parent(l, r_combined)),
            (PredKind::Parent, false) => residuals.push(Pred::Parent(r_combined, l)),
            (PredKind::Ancestor, true) => residuals.push(Pred::Ancestor(l, r_combined)),
            (PredKind::Ancestor, false) => residuals.push(Pred::Ancestor(r_combined, l)),
            (PredKind::Neq, _) => residuals.push(Pred::Neq(l, r_combined)),
        }
    }
    (chosen.map(|(k, l, rs, _)| (k, l, rs)), residuals, saved)
}

/// Plans the streaming pipeline for `query` under a structural coding.
/// `stats[i]` holds cover `i`'s per-key statistics (exact from the
/// stats segment, or byte-length estimates for pre-stats files) — the
/// plan's only input; nothing is decoded at planning time. `mode`
/// selects the ordering heuristic; the root-slot preference runs at
/// [`DEFAULT_ROOT_PREF_FACTOR`].
pub fn plan_structural(
    query: &Query,
    cover: &Cover,
    coding: Coding,
    stats: &[KeyStats],
    mode: PlannerMode,
) -> Plan {
    plan_structural_with(query, cover, coding, stats, mode, DEFAULT_ROOT_PREF_FACTOR)
}

/// [`plan_structural`] with an explicit root-slot preference factor
/// (see [`crate::exec::ExecContext::root_pref_factor`]).
pub fn plan_structural_with(
    query: &Query,
    cover: &Cover,
    coding: Coding,
    stats: &[KeyStats],
    mode: PlannerMode,
    root_pref_factor: f64,
) -> Plan {
    debug_assert_eq!(stats.len(), cover.subtrees.len());
    let exposed = exposed_qnodes(cover, coding);
    let (preds, needs_validation) = cross_stream_predicates(query, cover, &exposed);

    // Per-stream cost ranks, computed once (the estimate enumerates key
    // automorphisms, too costly for a sort comparator). Ties (and the
    // ByteLen mode entirely) fall back to encoded bytes, then the cover
    // index, so ordering is deterministic.
    let common = intersect_tid_ranges(stats).unwrap_or((0, 0));
    let ranks: Vec<CostRank> = (0..cover.subtrees.len())
        .map(|i| match mode {
            PlannerMode::CostBased => {
                cost_rank(&stats[i], &cover.subtrees[i].key, coding, common, i)
            }
            PlannerMode::ByteLen => CostRank {
                est: 0.0,
                bytes: stats[i].bytes,
                idx: i,
            },
        })
        .collect();

    // Left-deep order: cheapest stream first, then cheapest connected.
    let mut remaining: Vec<usize> = (0..cover.subtrees.len()).collect();
    remaining.sort_by_key(|&i| ranks[i]);
    let base = remaining.remove(0);
    let mut placed = vec![base];
    let mut joined_qnodes: Vec<QNodeId> = exposed[base].clone();
    // Combined slot the left input is currently sorted by; scans arrive
    // sorted by their root slot (slot 0).
    let mut left_sorted: Option<usize> = Some(0);

    let mut steps = Vec::new();
    let mut sorts_avoided = 0usize;
    while !remaining.is_empty() {
        // Positions (into `remaining`) of streams connected to the
        // placed prefix, cheapest first (`remaining` is rank-sorted).
        let connected: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &s)| {
                preds.iter().any(|p| {
                    (p.a == s && placed.contains(&p.b)) || (p.b == s && placed.contains(&p.a))
                })
            })
            .map(|(pos, _)| pos)
            .collect();
        let next_pos = match connected.first() {
            None => 0,
            Some(&first_pos) => {
                let mut pick = first_pos;
                // Root-slot preference (cost-based mode): when the
                // cheapest connected stream cannot be joined sort-free,
                // a slightly costlier stream that can is the better
                // step — its scan feeds the join in posting order and
                // no tuple is ever buffered for re-ordering.
                if mode == PlannerMode::CostBased && root_pref_factor > 1.0 {
                    let driving_of = |pos: usize| {
                        let s = remaining[pos];
                        choose_driving(&preds, &placed, &joined_qnodes, &exposed[s], s, left_sorted)
                            .0
                    };
                    // Only a stream with a *driving* predicate that still
                    // needs an enforcer is worth trading away; and only a
                    // stream joinable by a sort-free **merge** join may
                    // replace it — a driving-less stream would degrade the
                    // step to a per-tid cross join, which is no win.
                    let first_needs_sort = matches!(
                        driving_of(first_pos),
                        Some((_, l, rs, _)) if rs != 0 || left_sorted != Some(l)
                    );
                    if first_needs_sort {
                        let budget = ranks[remaining[first_pos]].est * root_pref_factor;
                        for &c in &connected[1..] {
                            let sort_free_merge = matches!(
                                driving_of(c),
                                Some((_, l, rs, _)) if rs == 0 && left_sorted == Some(l)
                            );
                            if ranks[remaining[c]].est <= budget && sort_free_merge {
                                pick = c;
                                sorts_avoided += 1;
                                break;
                            }
                        }
                    }
                }
                pick
            }
        };
        let s = remaining.remove(next_pos);
        let qnodes = &exposed[s];
        let offset = joined_qnodes.len();

        let (driving, residuals, saved) =
            split_step_preds(&preds, &placed, &joined_qnodes, qnodes, s, left_sorted);
        sorts_avoided += saved;

        let (sort_left, sort_right) = match driving {
            Some((_, l, rs)) => (
                (left_sorted != Some(l)).then_some(l),
                (rs != 0).then_some(rs),
            ),
            // Per-tid cross join only needs tid-major order, which every
            // stream already has.
            None => (None, None),
        };
        // Merge joins emit in right-input order: sorted by the newly
        // joined stream's driving slot. A cross join interleaves
        // per-tid groups without a slot order.
        left_sorted = driving.map(|(_, _, rs)| offset + rs);

        steps.push(PlanStep {
            cover: s,
            driving,
            residuals,
            sort_left,
            sort_right,
        });
        joined_qnodes.extend(qnodes.iter().copied());
        placed.push(s);
    }

    let root_slot = joined_qnodes.iter().position(|&q| q == query.root());
    debug_assert!(
        needs_validation || root_slot.is_some(),
        "query root exposed by its component's covers"
    );
    Plan {
        base,
        steps,
        root_slot,
        needs_validation,
        sorts_avoided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::decompose;
    use si_parsetree::LabelInterner;
    use si_query::parse_query;

    /// Uniform-density stats over the full tid range: the cost model's
    /// estimate collapses to the posting count, which here equals the
    /// byte length — so both planner modes order identically.
    fn stats_of(lens: &[u64]) -> Vec<KeyStats> {
        lens.iter()
            .map(|&l| KeyStats {
                postings: l,
                distinct_tids: l.max(1),
                first_tid: 0,
                last_tid: si_parsetree::TreeId::MAX,
                bytes: l,
                exact: true,
                ..KeyStats::default()
            })
            .collect()
    }

    fn plan_for(src: &str, mss: usize, coding: Coding, lens: &[u64]) -> (Plan, Cover) {
        let mut li = LabelInterner::new();
        let q = parse_query(src, &mut li).unwrap();
        let cover = decompose(&q, mss, coding);
        let lens: Vec<u64> = (0..cover.subtrees.len())
            .map(|i| lens.get(i).copied().unwrap_or(10 * (i as u64 + 1)))
            .collect();
        let plan = plan_structural(&q, &cover, coding, &stats_of(&lens), PlannerMode::CostBased);
        (plan, cover)
    }

    #[test]
    fn single_cover_has_no_steps() {
        let (plan, cover) = plan_for("NP(DT)(NN)", 3, Coding::RootSplit, &[]);
        assert_eq!(cover.subtrees.len(), 1);
        assert!(plan.steps.is_empty());
        assert_eq!(plan.root_slot, Some(0));
        assert!(!plan.needs_validation);
    }

    #[test]
    fn base_is_shortest_list() {
        let mut li = LabelInterner::new();
        let q = parse_query("S(NP(DT)(NN))(VP(VBZ)(NP))", &mut li).unwrap();
        let cover = decompose(&q, 2, Coding::RootSplit);
        assert!(cover.subtrees.len() >= 2);
        // Under uniform stats the base must be the cover with the
        // smallest list, in both planner modes.
        let lens: Vec<u64> = (0..cover.subtrees.len())
            .map(|i| [500u64, 40, 900, 7, 333, 61][i])
            .collect();
        let min = (0..cover.subtrees.len()).min_by_key(|&i| lens[i]).unwrap();
        for mode in [PlannerMode::CostBased, PlannerMode::ByteLen] {
            let plan = plan_structural(&q, &cover, Coding::RootSplit, &stats_of(&lens), mode);
            assert_eq!(plan.base, min, "{mode:?}");
            assert_eq!(plan.steps.len(), cover.subtrees.len() - 1);
        }
    }

    #[test]
    fn tid_range_overlap_outranks_raw_length() {
        // One cover is long but concentrated outside the common tid
        // range; the cost model discounts it below the short list,
        // while byte ordering keeps it last. Both must produce valid
        // (and, in the executor's differential suite, equivalent)
        // plans.
        let mut li = LabelInterner::new();
        let q = parse_query("S(NP)(VP)", &mut li).unwrap();
        let cover = decompose(&q, 1, Coding::RootSplit);
        assert_eq!(cover.subtrees.len(), 3);
        let stats = vec![
            // Huge list, but only ~1% of its range survives the
            // intersection: est ≈ 100.
            KeyStats {
                postings: 10_000,
                distinct_tids: 10_000,
                first_tid: 0,
                last_tid: 99_999,
                bytes: 70_000,
                exact: true,
                ..KeyStats::default()
            },
            // Short list spanning exactly the common range: est = 500.
            KeyStats {
                postings: 500,
                distinct_tids: 500,
                first_tid: 0,
                last_tid: 999,
                bytes: 3_500,
                exact: true,
                ..KeyStats::default()
            },
            // Medium list on the common range: est = 800.
            KeyStats {
                postings: 800,
                distinct_tids: 800,
                first_tid: 0,
                last_tid: 999,
                bytes: 5_600,
                exact: true,
                ..KeyStats::default()
            },
        ];
        let cost = plan_structural(
            &q,
            &cover,
            Coding::RootSplit,
            &stats,
            PlannerMode::CostBased,
        );
        assert_eq!(cost.base, 0, "discounted long list becomes the base");
        let bytes = plan_structural(&q, &cover, Coding::RootSplit, &stats, PlannerMode::ByteLen);
        assert_eq!(bytes.base, 1, "byte ordering picks the short list");
    }

    #[test]
    fn automorphic_interval_keys_cost_their_expansion() {
        // A symmetric interval key (two same-label children) expands
        // every posting by its automorphism count; the cost model
        // charges for that, byte ordering cannot see it.
        let mut li = LabelInterner::new();
        let q = parse_query("S(NP(NN)(NN))(VP)", &mut li).unwrap();
        let cover = decompose(&q, 3, Coding::SubtreeInterval);
        assert_eq!(cover.subtrees.len(), 2);
        // Find the symmetric NP(NN)(NN) cover.
        let sym = (0..cover.subtrees.len())
            .find(|&i| cover.subtrees[i].size() == 3)
            .unwrap();
        let other = 1 - sym;
        // Equal posting counts and bytes: only the automorphism factor
        // separates the two streams.
        let stats = vec![
            KeyStats {
                postings: 100,
                distinct_tids: 100,
                first_tid: 0,
                last_tid: 9_999,
                bytes: 700,
                exact: true,
                ..KeyStats::default()
            };
            2
        ];
        let plan = plan_structural(
            &q,
            &cover,
            Coding::SubtreeInterval,
            &stats,
            PlannerMode::CostBased,
        );
        assert_eq!(plan.base, other, "symmetric key ranks as 2x its postings");
    }

    #[test]
    fn interval_coding_steps_are_fully_connected() {
        // The interval coding exposes every query node, so a connected
        // query always yields driving predicates (root-split covers may
        // leave interior nodes unexposed and fall back to per-tid cross
        // joins — the same fallback the legacy evaluator takes).
        let (plan, _) = plan_for("S(NP(DT)(NN))(VP(VBZ))", 2, Coding::SubtreeInterval, &[]);
        for step in &plan.steps {
            assert!(
                step.driving.is_some(),
                "interval streams expose all nodes; joins must connect"
            );
        }
    }

    #[test]
    fn descendant_edges_plan_structural_joins() {
        let (plan, _) = plan_for("S(//NN)", 3, Coding::RootSplit, &[]);
        assert_eq!(plan.steps.len(), 1);
        let (kind, _, _) = plan.steps[0].driving.unwrap();
        assert!(matches!(kind, JoinKind::Ancestor | JoinKind::Parent));
    }

    #[test]
    fn root_slot_preference_trades_a_sort_for_a_close_stream() {
        // With cover 2 cheapest (base) and cover 1 the cheapest
        // connected stream, joining 1 first needs an order enforcer;
        // cover 3 is within the preference factor and joins sort-free
        // on its root slot. Factor 1.0 reproduces the legacy greedy
        // order; the default factor swaps the step and reports it.
        let mut li = LabelInterner::new();
        let q = parse_query("NP(NP(NN))(PP(IN)(NP))", &mut li).unwrap();
        let cover = decompose(&q, 2, Coding::SubtreeInterval);
        assert_eq!(cover.subtrees.len(), 4);
        let stats: Vec<KeyStats> = (0..4)
            .map(|i| {
                let l = [33u64, 20, 10, 35][i];
                KeyStats {
                    postings: l,
                    distinct_tids: 10,
                    first_tid: 0,
                    last_tid: 1000,
                    bytes: l,
                    exact: true,
                    ..KeyStats::default()
                }
            })
            .collect();
        let legacy = plan_structural_with(
            &q,
            &cover,
            Coding::SubtreeInterval,
            &stats,
            PlannerMode::CostBased,
            1.0,
        );
        let pref = plan_structural_with(
            &q,
            &cover,
            Coding::SubtreeInterval,
            &stats,
            PlannerMode::CostBased,
            DEFAULT_ROOT_PREF_FACTOR,
        );
        assert_eq!(legacy.sorts_avoided, 0);
        assert!(pref.sorts_avoided >= 1, "preference must report its win");
        let legacy_order: Vec<usize> = legacy.steps.iter().map(|s| s.cover).collect();
        let pref_order: Vec<usize> = pref.steps.iter().map(|s| s.cover).collect();
        assert_ne!(legacy_order, pref_order, "preference must reorder steps");
        // Both plans still place every stream exactly once.
        for plan in [&legacy, &pref] {
            let mut seen: Vec<usize> = plan.steps.iter().map(|s| s.cover).collect();
            seen.push(plan.base);
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn root_split_scans_never_need_right_sorts() {
        // Root-split streams expose exactly one slot (the root), which
        // is the order postings arrive in.
        let (plan, _) = plan_for(
            "S(NP(DT)(NN))(VP(VBZ)(NP(//JJ)))",
            2,
            Coding::RootSplit,
            &[9, 200, 13, 700, 44],
        );
        for step in &plan.steps {
            assert_eq!(step.sort_right, None);
        }
    }
}
