//! Holistic twig evaluation — the paper's §7 future-work item
//! ("adapting more efficient structural join approaches such as
//! TwigStack \[5\] over our subtree index").
//!
//! A cascade of binary structural joins can build intermediate results
//! much larger than the final answer (the problem TwigStack was designed
//! to avoid). This module evaluates a whole *twig* of root-split streams
//! **bottom-up with intermediate state linear in the input size**: for
//! every twig node it computes the set of stream entries that satisfy
//! the entire twig below them, using one sorted sweep per edge.
//!
//! For the Subtree Index's result semantics (distinct bindings of the
//! twig root) this produces exactly the binary-join cascade's answer:
//! a stream entry `v` satisfies an `Ancestor`/`Parent` edge iff some
//! *satisfied* child entry lies inside `v`'s interval, which the
//! properly-nested interval structure lets us decide with a suffix
//! minimum over `post` values — no per-pair work at all.
//!
//! The cascade remains the engine default (it also handles equality
//! joins and residual predicates); this evaluator is exercised by the
//! tests below and usable wherever a pure structural twig arises.

use si_parsetree::TreeId;

use crate::coding::NodeVal;

/// Edge type above a twig node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwigAxis {
    /// Parent-child: the parent binding must be the node's parent.
    Child,
    /// Ancestor-descendant (proper).
    Descendant,
}

/// One twig node; node 0 is the root and parents precede children.
#[derive(Debug, Clone)]
pub struct TwigNode {
    /// Parent twig node (`None` for the root).
    pub parent: Option<usize>,
    /// Axis of the edge from the parent (ignored for the root).
    pub axis: TwigAxis,
}

/// A twig pattern over positional streams.
#[derive(Debug, Clone)]
pub struct Twig {
    nodes: Vec<TwigNode>,
}

impl Twig {
    /// Builds a twig; validates that node 0 is the root and every
    /// parent index precedes its child.
    ///
    /// # Panics
    /// Panics on malformed structure (programming error).
    pub fn new(nodes: Vec<TwigNode>) -> Self {
        assert!(!nodes.is_empty(), "twig needs at least a root");
        assert!(nodes[0].parent.is_none(), "node 0 must be the root");
        for (i, n) in nodes.iter().enumerate().skip(1) {
            let p = n.parent.expect("non-root twig node needs a parent");
            assert!(p < i, "parents must precede children");
        }
        Self { nodes }
    }

    /// Number of twig nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the twig is empty (never: construction requires a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn children(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.parent == Some(q))
            .map(|(i, _)| i)
    }
}

/// Evaluates `twig` over one stream per twig node (entries sorted by
/// `(tid, pre)`, as posting lists are stored). Returns the distinct
/// `(tid, root binding)` pairs, sorted.
pub fn eval_twig(twig: &Twig, streams: &[Vec<(TreeId, NodeVal)>]) -> Vec<(TreeId, NodeVal)> {
    assert_eq!(streams.len(), twig.len(), "one stream per twig node");
    // sat[q] = entries of stream q satisfying the whole twig below q,
    // computed bottom-up (children have larger indices).
    let mut sat: Vec<Vec<(TreeId, NodeVal)>> = streams.to_vec();
    for q in (0..twig.len()).rev() {
        for c in twig.children(q).collect::<Vec<_>>() {
            let axis = twig.nodes[c].axis;
            let child_sat = std::mem::take(&mut sat[c]);
            let parents = std::mem::take(&mut sat[q]);
            sat[q] = filter_by_child(&parents, &child_sat, axis);
            sat[c] = child_sat;
            if sat[q].is_empty() {
                break;
            }
        }
    }
    let mut out = std::mem::take(&mut sat[0]);
    out.sort_by_key(|(tid, v)| (*tid, v.pre));
    out.dedup_by_key(|(tid, v)| (*tid, v.pre));
    out
}

/// Keeps the parent entries that contain at least one satisfied child
/// entry under `axis`. One merge sweep per tid group plus a suffix
/// minimum over child `post` values: `p` has a descendant in `c[]` iff
/// some child entry with `pre > p.pre` has `post < p.post` — nested
/// intervals guarantee such an entry lies inside `p`.
fn filter_by_child(
    parents: &[(TreeId, NodeVal)],
    children: &[(TreeId, NodeVal)],
    axis: TwigAxis,
) -> Vec<(TreeId, NodeVal)> {
    let mut out = Vec::new();
    let mut ci = 0usize; // start of the current tid group in children
    for pgroup in group_by_tid(parents) {
        let tid = pgroup[0].0;
        // Advance to the child group of this tid.
        while ci < children.len() && children[ci].0 < tid {
            ci += 1;
        }
        let cstart = ci;
        let mut cend = ci;
        while cend < children.len() && children[cend].0 == tid {
            cend += 1;
        }
        let cgroup = &children[cstart..cend];
        if cgroup.is_empty() {
            continue;
        }
        match axis {
            TwigAxis::Descendant => {
                // suffix_min_post[i] = min post over cgroup[i..].
                let mut suffix_min = vec![u32::MAX; cgroup.len() + 1];
                for i in (0..cgroup.len()).rev() {
                    suffix_min[i] = suffix_min[i + 1].min(cgroup[i].1.post);
                }
                for &(ptid, pv) in pgroup {
                    // First child with pre > p.pre (cgroup sorted by pre).
                    let idx = cgroup.partition_point(|(_, cv)| cv.pre <= pv.pre);
                    if suffix_min[idx] < pv.post {
                        out.push((ptid, pv));
                    }
                }
            }
            TwigAxis::Child => {
                // Same sweep, but restricted to entries one level below;
                // group child entries by level first.
                let mut by_level: std::collections::HashMap<u16, Vec<NodeVal>> =
                    std::collections::HashMap::new();
                for &(_, cv) in cgroup {
                    by_level.entry(cv.level).or_default().push(cv);
                }
                let mut suffix: std::collections::HashMap<u16, (Vec<NodeVal>, Vec<u32>)> =
                    std::collections::HashMap::new();
                for (level, vals) in by_level {
                    let mut mins = vec![u32::MAX; vals.len() + 1];
                    for i in (0..vals.len()).rev() {
                        mins[i] = mins[i + 1].min(vals[i].post);
                    }
                    suffix.insert(level, (vals, mins));
                }
                for &(ptid, pv) in pgroup {
                    if let Some((vals, mins)) = suffix.get(&(pv.level + 1)) {
                        let idx = vals.partition_point(|cv| cv.pre <= pv.pre);
                        if mins[idx] < pv.post {
                            out.push((ptid, pv));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Splits a `(tid, pre)`-sorted slice into per-tid groups.
fn group_by_tid(entries: &[(TreeId, NodeVal)]) -> impl Iterator<Item = &[(TreeId, NodeVal)]> {
    let mut rest = entries;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let tid = rest[0].0;
        let split = rest.partition_point(|(t, _)| *t == tid);
        let (group, tail) = rest.split_at(split);
        rest = tail;
        Some(group)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::{ptb, LabelInterner, ParseTree};

    fn stream_for(trees: &[ParseTree], li: &LabelInterner, label: &str) -> Vec<(TreeId, NodeVal)> {
        let l = li.get(label).expect("label exists");
        let mut out = Vec::new();
        for (tid, t) in trees.iter().enumerate() {
            for n in t.nodes() {
                if t.label(n) == l {
                    out.push((
                        tid as TreeId,
                        NodeVal {
                            pre: t.pre(n),
                            post: t.post(n),
                            level: t.level(n),
                        },
                    ));
                }
            }
        }
        out
    }

    /// Naive twig evaluation for cross-checking.
    fn naive(twig: &Twig, streams: &[Vec<(TreeId, NodeVal)>]) -> Vec<(TreeId, NodeVal)> {
        fn satisfies(
            twig: &Twig,
            streams: &[Vec<(TreeId, NodeVal)>],
            q: usize,
            tid: TreeId,
            v: NodeVal,
        ) -> bool {
            twig.children(q).all(|c| {
                streams[c].iter().any(|&(ctid, cv)| {
                    ctid == tid
                        && match twig.nodes[c].axis {
                            TwigAxis::Descendant => v.is_ancestor_of(&cv),
                            TwigAxis::Child => v.is_parent_of(&cv),
                        }
                        && satisfies(twig, streams, c, tid, cv)
                })
            })
        }
        let mut out: Vec<(TreeId, NodeVal)> = streams[0]
            .iter()
            .copied()
            .filter(|&(tid, v)| satisfies(twig, streams, 0, tid, v))
            .collect();
        out.sort_by_key(|(tid, v)| (*tid, v.pre));
        out.dedup_by_key(|(tid, v)| (*tid, v.pre));
        out
    }

    fn corpus() -> (Vec<ParseTree>, LabelInterner) {
        let mut li = LabelInterner::new();
        let trees = vec![
            ptb::parse("(S (NP (DT a) (NN b)) (VP (VBZ c) (NP (NN d))))", &mut li).unwrap(),
            ptb::parse("(S (VP (NP (DT e))) (NP (JJ f)))", &mut li).unwrap(),
            ptb::parse("(NP (NP (NN g)))", &mut li).unwrap(),
        ];
        (trees, li)
    }

    #[test]
    fn single_edge_descendant() {
        let (trees, li) = corpus();
        let twig = Twig::new(vec![
            TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Descendant,
            },
        ]);
        let streams = vec![stream_for(&trees, &li, "S"), stream_for(&trees, &li, "NN")];
        let got = eval_twig(&twig, &streams);
        assert_eq!(got, naive(&twig, &streams));
        assert_eq!(got.len(), 1); // only tree 0's S dominates an NN
    }

    #[test]
    fn parent_axis_checks_levels() {
        let (trees, li) = corpus();
        let twig = Twig::new(vec![
            TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Child,
            },
        ]);
        // NP with a *direct* NN child: tree 0 (NP->NN twice? one NP), tree 2 inner NP.
        let streams = vec![stream_for(&trees, &li, "NP"), stream_for(&trees, &li, "NN")];
        let got = eval_twig(&twig, &streams);
        assert_eq!(got, naive(&twig, &streams));
        assert_eq!(got.len(), 3); // two NPs in tree 0, inner NP in tree 2
    }

    #[test]
    fn branching_twig() {
        let (trees, li) = corpus();
        // S(//NP)(//VP) — both branches must be satisfied.
        let twig = Twig::new(vec![
            TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Descendant,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Descendant,
            },
        ]);
        let streams = vec![
            stream_for(&trees, &li, "S"),
            stream_for(&trees, &li, "NP"),
            stream_for(&trees, &li, "VP"),
        ];
        let got = eval_twig(&twig, &streams);
        assert_eq!(got, naive(&twig, &streams));
        assert_eq!(got.len(), 2); // both S trees have NP and VP below
    }

    #[test]
    fn deep_twig_chain() {
        let (trees, li) = corpus();
        // S // VP / NP — chain mixing axes.
        let twig = Twig::new(vec![
            TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Descendant,
            },
            TwigNode {
                parent: Some(1),
                axis: TwigAxis::Child,
            },
        ]);
        let streams = vec![
            stream_for(&trees, &li, "S"),
            stream_for(&trees, &li, "VP"),
            stream_for(&trees, &li, "NP"),
        ];
        let got = eval_twig(&twig, &streams);
        assert_eq!(got, naive(&twig, &streams));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_stream_kills_everything() {
        let (trees, li) = corpus();
        let twig = Twig::new(vec![
            TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Descendant,
            },
        ]);
        let streams = vec![stream_for(&trees, &li, "S"), Vec::new()];
        assert!(eval_twig(&twig, &streams).is_empty());
    }

    #[test]
    fn agrees_with_naive_on_random_twigs() {
        // Pseudo-random twigs over the generated corpus labels.
        let corpus = si_corpus::GeneratorConfig::default()
            .with_seed(61)
            .generate(40);
        let li = corpus.interner().clone();
        let labels = ["S", "NP", "VP", "NN", "DT", "PP", "IN"];
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..40 {
            let n = 2 + (rnd() % 3) as usize;
            let mut nodes = vec![TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            }];
            for i in 1..n {
                nodes.push(TwigNode {
                    parent: Some((rnd() % i as u64) as usize),
                    axis: if rnd() % 2 == 0 {
                        TwigAxis::Child
                    } else {
                        TwigAxis::Descendant
                    },
                });
            }
            let twig = Twig::new(nodes);
            let streams: Vec<Vec<(TreeId, NodeVal)>> = (0..n)
                .map(|_| stream_for(corpus.trees(), &li, labels[(rnd() % 7) as usize]))
                .collect();
            assert_eq!(eval_twig(&twig, &streams), naive(&twig, &streams));
        }
    }

    #[test]
    #[should_panic(expected = "parents must precede children")]
    fn malformed_twig_rejected() {
        // Node 1 claims node 2 (a later node) as its parent.
        Twig::new(vec![
            TwigNode {
                parent: None,
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(2),
                axis: TwigAxis::Child,
            },
            TwigNode {
                parent: Some(0),
                axis: TwigAxis::Child,
            },
        ]);
    }
}
