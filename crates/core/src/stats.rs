//! Per-key statistics for cost-based planning (§7 of the paper).
//!
//! §7 anticipates "statistics about subtrees such as their
//! selectivities" as the natural next step beyond the paper's
//! implementation; disk-based keyword-search engines (EMBANKS-style)
//! lean on exactly such per-term statistics for join ordering. This
//! module is that subsystem's query-side surface:
//!
//! * [`KeyStats`] (re-exported from `si_storage`) — one canonical key's
//!   posting count, distinct tid count, `[first_tid, last_tid]` range,
//!   and encoded byte length. Computed at index-build time by
//!   [`PostingBuilder`](crate::coding::PostingBuilder) and persisted in
//!   the B+Tree file's **stats segment** (versioned header; see
//!   `si_storage::btree`).
//! * [`Stats`] — the provider trait the planner consumes. The index
//!   implements it: exact figures from the segment when present, and
//!   for index files built before the segment existed a conservative
//!   [estimate](estimate_from_len) from the encoded list length
//!   (`exact == false`, full tid range — safe: it orders like the old
//!   byte heuristic and never prunes).
//! * [`StatsCache`] — a concurrent memo of `key_stats` lookups. Each
//!   lookup is a B+Tree descent (or a segment-table probe); a read-only
//!   index never changes its answers, so the query service shares one
//!   cache across queries, threads and batches. This subsumes PR 2's
//!   `LenCache`: the cached [`KeyStats::bytes`] field carries what
//!   `posting_len` used to provide.
//!
//! # How the planner uses the figures
//!
//! [`plan_structural`](crate::plan::plan_structural) orders joins by
//! **estimated cardinality** instead of raw encoded bytes:
//!
//! ```text
//! est(i) = postings(i) × autos(i) × overlap(common, range(i)) / span(range(i))
//! ```
//!
//! where `common` is the intersection of every cover key's tid range
//! ([`intersect_tid_ranges`]) and `autos` is the automorphism expansion
//! factor of the key (interval coding only). When `common` is empty the
//! query provably has no matches — every match needs all cover keys in
//! the *same* tree — and the executor returns before opening a single
//! posting list. The same ranges seed the filter-coding leapfrog
//! intersection: its initial target starts at `max(first_tid)` and the
//! merge stops once the target passes `min(last_tid)`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use si_parsetree::TreeId;
use si_storage::Result;

pub use si_storage::KeyStats;

use crate::build::SubtreeIndex;
use crate::canonical::key_size;
use crate::coding::Coding;
use crate::exec::ExecContext;

/// A source of per-key planning statistics — the seam between the
/// planner and whatever holds the figures (the index's stats segment,
/// a service-level cache, or a test double).
pub trait Stats {
    /// Statistics for `key`; `None` when the key is not indexed (the
    /// containing query then has no matches).
    fn key_stats(&self, key: &[u8]) -> Result<Option<KeyStats>>;
}

impl Stats for SubtreeIndex {
    fn key_stats(&self, key: &[u8]) -> Result<Option<KeyStats>> {
        SubtreeIndex::key_stats(self, key)
    }
}

/// A concurrent memo of [`Stats::key_stats`] lookups, shared by the
/// query service across queries, threads and batches (the index is
/// read-only, so entries never go stale). Subsumes the former
/// `LenCache`: [`KeyStats::bytes`] carries the encoded length.
pub type StatsCache = Arc<Mutex<HashMap<Vec<u8>, Option<KeyStats>>>>;

/// `index.key_stats(key)` through the context's memo when present.
pub fn key_stats_cached(
    index: &SubtreeIndex,
    key: &[u8],
    ctx: &ExecContext<'_>,
) -> Result<Option<KeyStats>> {
    let Some(cache) = &ctx.stats else {
        return index.key_stats(key);
    };
    if let Some(stats) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(key) {
        return Ok(*stats);
    }
    let stats = index.key_stats(key)?;
    cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key.to_vec(), stats);
    Ok(stats)
}

/// Synthesizes [`KeyStats`] from an encoded list length — the fallback
/// for index files that predate the stats segment. The posting count is
/// the length divided by the coding's typical encoded posting size, so
/// relative ordering degrades gracefully to the old byte heuristic; the
/// tid range is the full id space (`exact == false`), which never
/// prunes and never seeds a seek past real postings.
pub fn estimate_from_len(bytes: u64, coding: Coding, key: &[u8]) -> KeyStats {
    // Typical encoded posting sizes: one tid-delta varint for
    // filter-based; delta + (pre, post, level) varints for root-split;
    // delta + m × (pre, post, level, order) varints for the interval
    // coding of an m-node key.
    let per_posting = match coding {
        Coding::FilterBased => 2,
        Coding::RootSplit => 7,
        Coding::SubtreeInterval => 1 + 5 * key_size(key).unwrap_or(1) as u64,
    };
    let postings = (bytes / per_posting).max(1);
    KeyStats {
        postings,
        distinct_tids: postings,
        first_tid: 0,
        last_tid: TreeId::MAX,
        bytes,
        exact: false,
        ..KeyStats::default()
    }
}

/// Intersects every cover key's `[first_tid, last_tid]` range. `None`
/// means some pair of ranges is disjoint: no tree can hold all cover
/// keys, so the query provably has no matches and the executor skips
/// the join phase entirely. Estimated stats carry the full range and
/// therefore never produce `None`.
pub fn intersect_tid_ranges<'a, I>(stats: I) -> Option<(TreeId, TreeId)>
where
    I: IntoIterator<Item = &'a KeyStats>,
{
    let mut iter = stats.into_iter();
    let first = iter.next()?;
    let mut lo = first.first_tid;
    let mut hi = first.last_tid;
    for s in iter {
        lo = lo.max(s.first_tid);
        hi = hi.min(s.last_tid);
        if lo > hi {
            return None;
        }
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(first: TreeId, last: TreeId) -> KeyStats {
        KeyStats {
            postings: 10,
            distinct_tids: 10,
            first_tid: first,
            last_tid: last,
            bytes: 70,
            exact: true,
            ..KeyStats::default()
        }
    }

    #[test]
    fn range_intersection_narrows_and_detects_disjoint() {
        let a = [ks(0, 100), ks(50, 200), ks(60, 80)];
        assert_eq!(intersect_tid_ranges(&a), Some((60, 80)));
        let b = [ks(0, 10), ks(11, 20)];
        assert_eq!(intersect_tid_ranges(&b), None);
        let single = [ks(5, 5)];
        assert_eq!(intersect_tid_ranges(&single), Some((5, 5)));
        assert_eq!(intersect_tid_ranges([].iter()), None);
    }

    #[test]
    fn estimates_are_conservative() {
        for coding in Coding::ALL {
            let s = estimate_from_len(700, coding, &[]);
            assert!(!s.exact);
            assert!(s.postings >= 1);
            assert_eq!((s.first_tid, s.last_tid), (0, TreeId::MAX));
            assert_eq!(s.bytes, 700);
        }
        // Larger interval keys decode fewer postings per byte.
        let small = estimate_from_len(1000, Coding::FilterBased, &[]);
        let big = estimate_from_len(1000, Coding::RootSplit, &[]);
        assert!(small.postings > big.postings);
    }

    #[test]
    fn estimated_ranges_never_prune() {
        let est = estimate_from_len(10, Coding::RootSplit, &[]);
        let tight = ks(1_000, 1_001);
        assert_eq!(
            intersect_tid_ranges([&est, &tight].into_iter()),
            Some((1_000, 1_001))
        );
    }
}
