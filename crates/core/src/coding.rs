//! The three posting-list coding schemes (§4.4).
//!
//! Every index key (a canonical subtree) owns one posting list; the
//! coding scheme decides what each posting records:
//!
//! | coding            | posting                                   | §     |
//! |-------------------|-------------------------------------------|-------|
//! | filter-based      | `tid`                                     | 4.4.1 |
//! | subtree interval  | `tid, m × (pre, post, level, order)`      | 4.4.2 |
//! | root-split        | `tid, (pre, post, level)` of the root     | 4.4.3 |
//!
//! Lists are sorted by `(tid, root.pre)` and delta-encoded on `tid`.
//! Filter-based postings deduplicate by `tid`; root-split postings by
//! `(tid, root.pre)` — the paper's second source of size reduction:
//! "multiple subtrees which have the same key and the same root ... will
//! be represented with only one posting".
//!
//! Interval postings store nodes in **canonical key order** (position 1
//! is the root); the `order` field is each node's pre-order rank within
//! the occurrence, the paper's disambiguator for symmetric instances.

use si_parsetree::{varint, TreeId};

/// Selects the posting-list format of a [`crate::SubtreeIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coding {
    /// Tree ids only; query evaluation post-validates candidates.
    FilterBased,
    /// Full structural info for every subtree node; exact matching.
    SubtreeInterval,
    /// Structural info of the subtree root only; exact matching with
    /// root-split covers. The paper's headline scheme.
    RootSplit,
}

impl Coding {
    /// All codings in the paper's reporting order.
    pub const ALL: [Coding; 3] = [
        Coding::FilterBased,
        Coding::RootSplit,
        Coding::SubtreeInterval,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Coding::FilterBased => "filter-based",
            Coding::SubtreeInterval => "subtree interval",
            Coding::RootSplit => "root-split",
        }
    }

    /// Stable on-disk id of the coding (`si.meta`, `MANIFEST.si`).
    pub fn id(self) -> u8 {
        match self {
            Coding::FilterBased => 0,
            Coding::SubtreeInterval => 1,
            Coding::RootSplit => 2,
        }
    }

    /// The coding a stable on-disk id denotes, if valid.
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(Coding::FilterBased),
            1 => Some(Coding::SubtreeInterval),
            2 => Some(Coding::RootSplit),
            _ => None,
        }
    }
}

impl std::fmt::Display for Coding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural information of one data node, as stored in postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeVal {
    /// Pre-order rank within the tree.
    pub pre: u32,
    /// Post-order rank within the tree.
    pub post: u32,
    /// Depth (root = 0).
    pub level: u16,
}

impl NodeVal {
    /// Interval containment: is `self` a proper ancestor of `other`
    /// (within the same tree)?
    #[inline]
    pub fn is_ancestor_of(&self, other: &NodeVal) -> bool {
        self.pre < other.pre && other.post < self.post
    }

    /// Containment plus a level check: is `self` the parent of `other`?
    #[inline]
    pub fn is_parent_of(&self, other: &NodeVal) -> bool {
        self.is_ancestor_of(other) && other.level == self.level + 1
    }
}

/// One decoded posting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Posting {
    /// Filter-based: candidate tree.
    Tid(TreeId),
    /// Root-split: root occurrence.
    Root {
        /// Containing tree.
        tid: TreeId,
        /// Structural info of the subtree root.
        root: NodeVal,
    },
    /// Subtree interval: full occurrence.
    Occurrence {
        /// Containing tree.
        tid: TreeId,
        /// `(values, order)` per node, in canonical key order;
        /// `order` is the node's pre-order rank within the occurrence
        /// (1-based).
        nodes: Vec<(NodeVal, u8)>,
    },
}

impl Posting {
    /// The containing tree, whichever coding the posting uses.
    #[inline]
    pub fn tid(&self) -> TreeId {
        match self {
            Posting::Tid(tid) => *tid,
            Posting::Root { tid, .. } => *tid,
            Posting::Occurrence { tid, .. } => *tid,
        }
    }
}

/// Builds one key's posting list during index construction. Occurrences
/// must be pushed in `(tid, root.pre)` order, which
/// [`crate::extract::for_each_subtree`] guarantees.
#[derive(Debug)]
pub struct PostingBuilder {
    coding: Coding,
    buf: Vec<u8>,
    count: u64,
    last_tid: Option<TreeId>,
    last_root_pre: u32,
    first_tid: Option<TreeId>,
    distinct_tids: u64,
}

impl PostingBuilder {
    /// Creates an empty builder for `coding`.
    pub fn new(coding: Coding) -> Self {
        Self {
            coding,
            buf: Vec::new(),
            count: 0,
            last_tid: None,
            last_root_pre: 0,
            first_tid: None,
            distinct_tids: 0,
        }
    }

    /// Appends one occurrence. `nodes` lists `(values, order)` in
    /// canonical key order; `nodes[0]` is the root.
    ///
    /// # Panics
    /// Panics (debug) if pushes violate `(tid, root.pre)` order or
    /// `nodes` is empty.
    pub fn push(&mut self, tid: TreeId, nodes: &[(NodeVal, u8)]) {
        debug_assert!(!nodes.is_empty());
        let root_pre = nodes[0].0.pre;
        if let Some(last) = self.last_tid {
            debug_assert!(
                tid > last || (tid == last && root_pre >= self.last_root_pre),
                "postings must arrive in (tid, root.pre) order"
            );
            // Deduplication.
            match self.coding {
                Coding::FilterBased => {
                    if tid == last {
                        return;
                    }
                }
                Coding::RootSplit => {
                    if tid == last && root_pre == self.last_root_pre {
                        return;
                    }
                }
                Coding::SubtreeInterval => {}
            }
        }
        if self.last_tid != Some(tid) {
            self.distinct_tids += 1;
        }
        if self.first_tid.is_none() {
            self.first_tid = Some(tid);
        }
        let delta = tid - self.last_tid.unwrap_or(0);
        varint::write_u32(&mut self.buf, delta);
        match self.coding {
            Coding::FilterBased => {}
            Coding::RootSplit => {
                let root = nodes[0].0;
                varint::write_u32(&mut self.buf, root.pre);
                varint::write_u32(&mut self.buf, root.post);
                varint::write_u32(&mut self.buf, u32::from(root.level));
            }
            Coding::SubtreeInterval => {
                for (val, order) in nodes {
                    varint::write_u32(&mut self.buf, val.pre);
                    varint::write_u32(&mut self.buf, val.post);
                    varint::write_u32(&mut self.buf, u32::from(val.level));
                    varint::write_u32(&mut self.buf, u32::from(*order));
                }
            }
        }
        self.count += 1;
        self.last_tid = Some(tid);
        self.last_root_pre = root_pre;
    }

    /// Number of postings kept (after deduplication).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of distinct tree ids the kept postings span.
    pub fn distinct_tids(&self) -> u64 {
        self.distinct_tids
    }

    /// Smallest tree id pushed so far (`None` while empty).
    pub fn first_tid(&self) -> Option<TreeId> {
        self.first_tid
    }

    /// Largest tree id pushed so far (`None` while empty).
    pub fn last_tid(&self) -> Option<TreeId> {
        self.last_tid
    }

    /// Snapshot of this list's statistics in the on-disk stats-segment
    /// form ([`si_storage::KeyStats`]); `bytes` is the encoded length so
    /// far, so take it after the final push.
    pub fn key_stats(&self) -> si_storage::KeyStats {
        si_storage::KeyStats {
            postings: self.count,
            distinct_tids: self.distinct_tids,
            first_tid: self.first_tid.unwrap_or(0),
            last_tid: self.last_tid.unwrap_or(0),
            bytes: self.buf.len() as u64,
            exact: true,
        }
    }

    /// Encoded size so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finalizes into list bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// An incremental source of decoded postings: a [`PostingCursor`]
/// decoding raw bytes off the pager, or a
/// [`crate::blockcache::CachedListReader`] serving pre-decoded blocks
/// from the shared block cache. The streaming executor's scans are
/// written against this trait so the cache slots in without touching
/// the operator tree.
///
/// # Borrowing contract (zero-copy)
///
/// `next_posting` yields a **borrow** of the feed's internal buffer —
/// the cursor's reusable decode slot, or a cached block the feed pins
/// alive via `Arc` for as long as it is the current block. The borrow
/// is valid until the next `next_posting` call (the lending-iterator
/// shape); consumers copy node values into owned tuples only at the
/// single point a tuple outlives its source posting. Interval-coded
/// postings therefore never re-allocate their `nodes` vector per
/// consumer: a cache hit is served straight out of the shared block.
pub trait PostingFeed {
    /// Produces the next posting as a borrow from the feed's internal
    /// buffer, or `None` at a clean end of list. The borrow is
    /// invalidated by the next call.
    fn next_posting(&mut self) -> si_storage::Result<Option<&Posting>>;

    /// High-water mark of resident bytes attributable to this feed (the
    /// executor's memory-meter contribution). Bytes owned by a shared
    /// cache (pinned blocks) are charged to the cache's budget, not to
    /// the feed.
    fn peak_buffer_bytes(&self) -> usize;
}

impl<S: ChunkSource> PostingFeed for PostingCursor<S> {
    fn next_posting(&mut self) -> si_storage::Result<Option<&Posting>> {
        PostingCursor::next_posting(self)
    }

    fn peak_buffer_bytes(&self) -> usize {
        PostingCursor::peak_buffer_bytes(self)
    }
}

/// An incremental source of posting-list bytes: an in-memory slice
/// ([`SliceSource`]) or a disk cursor walking B+Tree overflow chains
/// page-by-page (`ValueReader`, see `crate::build`). The streaming
/// executor never sees more than one chunk plus a partial posting in
/// memory at a time.
pub trait ChunkSource {
    /// Appends the next chunk of bytes to `out`, returning how many bytes
    /// were appended. `Ok(0)` signals exhaustion.
    fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize>;
}

/// A B+Tree value cursor is a chunk source: each chunk is one disk
/// page's payload, so a [`PostingCursor`] over it decodes straight off
/// the pager without ever materializing the list.
impl ChunkSource for si_storage::btree::ValueReader<'_> {
    fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize> {
        si_storage::btree::ValueReader::read_chunk(self, out)
    }
}

/// [`ChunkSource`] over an in-memory byte slice; delivers everything as
/// one chunk.
pub struct SliceSource<'a> {
    bytes: &'a [u8],
    done: bool,
}

impl<'a> SliceSource<'a> {
    /// Wraps `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, done: false }
    }
}

impl ChunkSource for SliceSource<'_> {
    fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize> {
        if self.done {
            return Ok(0);
        }
        self.done = true;
        out.extend_from_slice(self.bytes);
        Ok(self.bytes.len())
    }
}

/// Streaming decoder of a posting list produced by [`PostingBuilder`]:
/// pulls bytes from any [`ChunkSource`] and lends one [`Posting`] at a
/// time out of a reusable decode slot, carrying the `tid` delta-decode
/// state across chunk (and hence disk-page) boundaries. The resident
/// buffer holds at most one source chunk plus one partial posting, so
/// decoding a multi-page posting list costs O(chunk) memory instead of
/// O(list) — and because the slot (including an interval posting's
/// `nodes` vector) is reused across postings, steady-state decoding
/// performs **zero allocations per posting**.
pub struct PostingCursor<S> {
    coding: Coding,
    key_nodes: usize,
    src: S,
    /// Undecoded byte window; `pos..` is live.
    buf: Vec<u8>,
    pos: usize,
    tid: TreeId,
    first: bool,
    src_done: bool,
    decoded: usize,
    peak_buf: usize,
    /// Reusable decode slot the borrow returned by
    /// [`PostingCursor::next_posting`] points into.
    current: Posting,
}

impl<S: ChunkSource> PostingCursor<S> {
    /// Creates a cursor. `key_nodes` is the key's node count (needed by
    /// the interval coding; ignored otherwise).
    pub fn new(coding: Coding, key_nodes: usize, src: S) -> Self {
        Self {
            coding,
            key_nodes,
            src,
            buf: Vec::new(),
            pos: 0,
            tid: 0,
            first: true,
            src_done: false,
            decoded: 0,
            peak_buf: 0,
            current: Posting::Tid(0),
        }
    }

    /// Postings decoded so far.
    pub fn decoded(&self) -> usize {
        self.decoded
    }

    /// High-water mark of resident undecoded bytes — the streaming
    /// executor's "pages in flight" figure for this list.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buf
    }

    /// Pulls one more chunk from the source into the window, compacting
    /// the consumed prefix first. Returns whether new bytes arrived.
    fn refill(&mut self) -> si_storage::Result<bool> {
        if self.src_done {
            return Ok(false);
        }
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let n = self.src.read_chunk(&mut self.buf)?;
        if n == 0 {
            self.src_done = true;
        }
        self.peak_buf = self.peak_buf.max(self.buf.len());
        Ok(n > 0)
    }

    /// Advances the cursor by decoding one posting into the reusable
    /// slot, refilling from the source as needed. Returns whether a
    /// posting is now available in `self.current`.
    fn advance(&mut self) -> si_storage::Result<bool> {
        loop {
            if self.pos < self.buf.len() {
                if let Some(used) = decode_one_into(
                    self.coding,
                    self.key_nodes,
                    self.first,
                    self.tid,
                    &self.buf[self.pos..],
                    &mut self.current,
                ) {
                    self.pos += used;
                    self.tid = self.current.tid();
                    self.first = false;
                    self.decoded += 1;
                    return Ok(true);
                }
            }
            if !self.refill()? {
                return if self.pos < self.buf.len() {
                    Err(si_storage::StorageError::Corrupt(
                        "posting list ends mid-posting".into(),
                    ))
                } else {
                    Ok(false)
                };
            }
        }
    }

    /// Decodes the next posting into the cursor's reusable slot and
    /// lends it out. Returns `Ok(None)` at a clean end of list; a list
    /// that ends mid-posting is reported as corruption. The borrow is
    /// invalidated by the next call (the [`PostingFeed`] contract).
    pub fn next_posting(&mut self) -> si_storage::Result<Option<&Posting>> {
        Ok(if self.advance()? {
            Some(&self.current)
        } else {
            None
        })
    }
}

/// Decodes one posting from the front of `bytes` **into** `slot`,
/// returning the bytes consumed; `None` when `bytes` ends mid-posting
/// (in which case `slot` holds garbage but stays structurally valid).
/// The single decode implementation behind both [`PostingCursor`]
/// (chunked, slot reused across postings — allocation-free) and
/// [`PostingIter`] (borrowed slice, fresh slot per posting). An
/// interval slot's `nodes` vector is recycled, so steady-state decode
/// never allocates.
fn decode_one_into(
    coding: Coding,
    key_nodes: usize,
    first: bool,
    prev_tid: TreeId,
    bytes: &[u8],
    slot: &mut Posting,
) -> Option<usize> {
    let mut r = varint::Reader::new(bytes);
    let delta = r.u32()?;
    let tid = if first { delta } else { prev_tid + delta };
    match coding {
        Coding::FilterBased => *slot = Posting::Tid(tid),
        Coding::RootSplit => {
            let pre = r.u32()?;
            let post = r.u32()?;
            let level = r.u32()? as u16;
            *slot = Posting::Root {
                tid,
                root: NodeVal { pre, post, level },
            };
        }
        Coding::SubtreeInterval => {
            let mut nodes = match std::mem::replace(slot, Posting::Tid(0)) {
                Posting::Occurrence { nodes, .. } => nodes,
                _ => Vec::with_capacity(key_nodes),
            };
            nodes.clear();
            let mut complete = true;
            for _ in 0..key_nodes {
                let (Some(pre), Some(post), Some(level), Some(order)) =
                    (r.u32(), r.u32(), r.u32(), r.u32())
                else {
                    complete = false;
                    break;
                };
                nodes.push((
                    NodeVal {
                        pre,
                        post,
                        level: level as u16,
                    },
                    order as u8,
                ));
            }
            // Park the vector back in the slot even on truncation, so
            // its capacity survives for the retry after a refill.
            *slot = Posting::Occurrence { tid, nodes };
            if !complete {
                return None;
            }
        }
    }
    Some(r.position())
}

/// Decodes a posting list produced by [`PostingBuilder`]. `key_nodes` is
/// the key's node count (needed by the interval coding; ignored
/// otherwise). Borrows `bytes` zero-copy; the streaming executor uses
/// [`PostingCursor`] over B+Tree value readers instead.
pub fn decode_postings(coding: Coding, key_nodes: usize, bytes: &[u8]) -> PostingIter<'_> {
    PostingIter {
        coding,
        key_nodes,
        bytes,
        pos: 0,
        tid: 0,
        first: true,
    }
}

/// Iterator over decoded [`Posting`]s of an in-memory list, decoding in
/// place without copying the list. Truncated lists end the iteration
/// early.
pub struct PostingIter<'a> {
    coding: Coding,
    key_nodes: usize,
    bytes: &'a [u8],
    pos: usize,
    tid: TreeId,
    first: bool,
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let mut posting = Posting::Tid(0);
        let used = decode_one_into(
            self.coding,
            self.key_nodes,
            self.first,
            self.tid,
            &self.bytes[self.pos..],
            &mut posting,
        )?;
        self.pos += used;
        self.tid = posting.tid();
        self.first = false;
        Some(posting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nv(pre: u32, post: u32, level: u16) -> NodeVal {
        NodeVal { pre, post, level }
    }

    #[test]
    fn filter_coding_dedups_by_tid() {
        let mut b = PostingBuilder::new(Coding::FilterBased);
        b.push(3, &[(nv(0, 5, 0), 1)]);
        b.push(3, &[(nv(2, 1, 1), 1)]);
        b.push(7, &[(nv(0, 5, 0), 1)]);
        assert_eq!(b.count(), 2);
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::FilterBased, 1, &bytes).collect();
        assert_eq!(got, vec![Posting::Tid(3), Posting::Tid(7)]);
    }

    #[test]
    fn root_split_dedups_by_tid_and_pre() {
        let mut b = PostingBuilder::new(Coding::RootSplit);
        // Two occurrences sharing a root (e.g. NP(NN) over NP with two NNs
        // would be one posting each, but the same key rooted at the same
        // NP twice collapses).
        b.push(1, &[(nv(4, 9, 2), 1), (nv(5, 7, 3), 2)]);
        b.push(1, &[(nv(4, 9, 2), 1), (nv(6, 8, 3), 2)]);
        b.push(1, &[(nv(9, 12, 2), 1), (nv(10, 11, 3), 2)]);
        b.push(2, &[(nv(0, 3, 0), 1), (nv(1, 2, 1), 2)]);
        assert_eq!(b.count(), 3);
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::RootSplit, 2, &bytes).collect();
        assert_eq!(
            got,
            vec![
                Posting::Root {
                    tid: 1,
                    root: nv(4, 9, 2)
                },
                Posting::Root {
                    tid: 1,
                    root: nv(9, 12, 2)
                },
                Posting::Root {
                    tid: 2,
                    root: nv(0, 3, 0)
                },
            ]
        );
    }

    #[test]
    fn interval_coding_keeps_every_occurrence() {
        let mut b = PostingBuilder::new(Coding::SubtreeInterval);
        let occ1 = [(nv(4, 9, 2), 1), (nv(5, 7, 3), 2)];
        let occ2 = [(nv(4, 9, 2), 1), (nv(6, 8, 3), 2)];
        b.push(1, &occ1);
        b.push(1, &occ2);
        assert_eq!(b.count(), 2);
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::SubtreeInterval, 2, &bytes).collect();
        assert_eq!(
            got,
            vec![
                Posting::Occurrence {
                    tid: 1,
                    nodes: occ1.to_vec()
                },
                Posting::Occurrence {
                    tid: 1,
                    nodes: occ2.to_vec()
                },
            ]
        );
    }

    #[test]
    fn posting_sizes_ranked_as_in_figure_8() {
        // For the same occurrences: filter <= root-split <= interval.
        let occs: Vec<(TreeId, Vec<(NodeVal, u8)>)> = (0..100u32)
            .map(|i| {
                // Three occurrences per tree with ascending root pre.
                let pre = (i % 3) * 4;
                (
                    i / 3,
                    vec![
                        (nv(pre, pre + 3, 1), 1),
                        (nv(pre + 1, pre + 1, 2), 2),
                        (nv(pre + 2, pre + 2, 2), 3),
                    ],
                )
            })
            .collect();
        let mut sizes = Vec::new();
        for coding in [
            Coding::FilterBased,
            Coding::RootSplit,
            Coding::SubtreeInterval,
        ] {
            let mut b = PostingBuilder::new(coding);
            for (tid, nodes) in &occs {
                b.push(*tid, nodes);
            }
            sizes.push(b.finish().len());
        }
        assert!(sizes[0] < sizes[1], "filter < root-split: {sizes:?}");
        assert!(sizes[1] < sizes[2], "root-split < interval: {sizes:?}");
    }

    #[test]
    fn node_val_relations() {
        let root = nv(0, 10, 0);
        let child = nv(1, 4, 1);
        let grandchild = nv(2, 3, 2);
        assert!(root.is_ancestor_of(&child));
        assert!(root.is_ancestor_of(&grandchild));
        assert!(root.is_parent_of(&child));
        assert!(!root.is_parent_of(&grandchild));
        assert!(!child.is_ancestor_of(&root));
        assert!(!child.is_ancestor_of(&child));
    }

    #[test]
    fn empty_list_decodes_empty() {
        assert_eq!(decode_postings(Coding::FilterBased, 1, &[]).count(), 0);
        assert_eq!(decode_postings(Coding::RootSplit, 1, &[]).count(), 0);
    }

    /// Source that drips bytes in fixed-size chunks, simulating page
    /// boundaries falling mid-varint and mid-posting.
    struct DripSource {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl ChunkSource for DripSource {
        fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize> {
            let end = (self.pos + self.chunk).min(self.bytes.len());
            let n = end - self.pos;
            out.extend_from_slice(&self.bytes[self.pos..end]);
            self.pos = end;
            Ok(n)
        }
    }

    fn all_codings_sample() -> Vec<(Coding, usize, Vec<u8>, Vec<Posting>)> {
        let mut out = Vec::new();
        for coding in Coding::ALL {
            let mut b = PostingBuilder::new(coding);
            for tid in [0u32, 1, 5, 5, 1_000_000, 4_000_000_000] {
                b.push(
                    tid,
                    &[
                        (nv(tid % 90, tid % 90 + 3, 2), 1),
                        (nv(tid % 90 + 1, tid % 90 + 1, 3), 2),
                    ],
                );
            }
            let bytes = b.finish();
            let want: Vec<Posting> = decode_postings(coding, 2, &bytes).collect();
            out.push((coding, 2, bytes, want));
        }
        out
    }

    #[test]
    fn cursor_preserves_delta_state_across_chunk_boundaries() {
        for (coding, key_nodes, bytes, want) in all_codings_sample() {
            for chunk in [1usize, 2, 3, 5, 7, 4096] {
                let mut cursor = PostingCursor::new(
                    coding,
                    key_nodes,
                    DripSource {
                        bytes: bytes.clone(),
                        pos: 0,
                        chunk,
                    },
                );
                let mut got = Vec::new();
                while let Some(p) = cursor.next_posting().unwrap() {
                    got.push(p.clone());
                }
                assert_eq!(got, want, "{coding} chunk={chunk}");
                assert_eq!(cursor.decoded(), want.len());
                // Resident window never exceeds one chunk plus the
                // partial posting carried over the boundary.
                assert!(
                    cursor.peak_buffer_bytes() <= chunk + 40,
                    "{coding} chunk={chunk}: peak {}",
                    cursor.peak_buffer_bytes()
                );
            }
        }
    }

    #[test]
    fn cursor_reuses_the_occurrence_buffer_across_postings() {
        // The zero-copy pipeline's decode side: after the first
        // interval posting, the cursor's `nodes` vector is recycled —
        // the lent borrows all point into the same allocation, so
        // steady-state decoding allocates nothing per posting.
        let mut b = PostingBuilder::new(Coding::SubtreeInterval);
        for tid in 0u32..50 {
            b.push(tid, &[(nv(1, 4, 1), 1), (nv(2, 3, 2), 2)]);
        }
        let bytes = b.finish();
        let mut cursor = PostingCursor::new(Coding::SubtreeInterval, 2, SliceSource::new(&bytes));
        let mut ptrs = Vec::new();
        while let Some(p) = cursor.next_posting().unwrap() {
            let Posting::Occurrence { nodes, .. } = p else {
                panic!("interval cursor yields occurrences");
            };
            ptrs.push(nodes.as_ptr());
        }
        assert_eq!(ptrs.len(), 50);
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "nodes buffer must be reused across postings"
        );
    }

    #[test]
    fn cursor_reports_truncated_list() {
        let mut b = PostingBuilder::new(Coding::RootSplit);
        b.push(3, &[(nv(1, 4, 1), 1)]);
        b.push(9, &[(nv(2, 3, 2), 1)]);
        let bytes = b.finish();
        let cut = &bytes[..bytes.len() - 1];
        let mut cursor = PostingCursor::new(Coding::RootSplit, 1, SliceSource::new(cut));
        assert!(cursor.next_posting().unwrap().is_some());
        assert!(
            cursor.next_posting().is_err(),
            "mid-posting end is corruption"
        );
    }

    #[test]
    fn large_tid_gaps_round_trip() {
        let mut b = PostingBuilder::new(Coding::FilterBased);
        for tid in [0u32, 1, 1_000_000, 4_000_000_000] {
            b.push(tid, &[(nv(0, 0, 0), 1)]);
        }
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::FilterBased, 1, &bytes).collect();
        assert_eq!(
            got,
            vec![
                Posting::Tid(0),
                Posting::Tid(1),
                Posting::Tid(1_000_000),
                Posting::Tid(4_000_000_000)
            ]
        );
    }
}
