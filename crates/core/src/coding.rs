//! The three posting-list coding schemes (§4.4).
//!
//! Every index key (a canonical subtree) owns one posting list; the
//! coding scheme decides what each posting records:
//!
//! | coding            | posting                                   | §     |
//! |-------------------|-------------------------------------------|-------|
//! | filter-based      | `tid`                                     | 4.4.1 |
//! | subtree interval  | `tid, m × (pre, post, level, order)`      | 4.4.2 |
//! | root-split        | `tid, (pre, post, level)` of the root     | 4.4.3 |
//!
//! Lists are sorted by `(tid, root.pre)` and delta-encoded on `tid`.
//! Filter-based postings deduplicate by `tid`; root-split postings by
//! `(tid, root.pre)` — the paper's second source of size reduction:
//! "multiple subtrees which have the same key and the same root ... will
//! be represented with only one posting".
//!
//! Interval postings store nodes in **canonical key order** (position 1
//! is the root); the `order` field is each node's pre-order rank within
//! the occurrence, the paper's disambiguator for symmetric instances.

use si_parsetree::{varint, TreeId};

/// Selects the posting-list format of a [`crate::SubtreeIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coding {
    /// Tree ids only; query evaluation post-validates candidates.
    FilterBased,
    /// Full structural info for every subtree node; exact matching.
    SubtreeInterval,
    /// Structural info of the subtree root only; exact matching with
    /// root-split covers. The paper's headline scheme.
    RootSplit,
}

impl Coding {
    /// All codings in the paper's reporting order.
    pub const ALL: [Coding; 3] = [
        Coding::FilterBased,
        Coding::RootSplit,
        Coding::SubtreeInterval,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Coding::FilterBased => "filter-based",
            Coding::SubtreeInterval => "subtree interval",
            Coding::RootSplit => "root-split",
        }
    }

    /// Stable on-disk id of the coding (`si.meta`, `MANIFEST.si`).
    pub fn id(self) -> u8 {
        match self {
            Coding::FilterBased => 0,
            Coding::SubtreeInterval => 1,
            Coding::RootSplit => 2,
        }
    }

    /// The coding a stable on-disk id denotes, if valid.
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(Coding::FilterBased),
            1 => Some(Coding::SubtreeInterval),
            2 => Some(Coding::RootSplit),
            _ => None,
        }
    }
}

impl std::fmt::Display for Coding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural information of one data node, as stored in postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeVal {
    /// Pre-order rank within the tree.
    pub pre: u32,
    /// Post-order rank within the tree.
    pub post: u32,
    /// Depth (root = 0).
    pub level: u16,
}

impl NodeVal {
    /// Interval containment: is `self` a proper ancestor of `other`
    /// (within the same tree)?
    #[inline]
    pub fn is_ancestor_of(&self, other: &NodeVal) -> bool {
        self.pre < other.pre && other.post < self.post
    }

    /// Containment plus a level check: is `self` the parent of `other`?
    #[inline]
    pub fn is_parent_of(&self, other: &NodeVal) -> bool {
        self.is_ancestor_of(other) && other.level == self.level + 1
    }
}

/// One decoded posting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Posting {
    /// Filter-based: candidate tree.
    Tid(TreeId),
    /// Root-split: root occurrence.
    Root {
        /// Containing tree.
        tid: TreeId,
        /// Structural info of the subtree root.
        root: NodeVal,
    },
    /// Subtree interval: full occurrence.
    Occurrence {
        /// Containing tree.
        tid: TreeId,
        /// `(values, order)` per node, in canonical key order;
        /// `order` is the node's pre-order rank within the occurrence
        /// (1-based).
        nodes: Vec<(NodeVal, u8)>,
    },
}

impl Posting {
    /// The containing tree, whichever coding the posting uses.
    #[inline]
    pub fn tid(&self) -> TreeId {
        match self {
            Posting::Tid(tid) => *tid,
            Posting::Root { tid, .. } => *tid,
            Posting::Occurrence { tid, .. } => *tid,
        }
    }
}

/// Builds one key's posting list during index construction. Occurrences
/// must be pushed in `(tid, root.pre)` order, which
/// [`crate::extract::for_each_subtree`] guarantees.
#[derive(Debug)]
pub struct PostingBuilder {
    coding: Coding,
    buf: Vec<u8>,
    count: u64,
    last_tid: Option<TreeId>,
    last_root_pre: u32,
    first_tid: Option<TreeId>,
    distinct_tids: u64,
}

impl PostingBuilder {
    /// Creates an empty builder for `coding`.
    pub fn new(coding: Coding) -> Self {
        Self {
            coding,
            buf: Vec::new(),
            count: 0,
            last_tid: None,
            last_root_pre: 0,
            first_tid: None,
            distinct_tids: 0,
        }
    }

    /// Appends one occurrence. `nodes` lists `(values, order)` in
    /// canonical key order; `nodes[0]` is the root.
    ///
    /// # Panics
    /// Panics (debug) if pushes violate `(tid, root.pre)` order or
    /// `nodes` is empty.
    pub fn push(&mut self, tid: TreeId, nodes: &[(NodeVal, u8)]) {
        debug_assert!(!nodes.is_empty());
        let root_pre = nodes[0].0.pre;
        if let Some(last) = self.last_tid {
            debug_assert!(
                tid > last || (tid == last && root_pre >= self.last_root_pre),
                "postings must arrive in (tid, root.pre) order"
            );
            // Deduplication.
            match self.coding {
                Coding::FilterBased => {
                    if tid == last {
                        return;
                    }
                }
                Coding::RootSplit => {
                    if tid == last && root_pre == self.last_root_pre {
                        return;
                    }
                }
                Coding::SubtreeInterval => {}
            }
        }
        if self.last_tid != Some(tid) {
            self.distinct_tids += 1;
        }
        if self.first_tid.is_none() {
            self.first_tid = Some(tid);
        }
        let delta = tid - self.last_tid.unwrap_or(0);
        varint::write_u32(&mut self.buf, delta);
        match self.coding {
            Coding::FilterBased => {}
            Coding::RootSplit => {
                let root = nodes[0].0;
                varint::write_u32(&mut self.buf, root.pre);
                varint::write_u32(&mut self.buf, root.post);
                varint::write_u32(&mut self.buf, u32::from(root.level));
            }
            Coding::SubtreeInterval => {
                for (val, order) in nodes {
                    varint::write_u32(&mut self.buf, val.pre);
                    varint::write_u32(&mut self.buf, val.post);
                    varint::write_u32(&mut self.buf, u32::from(val.level));
                    varint::write_u32(&mut self.buf, u32::from(*order));
                }
            }
        }
        self.count += 1;
        self.last_tid = Some(tid);
        self.last_root_pre = root_pre;
    }

    /// Number of postings kept (after deduplication).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of distinct tree ids the kept postings span.
    pub fn distinct_tids(&self) -> u64 {
        self.distinct_tids
    }

    /// Smallest tree id pushed so far (`None` while empty).
    pub fn first_tid(&self) -> Option<TreeId> {
        self.first_tid
    }

    /// Largest tree id pushed so far (`None` while empty).
    pub fn last_tid(&self) -> Option<TreeId> {
        self.last_tid
    }

    /// Snapshot of this list's statistics in the on-disk stats-segment
    /// form ([`si_storage::KeyStats`]); `bytes` is the encoded length so
    /// far, so take it after the final push.
    pub fn key_stats(&self) -> si_storage::KeyStats {
        si_storage::KeyStats {
            postings: self.count,
            distinct_tids: self.distinct_tids,
            first_tid: self.first_tid.unwrap_or(0),
            last_tid: self.last_tid.unwrap_or(0),
            bytes: self.buf.len() as u64,
            exact: true,
            ..si_storage::KeyStats::default()
        }
    }

    /// Encoded size so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finalizes into list bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Postings per restart block in freshly built indexes. Matches the
/// default [`crate::blockcache::BlockCacheConfig::block_postings`] so a
/// skip jump lands exactly on a decoded-block-cache boundary.
pub const DEFAULT_RESTART_INTERVAL: u32 = 1024;

/// On-disk version byte of the per-list skip header.
pub const SKIP_HEADER_VERSION: u8 = 1;

fn corrupt(msg: &str) -> si_storage::StorageError {
    si_storage::StorageError::Corrupt(msg.into())
}

/// A posting list's restart points, decoded from its skip header.
///
/// Entry `k` (0-based) describes restart block `k + 1`, which starts at
/// posting index `(k + 1) * interval`: it records the tid of the
/// posting *immediately before* the restart (the absolute delta-decode
/// state a seek resumes from) and the byte offset of the restart
/// posting within the unchanged legacy payload. Restart block 0 is
/// implicit (offset 0, fresh decode state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipTable {
    interval: u32,
    entries: Vec<(TreeId, u64)>,
}

impl SkipTable {
    /// Postings per restart block.
    pub fn interval(&self) -> u32 {
        self.interval
    }

    /// Number of explicit restart points (excludes the implicit block 0).
    pub fn restarts(&self) -> usize {
        self.entries.len()
    }

    /// The restart block to seek to for target tid `t`: the largest `p`
    /// whose recorded prior tid is `< t` (every posting before block `p`
    /// then has tid `< t`, so skipping them is safe even with duplicate
    /// tids). `0` means "stay where you are".
    pub fn restart_before(&self, t: TreeId) -> u32 {
        self.entries.partition_point(|&(prev, _)| prev < t) as u32
    }

    /// `(prior tid, payload byte offset)` of restart block `p >= 1`.
    fn entry(&self, p: u32) -> Option<(TreeId, u64)> {
        self.entries.get((p as usize).checked_sub(1)?).copied()
    }

    /// Parses the exact header bytes (as delimited by
    /// [`skip_header_extent`]).
    fn parse(header: &[u8]) -> si_storage::Result<SkipTable> {
        if header.first() != Some(&SKIP_HEADER_VERSION) {
            return Err(corrupt("unsupported skip-header version"));
        }
        let mut r = varint::Reader::new(&header[1..]);
        let body_len = r.u64().ok_or_else(|| corrupt("skip header truncated"))? as usize;
        let body = r
            .bytes(body_len)
            .ok_or_else(|| corrupt("skip header truncated"))?;
        let mut r = varint::Reader::new(body);
        let interval = r.u32().ok_or_else(|| corrupt("skip header truncated"))?;
        if interval == 0 {
            return Err(corrupt("skip header has zero restart interval"));
        }
        let n = r.u64().ok_or_else(|| corrupt("skip header truncated"))?;
        let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
        let (mut tid, mut off) = (0u32, 0u64);
        for i in 0..n {
            let dt = r.u32().ok_or_else(|| corrupt("skip header truncated"))?;
            let doff = r.u64().ok_or_else(|| corrupt("skip header truncated"))?;
            tid = tid
                .checked_add(dt)
                .ok_or_else(|| corrupt("skip-table tid overflows"))?;
            if doff == 0 && i > 0 {
                return Err(corrupt("skip-table offsets must ascend"));
            }
            off = off
                .checked_add(doff)
                .ok_or_else(|| corrupt("skip-table offset overflows"))?;
            entries.push((tid, off));
        }
        if !r.is_empty() {
            return Err(corrupt("skip header has trailing bytes"));
        }
        Ok(SkipTable { interval, entries })
    }
}

/// Total byte length of the skip header at the front of `bytes`, or
/// `None` while the version byte plus length varint are incomplete.
fn skip_header_extent(bytes: &[u8]) -> Option<usize> {
    if bytes.is_empty() {
        return None;
    }
    let (body_len, used) = varint::read_u64(&bytes[1..])?;
    (1usize + used).checked_add(usize::try_from(body_len).ok()?)
}

/// Wraps a finished legacy payload (the exact [`PostingBuilder`] bytes)
/// into the versioned on-disk list value — skip header followed by the
/// byte-identical payload — and returns it together with the list's tid
/// histogram (posting counts over [`si_storage::TID_HIST_BUCKETS`]
/// equal-width buckets spanning `[first_tid, last_tid]`, saturating).
///
/// This is a pure post-pass varint skim: it never materializes
/// postings, so all three build paths call it on their final merged
/// bytes without changing how those bytes are produced. An empty
/// payload stays an empty value.
pub fn build_list_value(
    coding: Coding,
    key_nodes: usize,
    payload: &[u8],
    interval: u32,
    first_tid: TreeId,
    last_tid: TreeId,
) -> si_storage::Result<(Vec<u8>, [u32; si_storage::TID_HIST_BUCKETS])> {
    let mut hist = [0u32; si_storage::TID_HIST_BUCKETS];
    if payload.is_empty() {
        return Ok((Vec::new(), hist));
    }
    let interval = interval.max(1);
    let span = u64::from(last_tid.saturating_sub(first_tid)) + 1;
    let fields_after_tid = match coding {
        Coding::FilterBased => 0,
        Coding::RootSplit => 3,
        Coding::SubtreeInterval => 4 * key_nodes,
    };
    let mut entries: Vec<(TreeId, u64)> = Vec::new();
    let mut r = varint::Reader::new(payload);
    let mut tid: TreeId = 0;
    let mut index: u64 = 0;
    while !r.is_empty() {
        if index > 0 && index.is_multiple_of(u64::from(interval)) {
            entries.push((tid, r.position() as u64));
        }
        let delta = r
            .u32()
            .ok_or_else(|| corrupt("posting payload ends mid-posting"))?;
        tid = if index == 0 {
            delta
        } else {
            tid.checked_add(delta)
                .ok_or_else(|| corrupt("posting tid overflows"))?
        };
        for _ in 0..fields_after_tid {
            r.u64()
                .ok_or_else(|| corrupt("posting payload ends mid-posting"))?;
        }
        let bucket = if tid <= first_tid {
            0
        } else {
            ((u64::from(tid - first_tid) * si_storage::TID_HIST_BUCKETS as u64) / span)
                .min(si_storage::TID_HIST_BUCKETS as u64 - 1) as usize
        };
        hist[bucket] = hist[bucket].saturating_add(1);
        index += 1;
    }
    let mut body = Vec::new();
    varint::write_u32(&mut body, interval);
    varint::write_u64(&mut body, entries.len() as u64);
    let (mut ptid, mut poff) = (0u32, 0u64);
    for &(t, off) in &entries {
        varint::write_u32(&mut body, t - ptid);
        varint::write_u64(&mut body, off - poff);
        ptid = t;
        poff = off;
    }
    let mut out =
        Vec::with_capacity(1 + varint::len_u64(body.len() as u64) + body.len() + payload.len());
    out.push(SKIP_HEADER_VERSION);
    varint::write_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out.extend_from_slice(payload);
    Ok((out, hist))
}

/// Splits a whole in-memory list value built by [`build_list_value`]
/// into its skip table and the legacy payload it prefixes. An empty
/// value has neither. Used by whole-list consumers
/// ([`crate::SubtreeIndex::postings`], CLI dumps) on skip-header
/// indexes before handing the payload to [`decode_postings`].
pub fn split_skip_header(bytes: &[u8]) -> si_storage::Result<(Option<SkipTable>, &[u8])> {
    if bytes.is_empty() {
        return Ok((None, bytes));
    }
    let extent =
        skip_header_extent(bytes).ok_or_else(|| corrupt("posting list ends mid skip header"))?;
    let header = bytes
        .get(..extent)
        .ok_or_else(|| corrupt("posting list ends mid skip header"))?;
    let table = SkipTable::parse(header)?;
    Ok((Some(table), &bytes[extent..]))
}

/// An incremental source of decoded postings: a [`PostingCursor`]
/// decoding raw bytes off the pager, or a
/// [`crate::blockcache::CachedListReader`] serving pre-decoded blocks
/// from the shared block cache. The streaming executor's scans are
/// written against this trait so the cache slots in without touching
/// the operator tree.
///
/// # Borrowing contract (zero-copy)
///
/// `next_posting` yields a **borrow** of the feed's internal buffer —
/// the cursor's reusable decode slot, or a cached block the feed pins
/// alive via `Arc` for as long as it is the current block. The borrow
/// is valid until the next `next_posting` call (the lending-iterator
/// shape); consumers copy node values into owned tuples only at the
/// single point a tuple outlives its source posting. Interval-coded
/// postings therefore never re-allocate their `nodes` vector per
/// consumer: a cache hit is served straight out of the shared block.
pub trait PostingFeed {
    /// Produces the next posting as a borrow from the feed's internal
    /// buffer, or `None` at a clean end of list. The borrow is
    /// invalidated by the next call.
    fn next_posting(&mut self) -> si_storage::Result<Option<&Posting>>;

    /// High-water mark of resident bytes attributable to this feed (the
    /// executor's memory-meter contribution). Bytes owned by a shared
    /// cache (pinned blocks) are charged to the cache's budget, not to
    /// the feed.
    fn peak_buffer_bytes(&self) -> usize;

    /// Forward-only seek: positions the feed so no posting with
    /// `tid >= t` is skipped, jumping whole restart blocks when the
    /// list carries a skip header. Returns how many postings were
    /// **never decoded** because of the jump (`0` when the feed cannot
    /// seek, the list has no skip table, or it is already close enough
    /// that no restart lies strictly between). Safe to call at any
    /// point between `next_posting` calls; never moves backwards.
    fn seek_to_tid(&mut self, _t: TreeId) -> si_storage::Result<u64> {
        Ok(0)
    }
}

impl<S: ChunkSource> PostingFeed for PostingCursor<S> {
    fn next_posting(&mut self) -> si_storage::Result<Option<&Posting>> {
        PostingCursor::next_posting(self)
    }

    fn peak_buffer_bytes(&self) -> usize {
        PostingCursor::peak_buffer_bytes(self)
    }

    fn seek_to_tid(&mut self, t: TreeId) -> si_storage::Result<u64> {
        PostingCursor::seek_to_tid(self, t)
    }
}

/// An incremental source of posting-list bytes: an in-memory slice
/// ([`SliceSource`]) or a disk cursor walking B+Tree overflow chains
/// page-by-page (`ValueReader`, see `crate::build`). The streaming
/// executor never sees more than one chunk plus a partial posting in
/// memory at a time.
pub trait ChunkSource {
    /// Appends the next chunk of bytes to `out`, returning how many bytes
    /// were appended. `Ok(0)` signals exhaustion.
    fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize>;

    /// Drops up to `n` upcoming bytes **at chunk granularity** without
    /// copying them, returning how many were dropped. `Ok(0)` is always
    /// a valid answer (the caller then falls back to reading and
    /// discarding); sources backed by linked disk pages override this to
    /// hop whole pages during a [`PostingCursor::seek_to_tid`].
    fn skip_bytes(&mut self, _n: u64) -> si_storage::Result<u64> {
        Ok(0)
    }
}

/// A B+Tree value cursor is a chunk source: each chunk is one disk
/// page's payload, so a [`PostingCursor`] over it decodes straight off
/// the pager without ever materializing the list. Seeks hop whole
/// overflow pages without copying their payload out of the page cache.
impl ChunkSource for si_storage::btree::ValueReader<'_> {
    fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize> {
        si_storage::btree::ValueReader::read_chunk(self, out)
    }

    fn skip_bytes(&mut self, n: u64) -> si_storage::Result<u64> {
        si_storage::btree::ValueReader::skip_chunk_bytes(self, n)
    }
}

/// [`ChunkSource`] over an in-memory byte slice; delivers everything as
/// one chunk.
pub struct SliceSource<'a> {
    bytes: &'a [u8],
    done: bool,
}

impl<'a> SliceSource<'a> {
    /// Wraps `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, done: false }
    }
}

impl ChunkSource for SliceSource<'_> {
    fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize> {
        if self.done {
            return Ok(0);
        }
        self.done = true;
        out.extend_from_slice(self.bytes);
        Ok(self.bytes.len())
    }

    fn skip_bytes(&mut self, n: u64) -> si_storage::Result<u64> {
        if self.done {
            return Ok(0);
        }
        let take = usize::try_from(n)
            .unwrap_or(usize::MAX)
            .min(self.bytes.len());
        self.bytes = &self.bytes[take..];
        Ok(take as u64)
    }
}

/// Streaming decoder of a posting list produced by [`PostingBuilder`]:
/// pulls bytes from any [`ChunkSource`] and lends one [`Posting`] at a
/// time out of a reusable decode slot, carrying the `tid` delta-decode
/// state across chunk (and hence disk-page) boundaries. The resident
/// buffer holds at most one source chunk plus one partial posting, so
/// decoding a multi-page posting list costs O(chunk) memory instead of
/// O(list) — and because the slot (including an interval posting's
/// `nodes` vector) is reused across postings, steady-state decoding
/// performs **zero allocations per posting**.
pub struct PostingCursor<S> {
    coding: Coding,
    key_nodes: usize,
    src: S,
    /// Undecoded byte window; `pos..` is live.
    buf: Vec<u8>,
    pos: usize,
    tid: TreeId,
    first: bool,
    src_done: bool,
    decoded: usize,
    peak_buf: usize,
    /// Whether the leading skip header (if the format has one) has been
    /// consumed; starts `true` for legacy headerless lists.
    header_done: bool,
    skip: Option<SkipTable>,
    /// Payload byte offset of `buf[pos]` (excludes the skip header).
    payload_consumed: u64,
    /// Postings jumped over by seeks — never decoded.
    skipped_postings: u64,
    /// Reusable decode slot the borrow returned by
    /// [`PostingCursor::next_posting`] points into.
    current: Posting,
}

impl<S: ChunkSource> PostingCursor<S> {
    /// Creates a cursor over a legacy (headerless) list. `key_nodes` is
    /// the key's node count (needed by the interval coding; ignored
    /// otherwise).
    pub fn new(coding: Coding, key_nodes: usize, src: S) -> Self {
        Self::with_format(coding, key_nodes, src, false)
    }

    /// Creates a cursor, stating whether the value starts with a skip
    /// header ([`build_list_value`] format) or is a bare legacy payload.
    pub fn with_format(coding: Coding, key_nodes: usize, src: S, skip_header: bool) -> Self {
        Self {
            coding,
            key_nodes,
            src,
            buf: Vec::new(),
            pos: 0,
            tid: 0,
            first: true,
            src_done: false,
            decoded: 0,
            peak_buf: 0,
            header_done: !skip_header,
            skip: None,
            payload_consumed: 0,
            skipped_postings: 0,
            current: Posting::Tid(0),
        }
    }

    /// Postings decoded so far.
    pub fn decoded(&self) -> usize {
        self.decoded
    }

    /// Index of the next posting in the full list — decoded plus
    /// seek-skipped.
    pub fn position(&self) -> u64 {
        self.decoded as u64 + self.skipped_postings
    }

    /// High-water mark of resident undecoded bytes — the streaming
    /// executor's "pages in flight" figure for this list.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buf
    }

    /// Pulls one more chunk from the source into the window, compacting
    /// the consumed prefix first. Returns whether new bytes arrived.
    fn refill(&mut self) -> si_storage::Result<bool> {
        if self.src_done {
            return Ok(false);
        }
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let n = self.src.read_chunk(&mut self.buf)?;
        if n == 0 {
            self.src_done = true;
        }
        self.peak_buf = self.peak_buf.max(self.buf.len());
        Ok(n > 0)
    }

    /// Parses the skip header (when the format has one) before the first
    /// payload byte is decoded, refilling from the source as needed. A
    /// zero-length value stays a clean empty list.
    fn ensure_header(&mut self) -> si_storage::Result<()> {
        if self.header_done {
            return Ok(());
        }
        loop {
            let window = &self.buf[self.pos..];
            if let Some(extent) = skip_header_extent(window) {
                if window.len() >= extent {
                    self.skip = Some(SkipTable::parse(&window[..extent])?);
                    self.pos += extent;
                    self.header_done = true;
                    return Ok(());
                }
            }
            if !self.refill()? {
                return if self.pos >= self.buf.len() {
                    // Zero-length value: an empty list has no header.
                    self.header_done = true;
                    Ok(())
                } else {
                    Err(corrupt("posting list ends mid skip header"))
                };
            }
        }
    }

    /// The list's restart points, or `None` for legacy/empty lists.
    /// Forces the header parse.
    pub fn skip_table(&mut self) -> si_storage::Result<Option<&SkipTable>> {
        self.ensure_header()?;
        Ok(self.skip.as_ref())
    }

    /// Forward-only seek to the latest restart point whose prior tid is
    /// `< t` (see [`SkipTable::restart_before`]); returns the number of
    /// postings jumped over without decoding. No-op (`Ok(0)`) on legacy
    /// lists or when already at or past that restart.
    pub fn seek_to_tid(&mut self, t: TreeId) -> si_storage::Result<u64> {
        self.ensure_header()?;
        let Some(table) = &self.skip else {
            return Ok(0);
        };
        let p = table.restart_before(t);
        self.seek_to_restart(p)
    }

    /// Forward-only jump to restart block `p` (`0` = no-op). Returns the
    /// number of postings skipped without decoding.
    pub fn seek_to_restart(&mut self, p: u32) -> si_storage::Result<u64> {
        self.ensure_header()?;
        let (prev_tid, offset, target_index) = {
            let Some(table) = &self.skip else {
                return Ok(0);
            };
            let Some((prev_tid, offset)) = table.entry(p) else {
                return Ok(0);
            };
            (prev_tid, offset, u64::from(p) * u64::from(table.interval()))
        };
        if offset <= self.payload_consumed {
            return Ok(0);
        }
        let mut need = offset - self.payload_consumed;
        loop {
            let avail = (self.buf.len() - self.pos) as u64;
            let take = need.min(avail);
            self.pos += take as usize;
            self.payload_consumed += take;
            need -= take;
            if need == 0 {
                break;
            }
            // Buffer drained — let the source hop whole chunks (disk
            // pages) without copying, then refill for the remainder.
            let fast = self.src.skip_bytes(need)?;
            self.payload_consumed += fast;
            need -= fast;
            if need == 0 {
                break;
            }
            if !self.refill()? {
                return Err(corrupt("posting-list seek past end of list"));
            }
        }
        self.tid = prev_tid;
        self.first = false;
        let skipped = target_index.saturating_sub(self.position());
        self.skipped_postings += skipped;
        Ok(skipped)
    }

    /// Advances the cursor by decoding one posting into the reusable
    /// slot, refilling from the source as needed. Returns whether a
    /// posting is now available in `self.current`.
    fn advance(&mut self) -> si_storage::Result<bool> {
        self.ensure_header()?;
        loop {
            if self.pos < self.buf.len() {
                if let Some(used) = decode_one_into(
                    self.coding,
                    self.key_nodes,
                    self.first,
                    self.tid,
                    &self.buf[self.pos..],
                    &mut self.current,
                ) {
                    self.pos += used;
                    self.payload_consumed += used as u64;
                    self.tid = self.current.tid();
                    self.first = false;
                    self.decoded += 1;
                    return Ok(true);
                }
            }
            if !self.refill()? {
                return if self.pos < self.buf.len() {
                    Err(si_storage::StorageError::Corrupt(
                        "posting list ends mid-posting".into(),
                    ))
                } else {
                    Ok(false)
                };
            }
        }
    }

    /// Decodes the next posting into the cursor's reusable slot and
    /// lends it out. Returns `Ok(None)` at a clean end of list; a list
    /// that ends mid-posting is reported as corruption. The borrow is
    /// invalidated by the next call (the [`PostingFeed`] contract).
    pub fn next_posting(&mut self) -> si_storage::Result<Option<&Posting>> {
        Ok(if self.advance()? {
            Some(&self.current)
        } else {
            None
        })
    }
}

/// Decodes one posting from the front of `bytes` **into** `slot`,
/// returning the bytes consumed; `None` when `bytes` ends mid-posting
/// (in which case `slot` holds garbage but stays structurally valid).
/// The single decode implementation behind both [`PostingCursor`]
/// (chunked, slot reused across postings — allocation-free) and
/// [`PostingIter`] (borrowed slice, fresh slot per posting). An
/// interval slot's `nodes` vector is recycled, so steady-state decode
/// never allocates.
fn decode_one_into(
    coding: Coding,
    key_nodes: usize,
    first: bool,
    prev_tid: TreeId,
    bytes: &[u8],
    slot: &mut Posting,
) -> Option<usize> {
    let mut r = varint::Reader::new(bytes);
    let delta = r.u32()?;
    let tid = if first { delta } else { prev_tid + delta };
    match coding {
        Coding::FilterBased => *slot = Posting::Tid(tid),
        Coding::RootSplit => {
            let pre = r.u32()?;
            let post = r.u32()?;
            let level = r.u32()? as u16;
            *slot = Posting::Root {
                tid,
                root: NodeVal { pre, post, level },
            };
        }
        Coding::SubtreeInterval => {
            let mut nodes = match std::mem::replace(slot, Posting::Tid(0)) {
                Posting::Occurrence { nodes, .. } => nodes,
                _ => Vec::with_capacity(key_nodes),
            };
            nodes.clear();
            let mut complete = true;
            for _ in 0..key_nodes {
                let (Some(pre), Some(post), Some(level), Some(order)) =
                    (r.u32(), r.u32(), r.u32(), r.u32())
                else {
                    complete = false;
                    break;
                };
                nodes.push((
                    NodeVal {
                        pre,
                        post,
                        level: level as u16,
                    },
                    order as u8,
                ));
            }
            // Park the vector back in the slot even on truncation, so
            // its capacity survives for the retry after a refill.
            *slot = Posting::Occurrence { tid, nodes };
            if !complete {
                return None;
            }
        }
    }
    Some(r.position())
}

/// Decodes a posting list produced by [`PostingBuilder`]. `key_nodes` is
/// the key's node count (needed by the interval coding; ignored
/// otherwise). Borrows `bytes` zero-copy; the streaming executor uses
/// [`PostingCursor`] over B+Tree value readers instead.
pub fn decode_postings(coding: Coding, key_nodes: usize, bytes: &[u8]) -> PostingIter<'_> {
    PostingIter {
        coding,
        key_nodes,
        bytes,
        pos: 0,
        tid: 0,
        first: true,
    }
}

/// Iterator over decoded [`Posting`]s of an in-memory list, decoding in
/// place without copying the list. Truncated lists end the iteration
/// early.
pub struct PostingIter<'a> {
    coding: Coding,
    key_nodes: usize,
    bytes: &'a [u8],
    pos: usize,
    tid: TreeId,
    first: bool,
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let mut posting = Posting::Tid(0);
        let used = decode_one_into(
            self.coding,
            self.key_nodes,
            self.first,
            self.tid,
            &self.bytes[self.pos..],
            &mut posting,
        )?;
        self.pos += used;
        self.tid = posting.tid();
        self.first = false;
        Some(posting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nv(pre: u32, post: u32, level: u16) -> NodeVal {
        NodeVal { pre, post, level }
    }

    #[test]
    fn filter_coding_dedups_by_tid() {
        let mut b = PostingBuilder::new(Coding::FilterBased);
        b.push(3, &[(nv(0, 5, 0), 1)]);
        b.push(3, &[(nv(2, 1, 1), 1)]);
        b.push(7, &[(nv(0, 5, 0), 1)]);
        assert_eq!(b.count(), 2);
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::FilterBased, 1, &bytes).collect();
        assert_eq!(got, vec![Posting::Tid(3), Posting::Tid(7)]);
    }

    #[test]
    fn root_split_dedups_by_tid_and_pre() {
        let mut b = PostingBuilder::new(Coding::RootSplit);
        // Two occurrences sharing a root (e.g. NP(NN) over NP with two NNs
        // would be one posting each, but the same key rooted at the same
        // NP twice collapses).
        b.push(1, &[(nv(4, 9, 2), 1), (nv(5, 7, 3), 2)]);
        b.push(1, &[(nv(4, 9, 2), 1), (nv(6, 8, 3), 2)]);
        b.push(1, &[(nv(9, 12, 2), 1), (nv(10, 11, 3), 2)]);
        b.push(2, &[(nv(0, 3, 0), 1), (nv(1, 2, 1), 2)]);
        assert_eq!(b.count(), 3);
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::RootSplit, 2, &bytes).collect();
        assert_eq!(
            got,
            vec![
                Posting::Root {
                    tid: 1,
                    root: nv(4, 9, 2)
                },
                Posting::Root {
                    tid: 1,
                    root: nv(9, 12, 2)
                },
                Posting::Root {
                    tid: 2,
                    root: nv(0, 3, 0)
                },
            ]
        );
    }

    #[test]
    fn interval_coding_keeps_every_occurrence() {
        let mut b = PostingBuilder::new(Coding::SubtreeInterval);
        let occ1 = [(nv(4, 9, 2), 1), (nv(5, 7, 3), 2)];
        let occ2 = [(nv(4, 9, 2), 1), (nv(6, 8, 3), 2)];
        b.push(1, &occ1);
        b.push(1, &occ2);
        assert_eq!(b.count(), 2);
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::SubtreeInterval, 2, &bytes).collect();
        assert_eq!(
            got,
            vec![
                Posting::Occurrence {
                    tid: 1,
                    nodes: occ1.to_vec()
                },
                Posting::Occurrence {
                    tid: 1,
                    nodes: occ2.to_vec()
                },
            ]
        );
    }

    #[test]
    fn posting_sizes_ranked_as_in_figure_8() {
        // For the same occurrences: filter <= root-split <= interval.
        let occs: Vec<(TreeId, Vec<(NodeVal, u8)>)> = (0..100u32)
            .map(|i| {
                // Three occurrences per tree with ascending root pre.
                let pre = (i % 3) * 4;
                (
                    i / 3,
                    vec![
                        (nv(pre, pre + 3, 1), 1),
                        (nv(pre + 1, pre + 1, 2), 2),
                        (nv(pre + 2, pre + 2, 2), 3),
                    ],
                )
            })
            .collect();
        let mut sizes = Vec::new();
        for coding in [
            Coding::FilterBased,
            Coding::RootSplit,
            Coding::SubtreeInterval,
        ] {
            let mut b = PostingBuilder::new(coding);
            for (tid, nodes) in &occs {
                b.push(*tid, nodes);
            }
            sizes.push(b.finish().len());
        }
        assert!(sizes[0] < sizes[1], "filter < root-split: {sizes:?}");
        assert!(sizes[1] < sizes[2], "root-split < interval: {sizes:?}");
    }

    #[test]
    fn node_val_relations() {
        let root = nv(0, 10, 0);
        let child = nv(1, 4, 1);
        let grandchild = nv(2, 3, 2);
        assert!(root.is_ancestor_of(&child));
        assert!(root.is_ancestor_of(&grandchild));
        assert!(root.is_parent_of(&child));
        assert!(!root.is_parent_of(&grandchild));
        assert!(!child.is_ancestor_of(&root));
        assert!(!child.is_ancestor_of(&child));
    }

    #[test]
    fn empty_list_decodes_empty() {
        assert_eq!(decode_postings(Coding::FilterBased, 1, &[]).count(), 0);
        assert_eq!(decode_postings(Coding::RootSplit, 1, &[]).count(), 0);
    }

    /// Source that drips bytes in fixed-size chunks, simulating page
    /// boundaries falling mid-varint and mid-posting.
    struct DripSource {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl ChunkSource for DripSource {
        fn read_chunk(&mut self, out: &mut Vec<u8>) -> si_storage::Result<usize> {
            let end = (self.pos + self.chunk).min(self.bytes.len());
            let n = end - self.pos;
            out.extend_from_slice(&self.bytes[self.pos..end]);
            self.pos = end;
            Ok(n)
        }
    }

    fn all_codings_sample() -> Vec<(Coding, usize, Vec<u8>, Vec<Posting>)> {
        let mut out = Vec::new();
        for coding in Coding::ALL {
            let mut b = PostingBuilder::new(coding);
            for tid in [0u32, 1, 5, 5, 1_000_000, 4_000_000_000] {
                b.push(
                    tid,
                    &[
                        (nv(tid % 90, tid % 90 + 3, 2), 1),
                        (nv(tid % 90 + 1, tid % 90 + 1, 3), 2),
                    ],
                );
            }
            let bytes = b.finish();
            let want: Vec<Posting> = decode_postings(coding, 2, &bytes).collect();
            out.push((coding, 2, bytes, want));
        }
        out
    }

    #[test]
    fn cursor_preserves_delta_state_across_chunk_boundaries() {
        for (coding, key_nodes, bytes, want) in all_codings_sample() {
            for chunk in [1usize, 2, 3, 5, 7, 4096] {
                let mut cursor = PostingCursor::new(
                    coding,
                    key_nodes,
                    DripSource {
                        bytes: bytes.clone(),
                        pos: 0,
                        chunk,
                    },
                );
                let mut got = Vec::new();
                while let Some(p) = cursor.next_posting().unwrap() {
                    got.push(p.clone());
                }
                assert_eq!(got, want, "{coding} chunk={chunk}");
                assert_eq!(cursor.decoded(), want.len());
                // Resident window never exceeds one chunk plus the
                // partial posting carried over the boundary.
                assert!(
                    cursor.peak_buffer_bytes() <= chunk + 40,
                    "{coding} chunk={chunk}: peak {}",
                    cursor.peak_buffer_bytes()
                );
            }
        }
    }

    #[test]
    fn cursor_reuses_the_occurrence_buffer_across_postings() {
        // The zero-copy pipeline's decode side: after the first
        // interval posting, the cursor's `nodes` vector is recycled —
        // the lent borrows all point into the same allocation, so
        // steady-state decoding allocates nothing per posting.
        let mut b = PostingBuilder::new(Coding::SubtreeInterval);
        for tid in 0u32..50 {
            b.push(tid, &[(nv(1, 4, 1), 1), (nv(2, 3, 2), 2)]);
        }
        let bytes = b.finish();
        let mut cursor = PostingCursor::new(Coding::SubtreeInterval, 2, SliceSource::new(&bytes));
        let mut ptrs = Vec::new();
        while let Some(p) = cursor.next_posting().unwrap() {
            let Posting::Occurrence { nodes, .. } = p else {
                panic!("interval cursor yields occurrences");
            };
            ptrs.push(nodes.as_ptr());
        }
        assert_eq!(ptrs.len(), 50);
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "nodes buffer must be reused across postings"
        );
    }

    #[test]
    fn cursor_reports_truncated_list() {
        let mut b = PostingBuilder::new(Coding::RootSplit);
        b.push(3, &[(nv(1, 4, 1), 1)]);
        b.push(9, &[(nv(2, 3, 2), 1)]);
        let bytes = b.finish();
        let cut = &bytes[..bytes.len() - 1];
        let mut cursor = PostingCursor::new(Coding::RootSplit, 1, SliceSource::new(cut));
        assert!(cursor.next_posting().unwrap().is_some());
        assert!(
            cursor.next_posting().is_err(),
            "mid-posting end is corruption"
        );
    }

    #[test]
    fn large_tid_gaps_round_trip() {
        let mut b = PostingBuilder::new(Coding::FilterBased);
        for tid in [0u32, 1, 1_000_000, 4_000_000_000] {
            b.push(tid, &[(nv(0, 0, 0), 1)]);
        }
        let bytes = b.finish();
        let got: Vec<Posting> = decode_postings(Coding::FilterBased, 1, &bytes).collect();
        assert_eq!(
            got,
            vec![
                Posting::Tid(0),
                Posting::Tid(1),
                Posting::Tid(1_000_000),
                Posting::Tid(4_000_000_000)
            ]
        );
    }
}
