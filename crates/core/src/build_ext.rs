//! Memory-bounded (external-merge) index construction.
//!
//! The default [`crate::SubtreeIndex::build`] aggregates all posting
//! lists in memory — fine up to a few hundred thousand sentences, but
//! the paper's largest corpus (10⁶ sentences, Figures 2 and 13) deserves
//! a bounded-memory path. This module implements the classic external
//! inverted-index build:
//!
//! 1. aggregate postings per key until the in-memory budget is hit;
//! 2. flush a **sorted run** to disk (`run-N.tmp`);
//! 3. k-way **merge** the runs in key order, stitching each key's
//!    posting chunks back into one delta-coherent list;
//! 4. stream the merged pairs straight into the B+Tree bulk loader.
//!
//! Because trees are processed in ascending tid order, the chunks of one
//! key across runs cover disjoint, increasing tid ranges; stitching only
//! needs to rewrite the first tid delta of each later chunk.
//!
//! Run-entry layout (all varints except raw bytes):
//!
//! ```text
//! key_len key count distinct_tids first_tid last_tid bytes_len bytes
//! ```
//!
//! Each chunk carries enough to reconstruct the merged key's
//! [`si_storage::KeyStats`] without re-decoding postings: chunks cover
//! disjoint ascending tid ranges, so counts and distinct-tid counts
//! add, and the merged range is `[first chunk's first, last chunk's
//! last]`. [`RunMerger::next_key`] returns those stats alongside the
//! stitched bytes so the external build can write the stats segment in
//! the same streaming pass that feeds the B+Tree bulk loader.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use si_parsetree::{varint, ParseTree, TreeId};
use si_storage::{Result, StorageError};

use crate::coding::{Coding, NodeVal, PostingBuilder};
use crate::extract::for_each_subtree;

/// Budget knob for [`build_runs`]: flush a run when the buffered posting
/// bytes exceed this.
#[derive(Debug, Clone, Copy)]
pub struct ExternalBuildConfig {
    /// Buffered posting bytes that trigger a run flush. The default
    /// (256 MiB) keeps the build comfortably inside small-machine RAM
    /// even at the paper's 10⁶-sentence scale.
    pub run_budget_bytes: usize,
}

impl Default for ExternalBuildConfig {
    fn default() -> Self {
        Self {
            run_budget_bytes: 256 << 20,
        }
    }
}

/// A posting-list fragment of one key within one run.
struct Chunk {
    count: u64,
    distinct_tids: u64,
    first_tid: TreeId,
    last_tid: TreeId,
    bytes: Vec<u8>,
}

/// Tracks a [`PostingBuilder`] plus the tid span it covers.
struct OpenList {
    builder: PostingBuilder,
    first_tid: TreeId,
    last_tid: TreeId,
}

/// Phase 1+2: extracts subtrees from `trees`, spilling sorted runs into
/// `tmp_dir`. Returns the run paths.
pub fn build_runs(
    tmp_dir: &Path,
    trees: &[ParseTree],
    mss: usize,
    coding: Coding,
    config: ExternalBuildConfig,
) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(tmp_dir)?;
    let mut runs: Vec<PathBuf> = Vec::new();
    let mut lists: HashMap<Vec<u8>, OpenList> = HashMap::new();
    let mut buffered = 0usize;
    let mut occurrence: Vec<(NodeVal, u8)> = Vec::new();

    let flush = |lists: &mut HashMap<Vec<u8>, OpenList>, runs: &mut Vec<PathBuf>| -> Result<()> {
        if lists.is_empty() {
            return Ok(());
        }
        let path = tmp_dir.join(format!("run-{}.tmp", runs.len()));
        let mut entries: Vec<(Vec<u8>, OpenList)> = lists.drain().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut w = BufWriter::new(File::create(&path)?);
        let mut scratch = Vec::new();
        for (key, open) in entries {
            scratch.clear();
            varint::write_u64(&mut scratch, key.len() as u64);
            scratch.extend_from_slice(&key);
            varint::write_u64(&mut scratch, open.builder.count());
            varint::write_u64(&mut scratch, open.builder.distinct_tids());
            varint::write_u32(&mut scratch, open.first_tid);
            varint::write_u32(&mut scratch, open.last_tid);
            let bytes = open.builder.finish();
            varint::write_u64(&mut scratch, bytes.len() as u64);
            w.write_all(&scratch)?;
            w.write_all(&bytes)?;
        }
        w.flush()?;
        runs.push(path);
        Ok(())
    };

    for (tid, tree) in trees.iter().enumerate() {
        let tid = tid as TreeId;
        let mut added = 0usize;
        for_each_subtree(tree, mss, |sub| {
            occurrence.clear();
            occurrence.extend(sub.nodes.iter().map(|&n| {
                (
                    NodeVal {
                        pre: tree.pre(n),
                        post: tree.post(n),
                        level: tree.level(n),
                    },
                    0u8,
                )
            }));
            let mut pres: Vec<u32> = occurrence.iter().map(|(v, _)| v.pre).collect();
            pres.sort_unstable();
            for (v, order) in occurrence.iter_mut() {
                *order = pres.binary_search(&v.pre).expect("own pre") as u8 + 1;
            }
            let entry = lists.entry(sub.key.clone()).or_insert_with(|| OpenList {
                builder: PostingBuilder::new(coding),
                first_tid: tid,
                last_tid: tid,
            });
            let before = entry.builder.byte_len();
            entry.builder.push(tid, &occurrence);
            entry.last_tid = tid;
            added += entry.builder.byte_len() - before;
        });
        buffered += added;
        // Flush only at tree boundaries so every key chunk covers a
        // whole-tid range and chunks never interleave.
        if buffered >= config.run_budget_bytes {
            flush(&mut lists, &mut runs)?;
            buffered = 0;
        }
    }
    flush(&mut lists, &mut runs)?;
    Ok(runs)
}

/// A sequential reader over one run file.
struct RunReader {
    r: BufReader<File>,
    /// Look-ahead entry.
    head: Option<(Vec<u8>, Chunk)>,
}

impl RunReader {
    fn open(path: &Path) -> Result<Self> {
        let mut reader = Self {
            r: BufReader::new(File::open(path)?),
            head: None,
        };
        reader.advance()?;
        Ok(reader)
    }

    fn advance(&mut self) -> Result<()> {
        self.head = self.read_entry()?;
        Ok(())
    }

    fn read_varint(&mut self) -> Result<Option<u64>> {
        let mut v = 0u64;
        let mut shift = 0u32;
        let mut first = true;
        loop {
            let mut byte = [0u8; 1];
            match self.r.read(&mut byte)? {
                0 if first => return Ok(None),
                0 => return Err(StorageError::Corrupt("run: truncated varint".into())),
                _ => {}
            }
            first = false;
            v |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(v));
            }
            shift += 7;
            if shift > 63 {
                return Err(StorageError::Corrupt("run: varint overflow".into()));
            }
        }
    }

    fn read_entry(&mut self) -> Result<Option<(Vec<u8>, Chunk)>> {
        let Some(key_len) = self.read_varint()? else {
            return Ok(None);
        };
        let mut key = vec![0u8; key_len as usize];
        self.r.read_exact(&mut key)?;
        let count = self
            .read_varint()?
            .ok_or_else(|| StorageError::Corrupt("run: count".into()))?;
        let distinct_tids = self
            .read_varint()?
            .ok_or_else(|| StorageError::Corrupt("run: distinct tids".into()))?;
        let first_tid = self
            .read_varint()?
            .ok_or_else(|| StorageError::Corrupt("run: first_tid".into()))?
            as TreeId;
        let last_tid = self
            .read_varint()?
            .ok_or_else(|| StorageError::Corrupt("run: last_tid".into()))?
            as TreeId;
        let len = self
            .read_varint()?
            .ok_or_else(|| StorageError::Corrupt("run: len".into()))?;
        let mut bytes = vec![0u8; len as usize];
        self.r.read_exact(&mut bytes)?;
        Ok(Some((
            key,
            Chunk {
                count,
                distinct_tids,
                first_tid,
                last_tid,
                bytes,
            },
        )))
    }
}

/// One merged entry: `(key, posting bytes, list statistics)`.
pub type MergedEntry = (Vec<u8>, Vec<u8>, si_storage::KeyStats);

/// Phase 3: a k-way merge over run files yielding
/// `(key, posting bytes, list statistics)` in ascending key order.
pub struct RunMerger {
    readers: Vec<RunReader>,
}

impl RunMerger {
    /// Opens all runs.
    pub fn open(runs: &[PathBuf]) -> Result<Self> {
        let readers = runs
            .iter()
            .map(|p| RunReader::open(p))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { readers })
    }

    /// Pulls the next merged key. Chunks are stitched in ascending
    /// `first_tid` order with the leading delta rewritten.
    pub fn next_key(&mut self) -> Result<Option<MergedEntry>> {
        // Smallest key among reader heads.
        let min_key: Option<Vec<u8>> = self
            .readers
            .iter()
            .filter_map(|r| r.head.as_ref().map(|(k, _)| k.clone()))
            .min();
        let Some(key) = min_key else {
            return Ok(None);
        };
        let mut chunks: Vec<Chunk> = Vec::new();
        for reader in &mut self.readers {
            if reader.head.as_ref().is_some_and(|(k, _)| *k == key) {
                let (_, chunk) = reader.head.take().expect("checked");
                chunks.push(chunk);
                reader.advance()?;
            }
        }
        chunks.sort_by_key(|c| c.first_tid);
        // Tid ranges must be disjoint (runs flush at tree boundaries).
        for w in chunks.windows(2) {
            if w[0].last_tid >= w[1].first_tid {
                return Err(StorageError::Corrupt(
                    "run chunks overlap in tid range".into(),
                ));
            }
        }
        let mut count = 0u64;
        let mut distinct_tids = 0u64;
        let first_tid = chunks.first().map_or(0, |c| c.first_tid);
        let mut bytes: Vec<u8> = Vec::new();
        let mut last_tid: Option<TreeId> = None;
        for chunk in chunks {
            count += chunk.count;
            distinct_tids += chunk.distinct_tids;
            match last_tid {
                None => bytes.extend_from_slice(&chunk.bytes),
                Some(prev) => {
                    // Rewrite the chunk's leading absolute tid as a delta
                    // from the previous chunk's last tid.
                    let (abs, used) = varint::read_u32(&chunk.bytes)
                        .ok_or_else(|| StorageError::Corrupt("chunk head".into()))?;
                    varint::write_u32(&mut bytes, abs - prev);
                    bytes.extend_from_slice(&chunk.bytes[used..]);
                }
            }
            last_tid = Some(chunk.last_tid);
        }
        let stats = si_storage::KeyStats {
            postings: count,
            distinct_tids,
            first_tid,
            last_tid: last_tid.unwrap_or(0),
            bytes: bytes.len() as u64,
            exact: true,
            ..si_storage::KeyStats::default()
        };
        Ok(Some((key, bytes, stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_corpus::GeneratorConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("si-extbuild-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tiny_budget_produces_many_runs_and_merges_cleanly() {
        let corpus = GeneratorConfig::default().with_seed(21).generate(60);
        for coding in Coding::ALL {
            let dir = tmp(&format!("runs-{coding:?}"));
            let runs = build_runs(
                &dir,
                corpus.trees(),
                3,
                coding,
                ExternalBuildConfig {
                    run_budget_bytes: 1 << 10, // 1 KiB: force many runs
                },
            )
            .unwrap();
            assert!(runs.len() > 2, "expected multiple runs, got {}", runs.len());
            // Merge and compare against the in-memory aggregation.
            let mut merger = RunMerger::open(&runs).unwrap();
            let mut merged: Vec<MergedEntry> = Vec::new();
            while let Some(entry) = merger.next_key().unwrap() {
                merged.push(entry);
            }
            // Keys ascend strictly.
            for w in merged.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            // Reference: single-run build (unbounded budget).
            let dir2 = tmp(&format!("ref-{coding:?}"));
            let ref_runs = build_runs(
                &dir2,
                corpus.trees(),
                3,
                coding,
                ExternalBuildConfig::default(),
            )
            .unwrap();
            assert_eq!(ref_runs.len(), 1);
            let mut ref_merger = RunMerger::open(&ref_runs).unwrap();
            let mut reference: Vec<MergedEntry> = Vec::new();
            while let Some(entry) = ref_merger.next_key().unwrap() {
                reference.push(entry);
            }
            assert_eq!(merged.len(), reference.len(), "{coding:?} key counts");
            for (m, r) in merged.iter().zip(&reference) {
                assert_eq!(m.0, r.0, "{coding:?} key order");
                assert_eq!(m.2, r.2, "{coding:?} merged stats");
                assert_eq!(m.1, r.1, "{coding:?} stitched bytes");
            }
            std::fs::remove_dir_all(&dir).ok();
            std::fs::remove_dir_all(&dir2).ok();
        }
    }

    #[test]
    fn empty_corpus_yields_no_runs() {
        let dir = tmp("empty");
        let runs = build_runs(
            &dir,
            &[],
            3,
            Coding::RootSplit,
            ExternalBuildConfig::default(),
        )
        .unwrap();
        assert!(runs.is_empty());
        let mut merger = RunMerger::open(&runs).unwrap();
        assert!(merger.next_key().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
