//! Subtree Index construction and the on-disk layout (§4.2, §6.1–6.2).
//!
//! An index directory holds
//!
//! ```text
//! <dir>/corpus/      the data file, offset index and labels (CorpusStore)
//! <dir>/index.bt     the B+Tree: canonical key -> posting list
//! <dir>/si.meta      mss, coding scheme, build statistics
//! ```
//!
//! Construction streams every tree through the subtree enumeration,
//! aggregates posting lists per canonical key in memory, then bulk-loads
//! the B+Tree in key order — the standard inverted-index build the
//! paper's Figure 10 times.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use si_parsetree::{varint, LabelInterner, ParseTree, TreeId};
use si_query::Query;
use si_storage::{BTree, CorpusStore, Result, StorageError};

use crate::canonical::key_size;
use crate::coding::{decode_postings, Coding, NodeVal, Posting, PostingBuilder, PostingCursor};
use crate::eval::EvalResult;
use crate::exec::ExecMode;
use crate::extract::for_each_subtree;
use crate::join::JoinAlgo;

/// Build-time parameters of a [`SubtreeIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOptions {
    /// Maximum subtree size indexed (the paper's `mss`, 1–5 in the
    /// evaluation; `mss = 1` degenerates to the node approach / LPath).
    pub mss: usize,
    /// Posting-list coding scheme.
    pub coding: Coding,
}

impl IndexOptions {
    /// Creates options; `mss` must be in `1..=8`.
    ///
    /// # Panics
    /// Panics on `mss` outside `1..=8` (the paper caps at 5; Lemma 3's
    /// FFD optimality holds to 6, and 8 is a hard sanity bound).
    pub fn new(mss: usize, coding: Coding) -> Self {
        assert!((1..=8).contains(&mss), "mss must be in 1..=8, got {mss}");
        Self { mss, coding }
    }
}

/// Size and timing statistics of a built index (Figures 8–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of index keys (unique subtrees), Figure 2.
    pub keys: u64,
    /// Total postings stored (after coding-specific dedup), Figure 9.
    pub postings: u64,
    /// Total bytes of the B+Tree file, Figure 8.
    pub index_bytes: u64,
    /// Bytes of posting-list payload (excluding B+Tree structure).
    pub posting_bytes: u64,
    /// Size of the data file of flattened trees.
    pub data_bytes: u64,
    /// Wall-clock build time in seconds, Figure 10.
    pub build_seconds: f64,
}

/// A built Subtree Index over a corpus of parse trees.
pub struct SubtreeIndex {
    dir: PathBuf,
    options: IndexOptions,
    btree: BTree,
    store: CorpusStore,
    stats: IndexStats,
    join_algo: JoinAlgo,
    exec_mode: ExecMode,
    /// Whether posting-list values carry the per-list skip header
    /// (`si.meta` magic `SIMETA2`). Pre-skip indexes (`SIMETA1`) decode
    /// the bare payload and simply never seek.
    skip_headers: bool,
}

/// Wraps one key's finished payload into the stored value (skip header
/// then the byte-identical payload) and folds the resulting
/// histogram/length into its stats entry — the shared tail of all
/// three build paths.
fn finalize_list(
    coding: Coding,
    key: &[u8],
    payload: &[u8],
    key_stats: &mut si_storage::KeyStats,
) -> Result<Vec<u8>> {
    let m = key_size(key).ok_or_else(|| StorageError::Corrupt("bad canonical key".into()))?;
    let (value, hist) = crate::coding::build_list_value(
        coding,
        m,
        payload,
        crate::coding::DEFAULT_RESTART_INTERVAL,
        key_stats.first_tid,
        key_stats.last_tid,
    )?;
    key_stats.tid_hist = hist;
    key_stats.bytes = value.len() as u64;
    Ok(value)
}

impl SubtreeIndex {
    /// Builds an index over `trees` at `dir` (created/overwritten).
    ///
    /// `interner` must be the interner the trees were built with; it is
    /// persisted alongside the corpus so queries can resolve labels.
    pub fn build(
        dir: &Path,
        trees: &[ParseTree],
        interner: &LabelInterner,
        options: IndexOptions,
    ) -> Result<Self> {
        let started = Instant::now();
        std::fs::create_dir_all(dir)?;
        let store = CorpusStore::build(&dir.join("corpus"), trees.iter(), interner)?;

        // Aggregate posting lists per canonical key. The occurrence and
        // rank buffers are reused across the (many) occurrences and the
        // key is only cloned when first seen — this loop dominates the
        // build, so it must stay allocation-free on the hot path.
        let mut lists: HashMap<Vec<u8>, PostingBuilder> = HashMap::new();
        let mut occurrence: Vec<(NodeVal, u8)> = Vec::new();
        let mut pres: Vec<u32> = Vec::new();
        for (tid, tree) in trees.iter().enumerate() {
            let tid = tid as TreeId;
            for_each_subtree(tree, options.mss, |sub| {
                occurrence.clear();
                occurrence.extend(sub.nodes.iter().map(|&n| {
                    (
                        NodeVal {
                            pre: tree.pre(n),
                            post: tree.post(n),
                            level: tree.level(n),
                        },
                        0u8,
                    )
                }));
                // `order`: the node's pre-order rank within the
                // occurrence (1-based), §4.4.2.
                pres.clear();
                pres.extend(occurrence.iter().map(|(v, _)| v.pre));
                pres.sort_unstable();
                for (v, order) in occurrence.iter_mut() {
                    *order = pres.binary_search(&v.pre).expect("own pre") as u8 + 1;
                }
                match lists.get_mut(sub.key.as_slice()) {
                    Some(builder) => builder.push(tid, &occurrence),
                    None => {
                        let mut builder = PostingBuilder::new(options.coding);
                        builder.push(tid, &occurrence);
                        lists.insert(sub.key.clone(), builder);
                    }
                }
            });
        }

        // Bulk-load the B+Tree in key order, then persist the per-key
        // statistics the builders tracked as the stats segment.
        let mut postings = 0u64;
        let mut posting_bytes = 0u64;
        let mut entries: Vec<(Vec<u8>, Vec<u8>, si_storage::KeyStats)> =
            Vec::with_capacity(lists.len());
        for (key, builder) in lists {
            postings += builder.count();
            posting_bytes += builder.byte_len() as u64;
            let mut key_stats = builder.key_stats();
            let payload = builder.finish();
            let value = finalize_list(options.coding, &key, &payload, &mut key_stats)?;
            entries.push((key, value, key_stats));
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let keys = entries.len() as u64;
        let stats_entries: Vec<(Vec<u8>, si_storage::KeyStats)> =
            entries.iter().map(|(k, _, s)| (k.clone(), *s)).collect();
        let mut btree = BTree::bulk_load(
            &dir.join("index.bt"),
            entries.into_iter().map(|(k, v, _)| (k, v)),
        )?;
        btree.write_stats_segment(stats_entries)?;
        btree.flush()?;

        let stats = IndexStats {
            keys,
            postings,
            index_bytes: btree.stats().file_bytes,
            posting_bytes,
            data_bytes: store.data_bytes(),
            build_seconds: started.elapsed().as_secs_f64(),
        };
        let index = Self {
            dir: dir.to_path_buf(),
            options,
            btree,
            store,
            stats,
            join_algo: JoinAlgo::Mpmgjn,
            exec_mode: ExecMode::Streaming,
            skip_headers: true,
        };
        index.write_meta()?;
        Ok(index)
    }

    /// Builds an index using `threads` worker threads for the subtree
    /// enumeration phase (the CPU-bound part of construction). Each
    /// worker aggregates a contiguous tid range; the per-key posting
    /// fragments are then stitched in tid order, so the result is
    /// byte-identical to the sequential [`SubtreeIndex::build`].
    pub fn build_parallel(
        dir: &Path,
        trees: &[ParseTree],
        interner: &LabelInterner,
        options: IndexOptions,
        threads: usize,
    ) -> Result<Self> {
        let threads = threads.max(1).min(trees.len().max(1));
        let started = Instant::now();
        std::fs::create_dir_all(dir)?;
        let store = CorpusStore::build(&dir.join("corpus"), trees.iter(), interner)?;

        // Partition trees into contiguous tid ranges, one per worker.
        let chunk = trees.len().div_ceil(threads);
        type Fragment = (TreeId, TreeId, PostingBuilder); // first, last, postings
        let mut partials: Vec<HashMap<Vec<u8>, Fragment>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, slice) in trees.chunks(chunk.max(1)).enumerate() {
                let base = (w * chunk.max(1)) as TreeId;
                handles.push(scope.spawn(move || {
                    let mut lists: HashMap<Vec<u8>, Fragment> = HashMap::new();
                    let mut occurrence: Vec<(NodeVal, u8)> = Vec::new();
                    let mut pres: Vec<u32> = Vec::new();
                    for (off, tree) in slice.iter().enumerate() {
                        let tid = base + off as TreeId;
                        for_each_subtree(tree, options.mss, |sub| {
                            occurrence.clear();
                            occurrence.extend(sub.nodes.iter().map(|&n| {
                                (
                                    NodeVal {
                                        pre: tree.pre(n),
                                        post: tree.post(n),
                                        level: tree.level(n),
                                    },
                                    0u8,
                                )
                            }));
                            pres.clear();
                            pres.extend(occurrence.iter().map(|(v, _)| v.pre));
                            pres.sort_unstable();
                            for (v, order) in occurrence.iter_mut() {
                                *order = pres.binary_search(&v.pre).expect("own pre") as u8 + 1;
                            }
                            match lists.get_mut(sub.key.as_slice()) {
                                Some(entry) => {
                                    entry.2.push(tid, &occurrence);
                                    entry.1 = tid;
                                }
                                None => {
                                    let mut builder = PostingBuilder::new(options.coding);
                                    builder.push(tid, &occurrence);
                                    lists.insert(sub.key.clone(), (tid, tid, builder));
                                }
                            }
                        });
                    }
                    lists
                }));
            }
            for h in handles {
                partials.push(h.join().expect("worker panicked"));
            }
        });

        // Stitch fragments per key in tid order (workers cover disjoint,
        // ascending tid ranges in `partials` order). Posting counts,
        // distinct-tid counts and tid ranges stitch the same way the
        // bytes do: disjoint ranges add, the merged range spans from the
        // first fragment's first tid to the last fragment's last tid.
        #[derive(Default)]
        struct MergedList {
            bytes: Vec<u8>,
            count: u64,
            distinct_tids: u64,
            first_tid: TreeId,
            last_tid: Option<TreeId>,
        }
        let mut merged: HashMap<Vec<u8>, MergedList> = HashMap::new();
        for partial in partials {
            for (key, (first_tid, last_tid, builder)) in partial {
                let count = builder.count();
                let distinct = builder.distinct_tids();
                let bytes = builder.finish();
                let entry = merged.entry(key).or_default();
                entry.count += count;
                entry.distinct_tids += distinct;
                match entry.last_tid {
                    None => {
                        entry.first_tid = first_tid;
                        entry.bytes.extend_from_slice(&bytes);
                    }
                    Some(prev_last) => {
                        // Rewrite the fragment's leading absolute tid as a
                        // delta from the previous fragment's last tid.
                        let (abs, used) = varint::read_u32(&bytes)
                            .ok_or_else(|| StorageError::Corrupt("fragment head".into()))?;
                        debug_assert!(abs == first_tid);
                        varint::write_u32(&mut entry.bytes, abs - prev_last);
                        entry.bytes.extend_from_slice(&bytes[used..]);
                    }
                }
                entry.last_tid = Some(last_tid);
            }
        }

        let mut postings = 0u64;
        let mut posting_bytes = 0u64;
        let mut entries: Vec<(Vec<u8>, Vec<u8>, si_storage::KeyStats)> =
            Vec::with_capacity(merged.len());
        for (key, list) in merged {
            postings += list.count;
            posting_bytes += list.bytes.len() as u64;
            let mut key_stats = si_storage::KeyStats {
                postings: list.count,
                distinct_tids: list.distinct_tids,
                first_tid: list.first_tid,
                last_tid: list.last_tid.unwrap_or(0),
                bytes: list.bytes.len() as u64,
                exact: true,
                ..si_storage::KeyStats::default()
            };
            let value = finalize_list(options.coding, &key, &list.bytes, &mut key_stats)?;
            entries.push((key, value, key_stats));
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let keys = entries.len() as u64;
        let stats_entries: Vec<(Vec<u8>, si_storage::KeyStats)> =
            entries.iter().map(|(k, _, s)| (k.clone(), *s)).collect();
        let mut btree = BTree::bulk_load(
            &dir.join("index.bt"),
            entries.into_iter().map(|(k, v, _)| (k, v)),
        )?;
        btree.write_stats_segment(stats_entries)?;
        btree.flush()?;

        let stats = IndexStats {
            keys,
            postings,
            index_bytes: btree.stats().file_bytes,
            posting_bytes,
            data_bytes: store.data_bytes(),
            build_seconds: started.elapsed().as_secs_f64(),
        };
        let index = Self {
            dir: dir.to_path_buf(),
            options,
            btree,
            store,
            stats,
            join_algo: JoinAlgo::Mpmgjn,
            exec_mode: ExecMode::Streaming,
            skip_headers: true,
        };
        index.write_meta()?;
        Ok(index)
    }

    /// Builds an index with bounded memory: posting lists are spilled to
    /// sorted runs under `<dir>/tmp` and k-way merged into the B+Tree
    /// bulk loader ([`crate::build_ext`]). Produces byte-identical
    /// results to [`SubtreeIndex::build`]; use it for corpora whose
    /// posting volume exceeds RAM (the paper's 10⁶-sentence points).
    pub fn build_external(
        dir: &Path,
        trees: &[ParseTree],
        interner: &LabelInterner,
        options: IndexOptions,
        config: crate::build_ext::ExternalBuildConfig,
    ) -> Result<Self> {
        use std::cell::RefCell;

        let started = Instant::now();
        std::fs::create_dir_all(dir)?;
        let store = CorpusStore::build(&dir.join("corpus"), trees.iter(), interner)?;
        let tmp = dir.join("tmp");
        let runs = crate::build_ext::build_runs(&tmp, trees, options.mss, options.coding, config)?;
        let mut merger = crate::build_ext::RunMerger::open(&runs)?;

        let keys = RefCell::new(0u64);
        let postings = RefCell::new(0u64);
        let posting_bytes = RefCell::new(0u64);
        // Merged keys arrive in ascending order, so the stats entries
        // accumulate pre-sorted while the same pass feeds the bulk
        // loader.
        let stats_entries: RefCell<Vec<(Vec<u8>, si_storage::KeyStats)>> = RefCell::new(Vec::new());
        let error: RefCell<Option<StorageError>> = RefCell::new(None);
        let pairs = std::iter::from_fn(|| match merger.next_key() {
            Ok(Some((key, bytes, mut key_stats))) => {
                *keys.borrow_mut() += 1;
                *postings.borrow_mut() += key_stats.postings;
                *posting_bytes.borrow_mut() += bytes.len() as u64;
                match finalize_list(options.coding, &key, &bytes, &mut key_stats) {
                    Ok(value) => {
                        stats_entries.borrow_mut().push((key.clone(), key_stats));
                        Some((key, value))
                    }
                    Err(e) => {
                        *error.borrow_mut() = Some(e);
                        None
                    }
                }
            }
            Ok(None) => None,
            Err(e) => {
                *error.borrow_mut() = Some(e);
                None
            }
        });
        let mut btree = BTree::bulk_load(&dir.join("index.bt"), pairs)?;
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        btree.write_stats_segment(stats_entries.into_inner())?;
        btree.flush()?;
        std::fs::remove_dir_all(&tmp).ok();

        let stats = IndexStats {
            keys: keys.into_inner(),
            postings: postings.into_inner(),
            index_bytes: btree.stats().file_bytes,
            posting_bytes: posting_bytes.into_inner(),
            data_bytes: store.data_bytes(),
            build_seconds: started.elapsed().as_secs_f64(),
        };
        let index = Self {
            dir: dir.to_path_buf(),
            options,
            btree,
            store,
            stats,
            join_algo: JoinAlgo::Mpmgjn,
            exec_mode: ExecMode::Streaming,
            skip_headers: true,
        };
        index.write_meta()?;
        Ok(index)
    }

    /// Opens an existing index directory. Read-only opens prefer the
    /// mmap-backed pager (borrowed, latch-free page reads) and fall back
    /// to the buffered pager transparently.
    pub fn open(dir: &Path) -> Result<Self> {
        let meta = std::fs::read(dir.join("si.meta"))?;
        let (options, stats, skip_headers) =
            decode_meta(&meta).ok_or_else(|| StorageError::Corrupt("si.meta".into()))?;
        let btree = BTree::open_readonly(&dir.join("index.bt"))?;
        let store = CorpusStore::open(&dir.join("corpus"))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            btree,
            store,
            stats,
            join_algo: JoinAlgo::Mpmgjn,
            exec_mode: ExecMode::Streaming,
            skip_headers,
        })
    }

    /// Opens an existing index directory on the buffered (LRU) pager
    /// even where a read-only mmap is available. Each open starts with
    /// an empty page cache, which is what the prefetch bench's
    /// cold-cache arm needs per repetition; production opens should
    /// prefer [`SubtreeIndex::open`].
    pub fn open_buffered(dir: &Path) -> Result<Self> {
        let meta = std::fs::read(dir.join("si.meta"))?;
        let (options, stats, skip_headers) =
            decode_meta(&meta).ok_or_else(|| StorageError::Corrupt("si.meta".into()))?;
        let btree = BTree::open(&dir.join("index.bt"))?;
        let store = CorpusStore::open(&dir.join("corpus"))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            stats,
            btree,
            store,
            join_algo: JoinAlgo::Mpmgjn,
            exec_mode: ExecMode::Streaming,
            skip_headers,
        })
    }

    /// Whether stored posting lists carry skip headers (restart-point
    /// tables). Pre-skip index files answer `false`; cursors over them
    /// never seek but return identical postings.
    pub fn has_skip_headers(&self) -> bool {
        self.skip_headers
    }

    /// Whether the B+Tree is served from an mmap-backed read-only pager
    /// (a read-only open that mapped cleanly) rather than the buffered
    /// pager. Purely informational — reads are byte-identical either way.
    pub fn is_mapped(&self) -> bool {
        self.btree.is_mapped()
    }

    /// The build options.
    pub fn options(&self) -> IndexOptions {
        self.options
    }

    /// Build statistics (sizes, posting counts, timing).
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The index directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The corpus backing this index.
    pub fn store(&self) -> &CorpusStore {
        &self.store
    }

    /// A copy of the corpus label interner (parse queries against this
    /// so label ids line up; unknown labels simply produce no matches).
    pub fn interner(&self) -> LabelInterner {
        self.store.interner().clone()
    }

    /// Selects the structural-join algorithm (default MPMGJN).
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        self.join_algo = algo;
    }

    /// The configured structural-join algorithm.
    pub fn join_algo(&self) -> JoinAlgo {
        self.join_algo
    }

    /// Selects the query executor (default [`ExecMode::Streaming`]).
    /// The materializing evaluator is retained as the equivalence
    /// oracle and the bench ablation's baseline.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The configured query executor.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Evaluates `query`, returning the distinct `(tid, pre)` pairs the
    /// query root maps to, plus evaluation statistics. Dispatches to the
    /// streaming pipeline ([`crate::exec`]) or the legacy materializing
    /// evaluator ([`crate::eval`]) per [`SubtreeIndex::exec_mode`].
    pub fn evaluate(&self, query: &Query) -> Result<EvalResult> {
        self.evaluate_with(query, &crate::exec::ExecContext::default())
    }

    /// [`SubtreeIndex::evaluate`] with explicit execution resources —
    /// the query service passes its block cache and batch-shared scans
    /// here (the materializing oracle ignores them). Pager counter
    /// deltas are folded into the returned stats as **thread-local**
    /// snapshots ([`si_storage::thread_counters`]): a query evaluates
    /// entirely on the calling thread, so the delta is exactly this
    /// query's traffic even while other service workers hammer the same
    /// pager concurrently.
    pub fn evaluate_with(
        &self,
        query: &Query,
        ctx: &crate::exec::ExecContext<'_>,
    ) -> Result<EvalResult> {
        let before = si_storage::thread_counters();
        let pf_before = si_storage::thread_prefetch_counters();
        let mut result = match self.exec_mode {
            ExecMode::Streaming => crate::exec::evaluate_streaming_with(self, query, ctx),
            ExecMode::Materialized => crate::eval::evaluate(self, query),
        }?;
        let after = si_storage::thread_counters();
        let pf_after = si_storage::thread_prefetch_counters();
        result.stats.pager_hits = after.hits.saturating_sub(before.hits);
        result.stats.pager_misses = after.misses.saturating_sub(before.misses);
        result.stats.pager_evictions = after.evictions.saturating_sub(before.evictions);
        let pf = pf_after.delta_since(&pf_before);
        result.stats.prefetch_hints = pf.hints;
        result.stats.prefetch_useful = pf.useful;
        Ok(result)
    }

    /// Hints the prefetcher at the leading pages of `key`'s posting
    /// list — the storage end of plan-driven prefetch
    /// ([`crate::exec`]). Advisory by contract: errors, absent keys and
    /// inline values all yield `None` (nothing worth overlapping), and
    /// dropping the ticket cancels whatever was not yet loaded.
    pub fn prefetch_posting(
        &self,
        key: &[u8],
        max_bytes: u64,
    ) -> Option<si_storage::PrefetchTicket> {
        self.btree.prefetch_value(key, max_bytes).ok().flatten()
    }

    /// Cumulative pager cache counters of the index's B+Tree file.
    pub fn pager_counters(&self) -> si_storage::PagerCounters {
        self.btree.pager_counters()
    }

    /// Encoded posting-list length of a key in bytes, without decoding —
    /// a cheap selectivity estimate (the paper's §7 "statistics about
    /// subtrees such as their selectivities").
    pub fn posting_len(&self, key: &[u8]) -> Result<Option<u64>> {
        self.btree.value_len(key)
    }

    /// Whether the index carries a persisted stats segment. Indexes
    /// built before the segment existed report `false`; their
    /// [`SubtreeIndex::key_stats`] answers are estimates.
    pub fn has_key_stats(&self) -> bool {
        self.btree.has_stats_segment()
    }

    /// Per-key statistics for planning ([`crate::stats`]): posting
    /// count, distinct tid count, first/last tid and encoded bytes.
    /// Exact from the stats segment when present; for pre-stats index
    /// files the figures are estimated from [`SubtreeIndex::posting_len`]
    /// (`exact == false`, full tid range — safe, never prunes). `None`
    /// when the key is absent, meaning the query has no matches.
    pub fn key_stats(&self, key: &[u8]) -> Result<Option<si_storage::KeyStats>> {
        if let Some(stats) = self.btree.key_stats(key)? {
            return Ok(Some(stats));
        }
        Ok(self
            .btree
            .value_len(key)?
            .map(|bytes| crate::stats::estimate_from_len(bytes, self.options.coding, key)))
    }

    /// Opens a streaming posting cursor over `key`'s list: bytes flow
    /// from the B+Tree one page at a time and decode incrementally —
    /// the storage-to-coding seam of the streaming executor. `None`
    /// when the key is absent.
    pub fn posting_cursor(
        &self,
        key: &[u8],
    ) -> Result<Option<PostingCursor<si_storage::ValueReader<'_>>>> {
        let Some(reader) = self.btree.value_reader(key)? else {
            return Ok(None);
        };
        let m = key_size(key).ok_or_else(|| StorageError::Corrupt("bad canonical key".into()))?;
        Ok(Some(PostingCursor::with_format(
            self.options.coding,
            m,
            reader,
            self.skip_headers,
        )))
    }

    /// Fetches the decoded posting list of a canonical key, if indexed.
    pub fn postings(&self, key: &[u8]) -> Result<Option<Vec<Posting>>> {
        Ok(self.postings_with_len(key)?.map(|(postings, _)| postings))
    }

    /// [`SubtreeIndex::postings`] plus the list's raw encoded byte
    /// length, from the same single B+Tree descent (the legacy
    /// evaluator's byte instrumentation needs both).
    pub fn postings_with_len(&self, key: &[u8]) -> Result<Option<(Vec<Posting>, usize)>> {
        let Some(bytes) = self.btree.get(key)? else {
            return Ok(None);
        };
        let m = key_size(key).ok_or_else(|| StorageError::Corrupt("bad canonical key".into()))?;
        let payload = if self.skip_headers {
            crate::coding::split_skip_header(&bytes)?.1
        } else {
            &bytes[..]
        };
        Ok(Some((
            decode_postings(self.options.coding, m, payload).collect(),
            bytes.len(),
        )))
    }

    /// Iterates all `(key, posting list bytes)` pairs (statistics and the
    /// frequency-based baseline use this).
    pub fn iter_keys(&self) -> Result<impl Iterator<Item = Result<(Vec<u8>, Vec<u8>)>> + '_> {
        self.btree.iter()
    }

    fn write_meta(&self) -> Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SIMETA2\0");
        varint::write_u64(&mut buf, self.options.mss as u64);
        buf.push(self.options.coding.id());
        varint::write_u64(&mut buf, self.stats.keys);
        varint::write_u64(&mut buf, self.stats.postings);
        varint::write_u64(&mut buf, self.stats.index_bytes);
        varint::write_u64(&mut buf, self.stats.posting_bytes);
        varint::write_u64(&mut buf, self.stats.data_bytes);
        varint::write_u64(&mut buf, (self.stats.build_seconds * 1e6) as u64);
        std::fs::write(self.dir.join("si.meta"), buf)?;
        Ok(())
    }
}

fn decode_meta(bytes: &[u8]) -> Option<(IndexOptions, IndexStats, bool)> {
    let magic = bytes.get(..8)?;
    // SIMETA2 lists carry skip headers; SIMETA1 files predate them and
    // store the bare payload — both open cleanly, the cursor format
    // follows the flag.
    let skip_headers = match magic {
        b"SIMETA2\0" => true,
        b"SIMETA1\0" => false,
        _ => return None,
    };
    let mut r = varint::Reader::new(&bytes[8..]);
    let mss = r.u64()? as usize;
    let coding = Coding::from_id(r.bytes(1)?[0])?;
    if !(1..=8).contains(&mss) {
        return None;
    }
    let keys = r.u64()?;
    let postings = r.u64()?;
    let index_bytes = r.u64()?;
    let posting_bytes = r.u64()?;
    let data_bytes = r.u64()?;
    let build_micros = r.u64()?;
    Some((
        IndexOptions { mss, coding },
        IndexStats {
            keys,
            postings,
            index_bytes,
            posting_bytes,
            data_bytes,
            build_seconds: build_micros as f64 / 1e6,
        },
        skip_headers,
    ))
}
