//! Sharded, byte-bounded cache of **decoded** posting-list blocks.
//!
//! The pager LRU (`si_storage::Pager`) caches raw 4 KiB pages; hot
//! posting lists still pay varint + delta decode on every query. This
//! cache sits one level up: it stores runs of already-decoded
//! [`Posting`]s, keyed by `(canonical key, block index)`, so a repeat
//! scan of a hot list skips the pager *and* the decoder entirely — the
//! ROADMAP's "posting-list block cache" item, and the memory story is
//! still bounded per block rather than per list.
//!
//! Design:
//!
//! * fixed posting count per block ([`BlockCacheConfig::block_postings`]),
//!   so block `i` always holds postings `i*B .. (i+1)*B` of the list and
//!   a partially evicted list stays addressable;
//! * sharded by key+index hash, each shard behind its own mutex with an
//!   intrusive-list LRU and a byte budget of `budget / shards` — worker
//!   threads of the query service hit disjoint shards in parallel;
//! * postings store **absolute** tids (delta decoding already resolved),
//!   so any block can be served without the blocks before it;
//! * global hit/miss/insert/evict counters plus a peak-bytes high-water
//!   mark back the cache-eviction bound test and `EvalStats`.
//!
//! [`CachedListReader`] adapts the cache to the executor's
//! [`PostingFeed`] seam: it walks a list block by block, serving hits
//! **as zero-copy borrows out of the pinned block** (the reader's
//! `Arc` keeps the block alive while the scan consumes it, even across
//! a concurrent eviction) and filling misses from a lazily opened
//! [`PostingCursor`] over the B+Tree value (inserting every block it
//! decodes on the way, so one cold scan warms the whole list). A warm
//! interval-coded scan therefore allocates nothing per posting — the
//! `nodes` vectors live in the cached block and every consumer reads
//! the same memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::build::SubtreeIndex;
use crate::coding::{NodeVal, Posting, PostingCursor, PostingFeed};
use si_parsetree::TreeId;
use si_storage::{Result, ValueReader};

/// Approximate resident size of one decoded posting.
pub fn posting_bytes(p: &Posting) -> usize {
    std::mem::size_of::<Posting>()
        + match p {
            Posting::Occurrence { nodes, .. } => {
                nodes.capacity() * std::mem::size_of::<(NodeVal, u8)>()
            }
            Posting::Tid(_) | Posting::Root { .. } => 0,
        }
}

/// One cached run of decoded postings.
#[derive(Debug)]
pub struct DecodedBlock {
    /// The postings of this block, absolute tids.
    pub postings: Vec<Posting>,
    /// Approximate resident bytes ([`posting_bytes`] summed).
    pub bytes: usize,
    /// Whether this is the final block of its list.
    pub last: bool,
}

/// Cache identity of a block: the canonical key (shared across the
/// list's blocks via `Arc`) plus the block index.
type BlockKey = (Arc<[u8]>, u32);

/// Tuning knobs of a [`BlockCache`].
#[derive(Debug, Clone, Copy)]
pub struct BlockCacheConfig {
    /// Total byte budget across all shards.
    pub budget_bytes: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// Postings per block (block `i` = postings `i*B..(i+1)*B`).
    pub block_postings: usize,
}

impl Default for BlockCacheConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 64 << 20,
            shards: 8,
            block_postings: 1024,
        }
    }
}

impl BlockCacheConfig {
    /// A config with the given total byte budget (other knobs default).
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            ..Self::default()
        }
    }
}

/// Counter snapshot of a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block lookups served from the cache.
    pub hits: u64,
    /// Block lookups that missed.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted to stay within budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub current_bytes: u64,
    /// High-water mark of resident bytes (must stay ≤ the budget).
    pub peak_bytes: u64,
}

impl BlockCacheStats {
    /// Hit fraction in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mirrors this snapshot into `registry` under the stable
    /// `blockcache.*` dotted names (monotone counters via
    /// `Counter::set`, resident bytes as a gauge). Call at snapshot
    /// time; the cache itself stays registry-free on its hot path.
    pub fn register_into(&self, registry: &si_obs::Registry) {
        registry.counter("blockcache.hits").set(self.hits);
        registry.counter("blockcache.misses").set(self.misses);
        registry
            .counter("blockcache.insertions")
            .set(self.insertions);
        registry.counter("blockcache.evictions").set(self.evictions);
        registry
            .gauge("blockcache.bytes")
            .set(i64::try_from(self.current_bytes).unwrap_or(i64::MAX));
        registry
            .gauge("blockcache.peak_bytes")
            .set(i64::try_from(self.peak_bytes).unwrap_or(i64::MAX));
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: BlockKey,
    block: Arc<DecodedBlock>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One shard: an intrusive-list LRU over variable-size entries with a
/// byte budget. Head = most recently used.
struct Shard {
    map: HashMap<BlockKey, usize>,
    slots: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            budget,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Removes the LRU entry, returning its byte size.
    fn evict_tail(&mut self) -> usize {
        let i = self.tail;
        debug_assert_ne!(i, NIL);
        self.unlink(i);
        let bytes = self.slots[i].bytes;
        let key = self.slots[i].key.clone();
        self.map.remove(&key);
        self.slots[i].block = Arc::new(DecodedBlock {
            postings: Vec::new(),
            bytes: 0,
            last: false,
        });
        self.free.push(i);
        self.bytes -= bytes;
        bytes
    }
}

/// The sharded decoded-block cache. Cheap to clone behind an `Arc`;
/// shared by every worker of a query service.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    block_postings: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    current_bytes: AtomicU64,
    peak_bytes: AtomicU64,
}

impl BlockCache {
    /// Creates a cache per `config`.
    pub fn new(config: BlockCacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = (config.budget_bytes / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            block_postings: config.block_postings.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            current_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    /// Postings per block.
    pub fn block_postings(&self) -> usize {
        self.block_postings
    }

    fn shard_for(&self, key: &BlockKey) -> MutexGuard<'_, Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i = h.finish() as usize % self.shards.len();
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up block `idx` of `key`, bumping it to MRU on a hit.
    pub fn get(&self, key: &Arc<[u8]>, idx: u32) -> Option<Arc<DecodedBlock>> {
        let bk = (key.clone(), idx);
        let mut shard = self.shard_for(&bk);
        match shard.map.get(&bk).copied() {
            Some(i) => {
                shard.touch(i);
                let block = shard.slots[i].block.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(block)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether block `idx` of `key` is resident — without bumping LRU
    /// order or the hit/miss counters. The prefetch path's peek: the
    /// executor checks here before hinting a cover list so a warm list
    /// costs nothing, and the probe itself must not perturb eviction
    /// order or the hit-rate statistics.
    pub fn contains(&self, key: &[u8], idx: u32) -> bool {
        let bk = (Arc::<[u8]>::from(key), idx);
        let shard = self.shard_for(&bk);
        shard.map.contains_key(&bk)
    }

    /// Inserts block `idx` of `key`, evicting LRU entries of its shard
    /// until the block fits. A block larger than the whole shard budget
    /// is not cached at all (memory stays bounded). Re-inserting an
    /// existing block just refreshes its LRU position.
    pub fn insert(&self, key: &Arc<[u8]>, idx: u32, block: Arc<DecodedBlock>) {
        let bk = (key.clone(), idx);
        // Entry overhead: the key bytes plus bookkeeping.
        let entry_bytes = block.bytes + key.len() + std::mem::size_of::<Entry>();
        let mut shard = self.shard_for(&bk);
        if let Some(&i) = shard.map.get(&bk) {
            shard.touch(i);
            return;
        }
        if entry_bytes > shard.budget {
            return;
        }
        // Keep the global counter an *underestimate* of the true total
        // at every instant (decrement before bytes leave the shard,
        // increment after they are added), so a concurrent insert in
        // another shard can never read — and record as peak — a total
        // above the true one. True totals are ≤ budget by the per-shard
        // loops, hence peak_bytes ≤ budget, which the eviction-bound
        // tests assert.
        let mut evicted = 0u64;
        while shard.bytes + entry_bytes > shard.budget && shard.tail != NIL {
            let tail_bytes = shard.slots[shard.tail].bytes as u64;
            self.current_bytes.fetch_sub(tail_bytes, Ordering::Relaxed);
            let freed = shard.evict_tail() as u64;
            debug_assert_eq!(freed, tail_bytes);
            evicted += 1;
        }
        let entry = Entry {
            key: bk.clone(),
            block,
            bytes: entry_bytes,
            prev: NIL,
            next: NIL,
        };
        let i = match shard.free.pop() {
            Some(i) => {
                shard.slots[i] = entry;
                i
            }
            None => {
                shard.slots.push(entry);
                shard.slots.len() - 1
            }
        };
        shard.push_front(i);
        shard.map.insert(bk, i);
        shard.bytes += entry_bytes;
        let now = self
            .current_bytes
            .fetch_add(entry_bytes as u64, Ordering::Relaxed)
            + entry_bytes as u64;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            current_bytes: self.current_bytes.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Per-query hit/miss tally a [`CachedListReader`] reports into (the
/// executor owns one per evaluation and folds it into `EvalStats`).
#[derive(Debug, Default)]
pub struct CacheTally {
    /// Block hits.
    pub hits: std::cell::Cell<u64>,
    /// Block misses.
    pub misses: std::cell::Cell<u64>,
    /// Postings served as zero-copy borrows out of a cache-hit block
    /// (no decode, no clone — the refactor's observable win).
    pub borrowed: std::cell::Cell<u64>,
}

/// A [`PostingFeed`] over one key's posting list that serves decoded
/// blocks from a [`BlockCache`], falling back to a B+Tree cursor on
/// misses (and inserting what it decodes). See the module docs.
///
/// # Pinning contract
///
/// The reader holds its current block as an `Arc<DecodedBlock>`: a
/// cache hit is **pinned** for exactly as long as the scan consumes it,
/// so the borrows lent through [`PostingFeed::next_posting`] stay valid
/// even if the cache evicts the block concurrently. Pinned hit blocks
/// are charged to the cache's byte budget while resident, not to the
/// scan — only blocks the reader itself decodes on a miss (plus the
/// cursor's page window) count toward
/// [`PostingFeed::peak_buffer_bytes`], which is what makes a warm
/// interval-coded scan as cheap, memory-wise, as a root-split one.
/// One deliberate gap: a hit block evicted *while* pinned leaves the
/// cache ledger immediately but lives on until its reader moves past
/// it, so for that window its bytes appear in neither meter. The
/// excess is bounded by one block per open scan (a reader pins at
/// most its current block) and ends at the next block boundary.
pub struct CachedListReader<'a> {
    index: &'a SubtreeIndex,
    cache: Arc<BlockCache>,
    key: Arc<[u8]>,
    tally: std::rc::Rc<CacheTally>,
    /// Next block the reader will serve.
    block_idx: u32,
    /// Position within `current`.
    in_block: usize,
    current: Option<Arc<DecodedBlock>>,
    /// Whether `current` came from a cache hit (borrows served out of
    /// it are zero-copy and its bytes are the cache's, not the scan's).
    current_is_hit: bool,
    /// Lazily opened decode cursor and the index of the next block it
    /// would produce.
    cursor: Option<PostingCursor<ValueReader<'a>>>,
    cursor_block: u32,
    done: bool,
    peak_miss_block_bytes: usize,
}

impl<'a> CachedListReader<'a> {
    /// Creates a reader over `key`'s list. The underlying cursor opens
    /// only if a block misses the cache.
    pub fn new(
        index: &'a SubtreeIndex,
        cache: Arc<BlockCache>,
        key: &[u8],
        tally: std::rc::Rc<CacheTally>,
    ) -> Self {
        Self {
            index,
            cache,
            key: Arc::from(key),
            tally,
            block_idx: 0,
            in_block: 0,
            current: None,
            current_is_hit: false,
            cursor: None,
            cursor_block: 0,
            done: false,
            peak_miss_block_bytes: 0,
        }
    }

    /// Decodes blocks from the cursor up to and including `target`,
    /// inserting each into the cache; returns the target block (or
    /// `None` if the list ends before it — only possible when a stale
    /// cached block claimed more data follows, which is corruption).
    fn fill_through(&mut self, target: u32) -> Result<Option<Arc<DecodedBlock>>> {
        // The reader's block_idx only grows and every fill ends with
        // cursor_block == produced + 1 <= target + 1, so the cursor can
        // never be ahead of a missed block.
        debug_assert!(self.cursor.is_none() || self.cursor_block <= target);
        if self.cursor.is_none() {
            self.cursor = match self.index.posting_cursor(&self.key)? {
                Some(c) => Some(c),
                // Key absent: an empty list.
                None => return Ok(None),
            };
            self.cursor_block = 0;
        }
        let bp = self.cache.block_postings();
        let cursor = self.cursor.as_mut().expect("cursor open");
        loop {
            let mut postings = Vec::with_capacity(bp);
            let mut bytes = 0usize;
            let mut last = false;
            while postings.len() < bp {
                match cursor.next_posting()? {
                    // The one copy of the miss path: the cursor lends a
                    // borrow of its decode slot, and the block takes an
                    // owned clone so the cache outlives the cursor.
                    Some(p) => {
                        bytes += posting_bytes(p);
                        postings.push(p.clone());
                    }
                    None => {
                        last = true;
                        break;
                    }
                }
            }
            let block = Arc::new(DecodedBlock {
                postings,
                bytes,
                last,
            });
            let produced = self.cursor_block;
            self.cursor_block += 1;
            self.cache.insert(&self.key, produced, block.clone());
            if produced == target {
                return Ok(Some(block));
            }
            if last {
                return Ok(None);
            }
        }
    }

    /// Per-reader block hit/miss counts.
    pub fn tally(&self) -> (u64, u64) {
        (self.tally.hits.get(), self.tally.misses.get())
    }

    /// Forward-only seek mapping the list's skip header onto the
    /// cache's block grid. Restart blocks align with cache blocks
    /// exactly when the header's restart interval equals
    /// [`BlockCache::block_postings`] (both default to 1024): restart
    /// point `p` then begins cache block `p`, so a seek just moves the
    /// reader's `block_idx` — skipped cached blocks are never fetched,
    /// skipped cold blocks are never decoded *or inserted* (the list is
    /// warmed from the seek target onward). Returns the number of
    /// postings jumped; `Ok(0)` on legacy lists, when already at or
    /// past the target restart, or when the grids are misaligned (a
    /// non-default cache config — seeking is then skipped rather than
    /// served wrong).
    fn seek_forward(&mut self, t: TreeId) -> Result<u64> {
        if self.done {
            return Ok(0);
        }
        // The skip header lives at the head of the B+Tree value, so a
        // seek needs the cursor even if the target block is cached: one
        // key lookup, after which the cursor is parked right at the
        // restart point a future miss would decode from.
        if self.cursor.is_none() {
            self.cursor = match self.index.posting_cursor(&self.key)? {
                Some(c) => Some(c),
                None => return Ok(0),
            };
            self.cursor_block = 0;
        }
        let bp = self.cache.block_postings() as u64;
        let cursor = self.cursor.as_mut().expect("cursor open");
        let p = match cursor.skip_table()? {
            Some(table) if u64::from(table.interval()) == bp => table.restart_before(t),
            _ => return Ok(0),
        };
        let consumed = u64::from(self.block_idx) * bp + self.in_block as u64;
        let target = u64::from(p) * bp;
        if target <= consumed {
            return Ok(0);
        }
        cursor.seek_to_restart(p)?;
        self.cursor_block = self.cursor_block.max(p);
        self.block_idx = p;
        self.in_block = 0;
        self.current = None;
        self.current_is_hit = false;
        Ok(target - consumed)
    }
}

impl CachedListReader<'_> {
    /// Positions `self.current`/`self.in_block` on the next posting,
    /// fetching or decoding the next block as needed. Returns whether a
    /// posting is available at `current.postings[in_block - 1]`.
    fn position_next(&mut self) -> Result<bool> {
        loop {
            if self.done {
                return Ok(false);
            }
            if let Some(block) = &self.current {
                if self.in_block < block.postings.len() {
                    self.in_block += 1;
                    if self.current_is_hit {
                        self.tally.borrowed.set(self.tally.borrowed.get() + 1);
                    }
                    return Ok(true);
                }
                if block.last {
                    self.done = true;
                    return Ok(false);
                }
                self.block_idx += 1;
                self.in_block = 0;
                self.current = None;
            }
            let (block, hit) = match self.cache.get(&self.key, self.block_idx) {
                Some(b) => {
                    self.tally.hits.set(self.tally.hits.get() + 1);
                    (b, true)
                }
                None => {
                    self.tally.misses.set(self.tally.misses.get() + 1);
                    match self.fill_through(self.block_idx)? {
                        Some(b) => (b, false),
                        None => {
                            self.done = true;
                            return Ok(false);
                        }
                    }
                }
            };
            if !hit {
                // A block this reader decoded itself is its own resident
                // footprint; a hit block is pinned shared cache memory.
                self.peak_miss_block_bytes = self.peak_miss_block_bytes.max(block.bytes);
            }
            self.in_block = 0;
            self.current = Some(block);
            self.current_is_hit = hit;
        }
    }
}

impl PostingFeed for CachedListReader<'_> {
    fn seek_to_tid(&mut self, t: TreeId) -> Result<u64> {
        self.seek_forward(t)
    }

    fn next_posting(&mut self) -> Result<Option<&Posting>> {
        Ok(if self.position_next()? {
            let block = self.current.as_ref().expect("positioned on a block");
            Some(&block.postings[self.in_block - 1])
        } else {
            None
        })
    }

    fn peak_buffer_bytes(&self) -> usize {
        // Only self-decoded (miss) blocks plus the cursor's page window
        // count against the scan; cache-hit blocks are pinned via `Arc`
        // and charged to the cache budget (see the type docs).
        self.peak_miss_block_bytes
            + self
                .cursor
                .as_ref()
                .map(|c| c.peak_buffer_bytes())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_posting(tid: u32) -> Posting {
        Posting::Root {
            tid,
            root: NodeVal {
                pre: tid % 17,
                post: tid % 17 + 3,
                level: 1,
            },
        }
    }

    fn block_of(tids: std::ops::Range<u32>, last: bool) -> Arc<DecodedBlock> {
        let postings: Vec<Posting> = tids.map(root_posting).collect();
        let bytes = postings.iter().map(posting_bytes).sum();
        Arc::new(DecodedBlock {
            postings,
            bytes,
            last,
        })
    }

    fn key(name: &str) -> Arc<[u8]> {
        Arc::from(name.as_bytes())
    }

    #[test]
    fn hit_miss_and_lru_order() {
        let cache = BlockCache::new(BlockCacheConfig {
            budget_bytes: 1 << 20,
            shards: 1,
            block_postings: 4,
        });
        let k = key("NP(NN)");
        assert!(cache.get(&k, 0).is_none());
        cache.insert(&k, 0, block_of(0..4, false));
        cache.insert(&k, 1, block_of(4..8, true));
        assert_eq!(cache.get(&k, 0).unwrap().postings.len(), 4);
        assert!(cache.get(&k, 1).unwrap().last);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 2);
    }

    #[test]
    fn byte_budget_is_never_exceeded() {
        let block = block_of(0..64, false);
        let entry_overhead = 8 + std::mem::size_of::<Entry>();
        // Budget fits ~3 blocks.
        let budget = 3 * (block.bytes + entry_overhead) + 16;
        let cache = BlockCache::new(BlockCacheConfig {
            budget_bytes: budget,
            shards: 1,
            block_postings: 64,
        });
        for i in 0..32u32 {
            cache.insert(&key("hot-list"), i, block_of(0..64, false));
            let s = cache.stats();
            assert!(
                s.current_bytes as usize <= budget,
                "iteration {i}: {} > {budget}",
                s.current_bytes
            );
        }
        let s = cache.stats();
        assert!(s.peak_bytes as usize <= budget, "peak {}", s.peak_bytes);
        assert!(s.evictions > 0, "tiny budget must evict");
    }

    #[test]
    fn oversized_block_is_not_cached() {
        let cache = BlockCache::new(BlockCacheConfig {
            budget_bytes: 64,
            shards: 1,
            block_postings: 1024,
        });
        let k = key("huge");
        cache.insert(&k, 0, block_of(0..1024, true));
        assert!(cache.get(&k, 0).is_none());
        assert_eq!(cache.stats().current_bytes, 0);
    }

    #[test]
    fn reinsert_refreshes_without_double_counting() {
        let cache = BlockCache::new(BlockCacheConfig {
            budget_bytes: 1 << 20,
            shards: 1,
            block_postings: 4,
        });
        let k = key("dup");
        cache.insert(&k, 0, block_of(0..4, true));
        let bytes_once = cache.stats().current_bytes;
        cache.insert(&k, 0, block_of(0..4, true));
        assert_eq!(cache.stats().current_bytes, bytes_once);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn sharded_inserts_stay_within_global_budget() {
        let cache = BlockCache::new(BlockCacheConfig {
            budget_bytes: 8 << 10,
            shards: 4,
            block_postings: 16,
        });
        for list in 0..8 {
            let k = key(&format!("list-{list}"));
            for i in 0..16u32 {
                cache.insert(&k, i, block_of(0..16, i == 15));
            }
        }
        let s = cache.stats();
        assert!(
            s.peak_bytes <= (8 << 10),
            "peak {} exceeds budget",
            s.peak_bytes
        );
    }
}
