//! Query decomposition (§5): covers, `assign`, `optimalCover`, `minRC`.
//!
//! A query is evaluated by covering it with subtrees of at most `mss`
//! nodes, fetching each subtree's posting list and joining (§4.3). The
//! paper's algorithms:
//!
//! * [`assign`](self) — packs a node's small branches into subtrees of
//!   exactly `mss` nodes rooted at that node, first-fit-decreasing
//!   (optimal for `mss ≤ 6`, Lemma 3 via integer bin packing);
//! * [`optimal_cover`] — a join-optimal max-cover (Theorem 1), used by
//!   the filter-based and subtree-interval codings;
//! * [`minrc`] — the smallest *root-split* cover (Theorem 2): bins are
//!   completed bottom-up so every internal node is assigned before its
//!   ancestors, avoiding the deep branching anomaly (Definition 10), and
//!   all join predicates touch only cover roots.
//!
//! `//` edges can never sit inside an index key, so the query is first
//! split into `/`-connected components; each component is decomposed
//! independently and `//` edges become structural join predicates
//! between components (DESIGN.md §5). For root-split coding, every node
//! with an outgoing `//` edge must expose its structural info, i.e. be
//! the root of some cover subtree; [`decompose`] patches the cover with
//! an extra bin when needed.

use si_query::{Axis, QNodeId, Query};

use crate::canonical::canon_encode;
use crate::coding::Coding;

/// One cover subtree: a connected, all-`/` subtree of the query with at
/// most `mss` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverSubtree {
    /// The query node this subtree is rooted at.
    pub root: QNodeId,
    /// Member query nodes in canonical key order (`nodes[0] == root`).
    pub nodes: Vec<QNodeId>,
    /// Canonical key bytes (the B+Tree lookup key).
    pub key: Vec<u8>,
}

impl CoverSubtree {
    /// Number of query nodes covered.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `q` is a member.
    pub fn contains(&self, q: QNodeId) -> bool {
        self.nodes.contains(&q)
    }
}

/// A (valid) cover of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// The cover subtrees, in construction order.
    pub subtrees: Vec<CoverSubtree>,
}

impl Cover {
    /// Number of joins a left-deep plan over this cover performs
    /// (Table 3's metric).
    pub fn num_joins(&self) -> usize {
        self.subtrees.len().saturating_sub(1)
    }

    /// Checks cover validity (Definitions 5–7): every query node is
    /// covered, every subtree is a connected all-`/` subtree of the
    /// query rooted at its `root`, and no subtree exceeds `mss`.
    pub fn validate(&self, query: &Query, mss: usize) -> Result<(), String> {
        let mut covered = vec![false; query.len()];
        for (i, st) in self.subtrees.iter().enumerate() {
            if st.nodes.is_empty() || st.nodes[0] != st.root {
                return Err(format!("subtree {i}: root not first"));
            }
            if st.size() > mss {
                return Err(format!("subtree {i}: size {} > mss {mss}", st.size()));
            }
            for &n in &st.nodes {
                covered[n.index_usize()] = true;
                if n != st.root {
                    let p = query
                        .parent(n)
                        .ok_or_else(|| format!("subtree {i}: non-root member without parent"))?;
                    if !st.contains(p) {
                        return Err(format!("subtree {i}: member {} disconnected", n.0));
                    }
                    if query.axis(n) != Axis::Child {
                        return Err(format!("subtree {i}: member {} via // edge", n.0));
                    }
                }
            }
            let mut dedup = st.nodes.clone();
            dedup.sort_unstable();
            dedup.dedup();
            if dedup.len() != st.nodes.len() {
                return Err(format!("subtree {i}: duplicate members"));
            }
        }
        if let Some(miss) = covered.iter().position(|&c| !c) {
            return Err(format!("query node {miss} uncovered"));
        }
        Ok(())
    }
}

trait QNodeIdExt {
    fn index_usize(&self) -> usize;
}

impl QNodeIdExt for QNodeId {
    fn index_usize(&self) -> usize {
        self.0 as usize
    }
}

/// Computes the cover for `query` under `coding`:
/// [`minrc`] for root-split, [`optimal_cover`] otherwise.
pub fn decompose(query: &Query, mss: usize, coding: Coding) -> Cover {
    match coding {
        Coding::RootSplit => minrc(query, mss),
        Coding::FilterBased | Coding::SubtreeInterval => optimal_cover(query, mss),
    }
}

/// The join-optimal cover of Figure 6 (`optimalCover`), generalized to
/// queries with `//` edges by per-component decomposition.
pub fn optimal_cover(query: &Query, mss: usize) -> Cover {
    let mut d = Decomposer::new(query, mss);
    for root in component_roots(query) {
        d.optimal_cover(root, true);
    }
    d.into_cover()
}

/// The smallest root-split cover of Figure 7 (`minRC`), plus the patch
/// bins that make `//` edges evaluable over roots (DESIGN.md §5).
pub fn minrc(query: &Query, mss: usize) -> Cover {
    let mut d = Decomposer::new(query, mss);
    let roots = component_roots(query);
    for &root in &roots {
        d.minrc(root);
    }
    // Root-split evaluability patch: every node with a `//`-child must be
    // the root of some cover subtree.
    let descendant_parents: Vec<QNodeId> = query
        .nodes()
        .skip(1)
        .filter(|&n| query.axis(n) == Axis::Descendant)
        .map(|n| query.parent(n).expect("non-root"))
        .collect();
    for u in descendant_parents {
        if !d.covers.iter().any(|(root, _)| *root == u) {
            d.patch_bin(u);
        }
    }
    // Sibling-distinctness patch: same-label `/`-siblings must map to
    // distinct data nodes. When a clash group does not co-reside in one
    // cover subtree, expose every member as a cover root so the join
    // phase can add root-level `!=` predicates instead of falling back
    // to whole-tree post-validation (DESIGN.md §5).
    for p in query.nodes() {
        let kids: Vec<QNodeId> = query.children_via(p, Axis::Child).collect();
        for (i, &u) in kids.iter().enumerate() {
            for &v in &kids[i + 1..] {
                if query.label(u) != query.label(v) {
                    continue;
                }
                if d.covers
                    .iter()
                    .any(|(_, nodes)| nodes.contains(&u) && nodes.contains(&v))
                {
                    continue;
                }
                for member in [u, v] {
                    if !d.covers.iter().any(|(root, _)| *root == member) {
                        d.patch_bin(member);
                    }
                }
            }
        }
    }
    d.into_cover()
}

/// Roots of the `/`-connected components: the query root plus every node
/// entered via a `//` edge.
fn component_roots(query: &Query) -> Vec<QNodeId> {
    query
        .nodes()
        .filter(|&n| query.parent(n).is_none() || query.axis(n) == Axis::Descendant)
        .collect()
}

struct Decomposer<'q> {
    q: &'q Query,
    mss: usize,
    assigned: Vec<bool>,
    covers: Vec<(QNodeId, Vec<QNodeId>)>,
    /// Component-subtree size per node (through `/` edges only).
    csize: Vec<usize>,
}

impl<'q> Decomposer<'q> {
    fn new(q: &'q Query, mss: usize) -> Self {
        assert!(mss >= 1, "mss must be at least 1");
        let mut csize = vec![1usize; q.len()];
        // Children have larger pre ids: reverse pre-order accumulates.
        for n in (0..q.len() as u32).rev().map(QNodeId) {
            for c in q.children_via(n, Axis::Child) {
                csize[n.index_usize()] += csize[c.index_usize()];
            }
        }
        Self {
            q,
            mss,
            assigned: vec![false; q.len()],
            covers: Vec::new(),
            csize,
        }
    }

    fn cchildren(&self, n: QNodeId) -> Vec<QNodeId> {
        self.q.children_via(n, Axis::Child).collect()
    }

    /// Unassigned node count in `n`'s component subtree (including `n`).
    fn remaining(&self, n: QNodeId) -> usize {
        let mut count = usize::from(!self.assigned[n.index_usize()]);
        for c in self.q.children_via(n, Axis::Child) {
            count += self.remaining(c);
        }
        count
    }

    /// The *take* of a branch: the minimal connected subtree rooted at
    /// `c` containing every unassigned node under `c` (assigned interior
    /// nodes are kept as connectors). Empty when nothing is unassigned.
    fn take(&self, c: QNodeId) -> Vec<QNodeId> {
        fn go(d: &Decomposer<'_>, n: QNodeId, out: &mut Vec<QNodeId>) -> bool {
            let at = out.len();
            out.push(n);
            let mut any = !d.assigned[n.index_usize()];
            for ch in d.q.children_via(n, Axis::Child) {
                any |= go(d, ch, out);
            }
            if !any {
                out.truncate(at);
            }
            any
        }
        let mut out = Vec::new();
        go(self, c, &mut out);
        out
    }

    /// Full component subtree of `n` as a node list (pre-order).
    fn full_subtree(&self, n: QNodeId) -> Vec<QNodeId> {
        let mut out = vec![n];
        let mut i = 0;
        while i < out.len() {
            let x = out[i];
            out.extend(self.q.children_via(x, Axis::Child));
            i += 1;
        }
        out
    }

    /// `optimalCover` (Figure 6). `is_root`: `n` is a component root.
    fn optimal_cover(&mut self, n: QNodeId, is_root: bool) {
        if is_root && self.csize[n.index_usize()] <= self.mss {
            let nodes = self.full_subtree(n);
            for &x in &nodes {
                self.assigned[x.index_usize()] = true;
            }
            self.covers.push((n, nodes));
            return;
        }
        for c in self.cchildren(n) {
            let cs = self.csize[c.index_usize()];
            if cs == self.mss {
                let nodes = self.full_subtree(c);
                for &x in &nodes {
                    self.assigned[x.index_usize()] = true;
                }
                self.covers.push((c, nodes));
            } else if cs > self.mss {
                self.optimal_cover(c, false);
            }
        }
        while self.remaining(n) >= self.mss {
            self.bin_or_descend(n);
        }
        if is_root {
            while self.remaining(n) > 0 {
                self.bin_or_descend(n);
            }
        }
    }

    /// `minRC` (Figure 7): exhausts the component subtree of `n` with
    /// bins rooted at `n`, recursing into large children first.
    fn minrc(&mut self, n: QNodeId) {
        if self.csize[n.index_usize()] <= self.mss {
            let nodes = self.full_subtree(n);
            for &x in &nodes {
                self.assigned[x.index_usize()] = true;
            }
            self.covers.push((n, nodes));
            return;
        }
        for c in self.cchildren(n) {
            let cs = self.csize[c.index_usize()];
            if cs == self.mss {
                let nodes = self.full_subtree(c);
                for &x in &nodes {
                    self.assigned[x.index_usize()] = true;
                }
                self.covers.push((c, nodes));
            } else if cs > self.mss {
                self.minrc(c);
            }
        }
        while self.remaining(n) > 0 {
            self.bin_or_descend(n);
        }
    }

    /// Runs `assign` at `n`; on a stall (no unassigned node can join a
    /// bin rooted at `n` because a branch's take exceeds the capacity),
    /// descends into the largest remaining branch and bins there.
    fn bin_or_descend(&mut self, n: QNodeId) {
        let mut at = n;
        loop {
            if self.assign_bin(at) {
                return;
            }
            // Descend towards the unassigned pocket.
            let next = self
                .cchildren(at)
                .into_iter()
                .max_by_key(|&c| self.remaining(c))
                .filter(|&c| self.remaining(c) > 0);
            match next {
                Some(c) => at = c,
                None => {
                    debug_assert!(false, "bin_or_descend with nothing remaining");
                    return;
                }
            }
        }
    }

    /// One `assign` call (Figure 6, right): a bin rooted at `n`, filled
    /// first-fit-decreasing with whole branch takes, then padded with
    /// already-covered structure up to exactly `mss` nodes. Returns
    /// whether any node became newly assigned; stalled bins are not
    /// recorded.
    fn assign_bin(&mut self, n: QNodeId) -> bool {
        let mut bin: Vec<QNodeId> = vec![n];
        let mut progress = !self.assigned[n.index_usize()];
        let mut takes: Vec<(usize, QNodeId)> = self
            .cchildren(n)
            .into_iter()
            .map(|c| (self.take(c).len(), c))
            .filter(|&(t, _)| t > 0)
            .collect();
        // First-fit decreasing (Lemma 3).
        takes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut size = 1;
        for (tsize, c) in takes {
            if size + tsize <= self.mss {
                let t = self.take(c);
                debug_assert_eq!(t.len(), tsize);
                for &x in &t {
                    if !self.assigned[x.index_usize()] {
                        self.assigned[x.index_usize()] = true;
                        progress = true;
                    }
                }
                bin.extend(t);
                size += tsize;
            }
        }
        if !progress {
            return false;
        }
        self.assigned[n.index_usize()] = true;
        self.pad(&mut bin);
        self.covers.push((n, bin));
        true
    }

    /// Pads `bin` to `mss` nodes by attaching `/`-children of current
    /// members (the paper's lines 9–14 of `assign`: larger keys have
    /// shorter posting lists under filter-based and root-split codings,
    /// Lemma 1). Padding reuses already-covered structure and never
    /// changes `assigned`.
    fn pad(&mut self, bin: &mut Vec<QNodeId>) {
        while bin.len() < self.mss {
            let ext = bin
                .iter()
                .flat_map(|&b| self.q.children_via(b, Axis::Child))
                .find(|x| !bin.contains(x));
            match ext {
                Some(x) => bin.push(x),
                None => break,
            }
        }
    }

    /// Adds an extra bin rooted at `u` (root-split `//`-evaluability
    /// patch): `u` plus padding.
    fn patch_bin(&mut self, u: QNodeId) {
        let mut bin = vec![u];
        self.pad(&mut bin);
        self.covers.push((u, bin));
    }

    fn into_cover(self) -> Cover {
        let q = self.q;
        let subtrees = self
            .covers
            .into_iter()
            .map(|(root, nodes)| {
                let members = nodes;
                let (key, canon_nodes) =
                    canon_encode(root, &|n: QNodeId| q.label(n).id(), &|n: QNodeId| {
                        q.children_via(n, Axis::Child)
                            .filter(|c| members.contains(c))
                            .collect::<Vec<_>>()
                    });
                debug_assert_eq!(canon_nodes.len(), members.len());
                CoverSubtree {
                    root,
                    nodes: canon_nodes,
                    key,
                }
            })
            .collect();
        Cover { subtrees }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::LabelInterner;
    use si_query::parse_query;

    fn q(src: &str) -> (Query, LabelInterner) {
        let mut li = LabelInterner::new();
        (parse_query(src, &mut li).unwrap(), li)
    }

    /// A0(A1(A2(...))) — a unary chain of `n` distinct labels.
    fn chain(n: usize) -> (Query, LabelInterner) {
        let mut t = String::new();
        for i in 0..n {
            t.push_str(&format!("A{i}"));
            if i + 1 < n {
                t.push('(');
            }
        }
        t.push_str(&")".repeat(n - 1));
        q(&t)
    }

    #[test]
    fn whole_query_when_small() {
        let (query, _) = q("S(NP)(VP)");
        for coding in Coding::ALL {
            let cover = decompose(&query, 3, coding);
            assert_eq!(cover.subtrees.len(), 1);
            assert_eq!(cover.num_joins(), 0);
            cover.validate(&query, 3).unwrap();
        }
    }

    #[test]
    fn chain_optimal_cover_is_ceil_n_over_mss() {
        for n in 2..=12 {
            for mss in 2..=5 {
                let (query, _) = chain(n);
                let cover = optimal_cover(&query, mss);
                cover.validate(&query, mss).unwrap();
                assert_eq!(
                    cover.subtrees.len(),
                    n.div_ceil(mss),
                    "chain {n} mss {mss}: {:?}",
                    cover.subtrees.iter().map(|s| s.size()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn chain_minrc_matches_proposition_1_worst_case() {
        // Proposition 1: a unary branch needs |Q| - mss + 1 root-split
        // subtrees vs ceil(|Q|/mss) join-optimal ones.
        for n in 4..=10 {
            for mss in 2..=4 {
                if n <= mss {
                    continue;
                }
                let (query, _) = chain(n);
                let cover = minrc(&query, mss);
                cover.validate(&query, mss).unwrap();
                assert_eq!(cover.subtrees.len(), n - mss + 1, "chain {n} mss {mss}");
            }
        }
    }

    #[test]
    fn paper_example_2_optimal_cover_size() {
        // Figure 1(a) query, mss = 3: Example 2 derives a cover of 5.
        let (query, _) = q("S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))");
        assert_eq!(query.len(), 11);
        let cover = optimal_cover(&query, 3);
        cover.validate(&query, 3).unwrap();
        assert_eq!(cover.subtrees.len(), 5);
    }

    #[test]
    fn paper_example_3_minrc_size() {
        // Example 3: minRC also returns 5 subtrees on the same query.
        let (query, _) = q("S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))");
        let cover = minrc(&query, 3);
        cover.validate(&query, 3).unwrap();
        assert_eq!(cover.subtrees.len(), 5);
    }

    #[test]
    fn paper_example_1_deep_branching() {
        // Figure 5(a): A(B(C(D)(E)(F))) with mss = 4. The join-optimal
        // cover has 2 subtrees; the root-split cover needs 3 (C2 in the
        // paper) because C's children must stay with their parent.
        let (query, _) = q("A(B(C(D)(E)(F)))");
        assert_eq!(query.len(), 6);
        let opt = optimal_cover(&query, 4);
        opt.validate(&query, 4).unwrap();
        assert_eq!(opt.subtrees.len(), 2);
        let rs = minrc(&query, 4);
        rs.validate(&query, 4).unwrap();
        assert_eq!(rs.subtrees.len(), 3);
    }

    #[test]
    fn minrc_assigns_children_before_ancestors() {
        // In a minRC cover, for every uncovered query edge (u, v), u is
        // the root of some cover subtree — the property that makes
        // root-only joins complete.
        for (src, mss) in [
            ("A(B(C(D)(E)(F)))", 4),
            ("S(NP(NNS(x)))(VP(VBZ(y))(NP(DT(a))(NN)))", 3),
            ("A(B(C)(D))(E(F(G))(H))", 2),
            ("A(B)(C)(D)(E)(F)(G)", 3),
        ] {
            let (query, _) = q(src);
            let cover = minrc(&query, mss);
            cover.validate(&query, mss).unwrap();
            for v in query.nodes().skip(1) {
                let u = query.parent(v).unwrap();
                let covered = cover
                    .subtrees
                    .iter()
                    .any(|s| s.contains(u) && s.contains(v));
                if !covered {
                    assert!(
                        cover.subtrees.iter().any(|s| s.root == u),
                        "{src} mss={mss}: edge ({},{}) uncovered and {} is no cover root",
                        u.0,
                        v.0,
                        u.0
                    );
                    assert!(
                        cover
                            .subtrees
                            .iter()
                            .filter(|s| s.contains(v))
                            .all(|s| s.root == v),
                        "{src}: child end of uncovered edge must be a root"
                    );
                }
            }
        }
    }

    #[test]
    fn descendant_edges_split_components() {
        let (query, _) = q("S(NP(NN))(//VP(VBZ))");
        for coding in Coding::ALL {
            let cover = decompose(&query, 3, coding);
            cover.validate(&query, 3).unwrap();
            // S(NP(NN)) and VP(VBZ) are separate components.
            assert!(cover.subtrees.len() >= 2);
            // No subtree crosses the // edge.
            for st in &cover.subtrees {
                let has_s = st.nodes.iter().any(|&n| n.0 == 0);
                let has_vp = st.nodes.iter().any(|&n| n.0 == 3);
                assert!(!(has_s && has_vp), "cover crosses the // edge");
            }
        }
    }

    #[test]
    fn minrc_patches_descendant_parents() {
        // B has a //-child; B must be the root of some cover subtree in
        // the root-split decomposition even though optimalCover wouldn't
        // require it.
        let (query, _) = q("A(B(C)(//D))");
        let cover = minrc(&query, 3);
        cover.validate(&query, 3).unwrap();
        let b = QNodeId(1);
        assert!(
            cover.subtrees.iter().any(|s| s.root == b),
            "B must be a cover root: {:?}",
            cover
                .subtrees
                .iter()
                .map(|s| (s.root.0, s.size()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn max_cover_bins_have_exactly_mss_nodes_when_possible() {
        let (query, _) = q("S(NP(DT)(JJ)(NN))(VP(VBZ)(NP(NN)))");
        let cover = optimal_cover(&query, 3);
        cover.validate(&query, 3).unwrap();
        // All bins padded to mss (the query has >= mss nodes everywhere).
        for st in &cover.subtrees {
            assert_eq!(st.size(), 3, "bin {:?}", st.nodes);
        }
    }

    #[test]
    fn single_node_query() {
        let (query, _) = q("NN");
        for coding in Coding::ALL {
            let cover = decompose(&query, 3, coding);
            assert_eq!(cover.subtrees.len(), 1);
            assert_eq!(cover.subtrees[0].size(), 1);
        }
    }

    #[test]
    fn mss_one_degenerates_to_node_covers() {
        let (query, _) = q("S(NP(NN))(VP)");
        for coding in Coding::ALL {
            let cover = decompose(&query, 1, coding);
            cover.validate(&query, 1).unwrap();
            assert_eq!(cover.subtrees.len(), query.len());
            assert_eq!(cover.num_joins(), query.len() - 1);
        }
    }

    #[test]
    fn cover_keys_are_canonical() {
        // Sibling order in the query must not affect cover keys; use one
        // interner so label ids are comparable.
        let mut li = LabelInterner::new();
        let qa = parse_query("A(B)(C)", &mut li).unwrap();
        let qb = parse_query("A(C)(B)", &mut li).unwrap();
        let ca = decompose(&qa, 3, Coding::RootSplit);
        let cb = decompose(&qb, 3, Coding::RootSplit);
        assert_eq!(ca.subtrees[0].key, cb.subtrees[0].key);
    }

    #[test]
    fn validate_catches_bad_covers() {
        let (query, _) = q("A(B)(C)");
        // Missing node C.
        let partial = Cover {
            subtrees: vec![CoverSubtree {
                root: QNodeId(0),
                nodes: vec![QNodeId(0), QNodeId(1)],
                key: vec![],
            }],
        };
        assert!(partial.validate(&query, 3).is_err());
        // Oversized subtree.
        let full = decompose(&query, 3, Coding::RootSplit);
        assert!(full.validate(&query, 2).is_err());
    }
}
