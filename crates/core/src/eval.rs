//! The legacy **materializing** query evaluator (§4.3).
//!
//! This is the original evaluation path: every cover's posting list is
//! fully decoded into `Vec<Tuple>` before the join phase, so memory
//! scales with the largest posting list. It is retained behind
//! [`crate::exec::ExecMode::Materialized`] as the equivalence oracle
//! for the streaming executor ([`crate::exec`], the default) and as the
//! baseline of the `crates/bench` executor ablation. `EvalStats`
//! instrumentation (including `peak_posting_bytes`) is shared by both.
//!
//! The two phases of the paper:
//!
//! 1. **decomposition** — [`crate::cover::decompose`] picks the cover for
//!    the index's coding scheme and every cover subtree's posting list is
//!    fetched from the B+Tree;
//! 2. **join** — posting lists become tuple streams and a left-deep plan
//!    (smallest stream first, connected steps only) reduces them with
//!    equality and structural joins; filter-based coding instead
//!    intersects tid lists and runs the *filtering phase* (the in-memory
//!    matcher) over candidate trees.
//!
//! The result of a query is the set of distinct `(tid, pre)` pairs its
//! root maps to (DESIGN.md §5). Same-label sibling distinctness is
//! enforced with root-level `!=` predicates (minRC patches the cover so
//! the members are roots); a whole-tree post-validation fallback remains
//! as a safety net and is reported via [`EvalStats::used_validation`].

use std::collections::HashSet;

use si_parsetree::TreeId;
use si_query::matcher::Matcher;
use si_query::{QNodeId, Query};

use crate::build::SubtreeIndex;
use crate::canonical::{automorphisms, decode_key};
use crate::coding::{Coding, Posting};
use crate::cover::{decompose, Cover};
use crate::join::{
    intersect_tids, join, tid_cross_join, tuples_bytes, JoinKind, Pred, Slots, Tuple,
};
use crate::plan::{cross_stream_predicates, PredKind};

/// Instrumentation of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Cover subtrees fetched.
    pub covers: usize,
    /// Binary joins in the executed plan. The streaming executor always
    /// reports the full plan (its operators exist even when no tuple
    /// flows); the materialized evaluator stops counting when an
    /// intermediate result empties out.
    pub joins: usize,
    /// Postings decoded across all fetched lists.
    pub postings_fetched: usize,
    /// Trees materialized and matched in a validation/filtering phase.
    pub validated_trees: usize,
    /// Whether root-split fell back to post-validation (sibling-label
    /// distinctness not expressible over roots; DESIGN.md §5).
    pub used_validation: bool,
    /// Whether the cost-based planner proved the result empty from
    /// disjoint per-key tid ranges and skipped execution entirely
    /// (streaming executor with exact stats only).
    pub range_pruned: bool,
    /// High-water mark of resident posting-derived bytes. The
    /// materializing evaluator pays every stream's full tuple expansion
    /// (plus the raw bytes of the list currently decoding); the
    /// streaming executor pays the pages in flight plus its small
    /// operator windows — the ablation `crates/bench` measures.
    pub peak_posting_bytes: usize,
    /// Pager cache hits during this evaluation (delta of the
    /// **thread-local** counters, [`si_storage::thread_counters`]: a
    /// query evaluates entirely on one thread, so attribution is exact
    /// even while the query service runs other queries concurrently on
    /// the same pager).
    pub pager_hits: u64,
    /// Pager cache misses (physical page reads) during this evaluation.
    pub pager_misses: u64,
    /// Pager cache evictions during this evaluation.
    pub pager_evictions: u64,
    /// Decoded-block cache hits by this query's scans (exact per query;
    /// zero when no [`crate::blockcache::BlockCache`] is configured).
    pub cache_hits: u64,
    /// Decoded-block cache misses by this query's scans.
    pub cache_misses: u64,
    /// Postings served as zero-copy borrows straight out of cache-hit
    /// blocks (no decode, no clone) — the observable win of the
    /// borrow-based [`crate::coding::PostingFeed`] pipeline.
    pub postings_borrowed: u64,
    /// Order enforcers this evaluation did without: planner steps where
    /// the root-slot preference chose a sort-free driving predicate or
    /// stream, plus `SortExchange`s whose run detection drained the
    /// input without ever sorting a tid group.
    pub sort_exchanges_avoided: usize,
    /// Shards consulted by a sharded evaluation
    /// ([`crate::sharded::ShardedIndex`]); zero for a monolithic index.
    pub shards: usize,
    /// Shards answered without opening a single posting list: some cover
    /// key is absent from the shard, or (cost-based planner) the shard's
    /// per-key tid ranges are disjoint.
    pub shards_skipped: usize,
    /// Restart-block jumps performed by posting feeds
    /// ([`crate::coding::PostingFeed::seek_to_tid`]): leapfrog targets
    /// and tid-range seeding that actually moved a cursor forward.
    /// Zero on pre-skip-header indexes (no skip tables to jump).
    pub seeks: u64,
    /// Postings those seeks jumped over — bytes the evaluation **never
    /// decoded** (and, cold, never even copied off their disk pages).
    pub postings_skipped: u64,
    /// Queries answered **entirely** from the result cache: every live
    /// shard's partial match set was cached at the shard's current
    /// generation, so no join pipeline ran at all.
    pub result_hits: u64,
    /// Queries that ran the join pipeline for at least one shard (the
    /// complement of [`EvalStats::result_hits`] when a result cache is
    /// configured; zero when it is off).
    pub result_misses: u64,
    /// Cached per-shard partial match sets reused by queries counted in
    /// [`EvalStats::result_misses`] — the ingest story: an ingest bumps
    /// only the shards it touched, so untouched shards' partials keep
    /// serving while just the new shards are evaluated.
    pub partial_reuses: u64,
    /// Result-cache probes answered by an explicit empty entry — a
    /// shard the cache *knows* has no match for this query (including
    /// shards skip-pruned on an earlier run).
    pub negative_hits: u64,
    /// Prefetch requests this evaluation submitted (plan-time cover
    /// hints plus `ValueReader` chain lookahead; delta of the
    /// **thread-local** counters,
    /// [`si_storage::thread_prefetch_counters`] — exact per query, same
    /// attribution argument as [`EvalStats::pager_hits`]).
    pub prefetch_hints: u64,
    /// Prefetched pages this evaluation consumed: pager hits on pages a
    /// prefetch worker loaded before the cursor arrived (the overlap
    /// that actually paid off; `issued - useful` process-wide is the
    /// waste figure `si report` tracks).
    pub prefetch_useful: u64,
}

/// Matches plus statistics.
#[derive(Debug, Clone, Default)]
pub struct EvalResult {
    /// Distinct `(tid, pre-of-query-root)` pairs, sorted.
    pub matches: Vec<(TreeId, u32)>,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Whether no match was found.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Evaluates `query` against `index`. See the module docs.
pub fn evaluate(index: &SubtreeIndex, query: &Query) -> si_storage::Result<EvalResult> {
    let options = index.options();
    let cover = decompose(query, options.mss, options.coding);
    debug_assert_eq!(cover.validate(query, options.mss), Ok(()));
    match options.coding {
        Coding::FilterBased => eval_filter(index, query, &cover),
        Coding::RootSplit | Coding::SubtreeInterval => eval_structural(index, query, &cover),
    }
}

/// Filter-based evaluation: intersect tid lists, then the filtering
/// phase (§4.4.1).
fn eval_filter(
    index: &SubtreeIndex,
    query: &Query,
    cover: &Cover,
) -> si_storage::Result<EvalResult> {
    let mut stats = EvalStats {
        covers: cover.subtrees.len(),
        ..EvalStats::default()
    };
    // Resident-byte accounting: raw list bytes are transient (alive only
    // while that list decodes), the decoded tid lists stay live until the
    // intersection completes.
    let mut resident = 0usize;
    let mut lists: Vec<Vec<TreeId>> = Vec::with_capacity(cover.subtrees.len());
    for st in &cover.subtrees {
        let Some((postings, raw_bytes)) = index.postings_with_len(&st.key)? else {
            return Ok(EvalResult {
                matches: Vec::new(),
                stats,
            });
        };
        stats.postings_fetched += postings.len();
        let tid_bytes = postings.len() * std::mem::size_of::<TreeId>();
        stats.peak_posting_bytes = stats
            .peak_posting_bytes
            .max(resident + raw_bytes + tid_bytes);
        resident += tid_bytes;
        lists.push(
            postings
                .into_iter()
                .map(|p| match p {
                    Posting::Tid(tid) => tid,
                    _ => unreachable!("filter index yields tid postings"),
                })
                .collect(),
        );
    }
    stats.joins = lists.len().saturating_sub(1);
    let candidates = intersect_tids(&lists);
    let matches = validate_candidates(index, query, &candidates, &mut stats)?;
    Ok(EvalResult { matches, stats })
}

/// The filtering / post-validation phase: fetch candidate trees from the
/// data file and run the in-memory matcher.
pub(crate) fn validate_candidates(
    index: &SubtreeIndex,
    query: &Query,
    candidates: &[TreeId],
    stats: &mut EvalStats,
) -> si_storage::Result<Vec<(TreeId, u32)>> {
    validate_candidates_with(index, query, candidates, None, stats)
}

/// [`validate_candidates`] with an optional decoded-tree cache (the
/// query service's batches revisit hot candidate trees).
pub(crate) fn validate_candidates_with(
    index: &SubtreeIndex,
    query: &Query,
    candidates: &[TreeId],
    trees: Option<&crate::exec::TreeCache>,
    stats: &mut EvalStats,
) -> si_storage::Result<Vec<(TreeId, u32)>> {
    let mut matches = Vec::new();
    for &tid in candidates {
        stats.validated_trees += 1;
        match trees {
            Some(cache) => {
                let tree = cache.get(index, tid)?;
                for root in Matcher::new(&tree, query).roots() {
                    matches.push((tid, root.0));
                }
            }
            None => {
                let tree = index.store().get(tid)?;
                for root in Matcher::new(&tree, query).roots() {
                    matches.push((tid, root.0));
                }
            }
        }
    }
    matches.sort_unstable();
    matches.dedup();
    Ok(matches)
}

/// A materialized posting stream: tuples plus the query node each slot
/// binds.
struct Stream {
    qnodes: Vec<QNodeId>,
    tuples: Vec<Tuple>,
}

/// Structural evaluation for root-split and subtree-interval codings.
fn eval_structural(
    index: &SubtreeIndex,
    query: &Query,
    cover: &Cover,
) -> si_storage::Result<EvalResult> {
    let coding = index.options().coding;
    let mut stats = EvalStats {
        covers: cover.subtrees.len(),
        ..EvalStats::default()
    };

    // Cheap selectivity pre-pass (§7 future work): posting-list lengths
    // come from leaf entries without decoding. A missing key means some
    // cover subtree occurs nowhere — the query has no matches and the
    // remaining (possibly huge) lists are never touched.
    for st in &cover.subtrees {
        if index.posting_len(&st.key)?.is_none() {
            return Ok(EvalResult {
                matches: Vec::new(),
                stats,
            });
        }
    }

    // Materialize one stream per cover subtree, shortest posting list
    // first, with a running semi-join on tids: a tree absent from any
    // already-materialized stream can never survive the join phase, so
    // its postings in later (longer) lists are skipped before tuple
    // expansion. This is what makes selective queries cheap even when
    // the cover also contains a very frequent key.
    let mut fetch_order: Vec<usize> = (0..cover.subtrees.len()).collect();
    let mut lens = Vec::with_capacity(cover.subtrees.len());
    for st in &cover.subtrees {
        lens.push(index.posting_len(&st.key)?.unwrap_or(0));
    }
    fetch_order.sort_by_key(|&i| lens[i]);
    // Resident-byte accounting: raw list bytes are transient (alive only
    // while their stream is decoded and expanded); every stream's tuple
    // expansion stays live until the join phase completes.
    let mut resident = 0usize;
    let mut streams_by_cover: Vec<Option<Stream>> =
        (0..cover.subtrees.len()).map(|_| None).collect();
    let mut allowed_tids: Option<Vec<si_parsetree::TreeId>> = None;
    for &ci in &fetch_order {
        let st = &cover.subtrees[ci];
        let Some(postings) = index.postings(&st.key)? else {
            return Ok(EvalResult {
                matches: Vec::new(),
                stats,
            });
        };
        stats.postings_fetched += postings.len();
        let tid_ok = |tid: si_parsetree::TreeId| -> bool {
            match &allowed_tids {
                None => true,
                Some(list) => list.binary_search(&tid).is_ok(),
            }
        };
        let stream = match coding {
            Coding::RootSplit => Stream {
                qnodes: vec![st.root],
                tuples: postings
                    .into_iter()
                    .filter_map(|p| match p {
                        Posting::Root { tid, root } => tid_ok(tid).then_some(Tuple {
                            tid,
                            slots: Slots::one(root),
                        }),
                        _ => unreachable!("root-split index yields root postings"),
                    })
                    .collect(),
            },
            Coding::SubtreeInterval => {
                let shape = decode_key(&st.key).expect("well-formed cover key");
                // Each posting fixes one arbitrary assignment of data
                // nodes to canonical positions; automorphic reassignments
                // are equally valid and joins must see them all.
                let autos = automorphisms(&shape, 720);
                let mut tuples = Vec::new();
                for p in postings {
                    let Posting::Occurrence { tid, nodes } = p else {
                        unreachable!("interval index yields occurrence postings")
                    };
                    if !tid_ok(tid) {
                        continue;
                    }
                    for perm in &autos {
                        tuples.push(Tuple {
                            tid,
                            slots: perm.iter().map(|&j| nodes[j].0).collect(),
                        });
                    }
                }
                Stream {
                    qnodes: st.nodes.clone(),
                    tuples,
                }
            }
            Coding::FilterBased => unreachable!("handled by eval_filter"),
        };
        // The raw list bytes are transient (freed once decoded); the
        // expanded tuples stay live until the join phase completes.
        let tuple_bytes = tuples_bytes(&stream.tuples);
        stats.peak_posting_bytes = stats
            .peak_posting_bytes
            .max(resident + lens[ci] as usize + tuple_bytes);
        resident += tuple_bytes;
        if stream.tuples.is_empty() {
            return Ok(EvalResult {
                matches: Vec::new(),
                stats,
            });
        }
        // Tids of this stream become the new allowed set (it is already
        // a subset of the previous one).
        let mut tids: Vec<si_parsetree::TreeId> = stream.tuples.iter().map(|t| t.tid).collect();
        tids.dedup(); // posting order is tid-ascending
        allowed_tids = Some(tids);
        streams_by_cover[ci] = Some(stream);
    }
    let streams: Vec<Stream> = streams_by_cover
        .into_iter()
        .map(|s| s.expect("all covers materialized"))
        .collect();

    // Cross-stream predicates (derivation shared with the streaming
    // planner, `crate::plan`, so both executors enforce identical
    // semantics).
    let exposed: Vec<Vec<QNodeId>> = streams.iter().map(|s| s.qnodes.clone()).collect();
    let (preds, needs_validation) = cross_stream_predicates(query, cover, &exposed);

    // Left-deep join: smallest stream first, connected steps preferred.
    let mut remaining: Vec<usize> = (0..streams.len()).collect();
    remaining.sort_by_key(|&i| streams[i].tuples.len());
    let first = remaining.remove(0);
    let mut joined_qnodes = streams[first].qnodes.clone();
    let mut joined = streams[first].tuples.clone();
    let mut placed = vec![first];

    while !remaining.is_empty() {
        // Prefer the smallest stream connected by some predicate.
        let next_pos = remaining
            .iter()
            .position(|&s| {
                preds.iter().any(|p| {
                    (p.a == s && placed.contains(&p.b)) || (p.b == s && placed.contains(&p.a))
                })
            })
            .unwrap_or(0);
        let s = remaining.remove(next_pos);
        let stream = &streams[s];

        // Predicates between `s` and already-placed streams, split into
        // one driving join condition plus residual filters (rewritten to
        // combined slot indices). Parent/Ancestor predicates whose child
        // end is already placed cannot drive our merge forms and become
        // residuals.
        let offset = joined_qnodes.len();
        let slot_of_placed = |q: QNodeId, qnodes: &[QNodeId]| -> Option<usize> {
            qnodes.iter().position(|&x| x == q)
        };
        let mut driving: Option<(JoinKind, usize, usize)> = None;
        let mut residuals: Vec<Pred> = Vec::new();
        for p in preds.iter() {
            let (placed_q, new_q, forward) = if p.b == s && placed.contains(&p.a) {
                (p.aq, p.bq, true)
            } else if p.a == s && placed.contains(&p.b) {
                (p.bq, p.aq, false)
            } else {
                continue;
            };
            let Some(l) = slot_of_placed(placed_q, &joined_qnodes) else {
                continue;
            };
            let Some(rs) = stream.qnodes.iter().position(|&x| x == new_q) else {
                continue;
            };
            let r_combined = offset + rs;
            match (p.kind, forward) {
                (PredKind::Eq, _) => {
                    if driving.is_none() {
                        driving = Some((JoinKind::Eq, l, rs));
                    } else {
                        residuals.push(Pred::Eq(l, r_combined));
                    }
                }
                (PredKind::Parent, true) => {
                    if driving.is_none() {
                        driving = Some((JoinKind::Parent, l, rs));
                    } else {
                        residuals.push(Pred::Parent(l, r_combined));
                    }
                }
                (PredKind::Parent, false) => residuals.push(Pred::Parent(r_combined, l)),
                (PredKind::Ancestor, true) => {
                    if driving.is_none() {
                        driving = Some((JoinKind::Ancestor, l, rs));
                    } else {
                        residuals.push(Pred::Ancestor(l, r_combined));
                    }
                }
                (PredKind::Ancestor, false) => residuals.push(Pred::Ancestor(r_combined, l)),
                (PredKind::Neq, _) => residuals.push(Pred::Neq(l, r_combined)),
            }
        }
        joined = match driving {
            Some((kind, l, r)) => join(
                &joined,
                &stream.tuples,
                kind,
                l,
                r,
                &residuals,
                index.join_algo(),
            ),
            // Disconnected step (should not happen for valid covers):
            // conjunction via per-tid cross product.
            None => tid_cross_join(&joined, &stream.tuples, &residuals),
        };
        stats.joins += 1;
        stats.peak_posting_bytes = stats
            .peak_posting_bytes
            .max(resident + tuples_bytes(&joined));
        joined_qnodes.extend(stream.qnodes.iter().copied());
        placed.push(s);
        if joined.is_empty() {
            return Ok(EvalResult {
                matches: Vec::new(),
                stats,
            });
        }
    }

    if needs_validation {
        stats.used_validation = true;
        let mut tids: Vec<TreeId> = joined.iter().map(|t| t.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let matches = validate_candidates(index, query, &tids, &mut stats)?;
        return Ok(EvalResult { matches, stats });
    }

    // Project the query root.
    let root_slot = joined_qnodes
        .iter()
        .position(|&q| q == query.root())
        .expect("query root exposed by its component's covers");
    let mut set: HashSet<(TreeId, u32)> = HashSet::with_capacity(joined.len());
    for t in &joined {
        set.insert((t.tid, t.slots[root_slot].pre));
    }
    let mut matches: Vec<(TreeId, u32)> = set.into_iter().collect();
    matches.sort_unstable();
    Ok(EvalResult { matches, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_result_len_and_emptiness() {
        let r = EvalResult::default();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        let r = EvalResult {
            matches: vec![(0, 1), (2, 3)],
            stats: EvalStats::default(),
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn stream_pred_kinds_are_distinct() {
        // Guard against accidental re-ordering of the predicate enum —
        // both join planners match on these.
        assert_ne!(PredKind::Eq, PredKind::Parent);
        assert_ne!(PredKind::Parent, PredKind::Ancestor);
        assert_ne!(PredKind::Ancestor, PredKind::Neq);
    }
}
