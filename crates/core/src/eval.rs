//! Query evaluation over a [`SubtreeIndex`] (§4.3).
//!
//! The two phases of the paper:
//!
//! 1. **decomposition** — [`crate::cover::decompose`] picks the cover for
//!    the index's coding scheme and every cover subtree's posting list is
//!    fetched from the B+Tree;
//! 2. **join** — posting lists become tuple streams and a left-deep plan
//!    (smallest stream first, connected steps only) reduces them with
//!    equality and structural joins; filter-based coding instead
//!    intersects tid lists and runs the *filtering phase* (the in-memory
//!    matcher) over candidate trees.
//!
//! The result of a query is the set of distinct `(tid, pre)` pairs its
//! root maps to (DESIGN.md §5). Same-label sibling distinctness is
//! enforced with root-level `!=` predicates (minRC patches the cover so
//! the members are roots); a whole-tree post-validation fallback remains
//! as a safety net and is reported via [`EvalStats::used_validation`].

use std::collections::HashSet;

use si_parsetree::TreeId;
use si_query::matcher::Matcher;
use si_query::{Axis, QNodeId, Query};

use crate::build::SubtreeIndex;
use crate::canonical::{automorphisms, decode_key};
use crate::coding::{Coding, Posting};
use crate::cover::{decompose, Cover};
use crate::join::{intersect_tids, join, tid_cross_join, JoinKind, Pred, Tuple};

/// Instrumentation of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Cover subtrees fetched.
    pub covers: usize,
    /// Binary joins executed.
    pub joins: usize,
    /// Postings decoded across all fetched lists.
    pub postings_fetched: usize,
    /// Trees materialized and matched in a validation/filtering phase.
    pub validated_trees: usize,
    /// Whether root-split fell back to post-validation (sibling-label
    /// distinctness not expressible over roots; DESIGN.md §5).
    pub used_validation: bool,
}

/// Matches plus statistics.
#[derive(Debug, Clone, Default)]
pub struct EvalResult {
    /// Distinct `(tid, pre-of-query-root)` pairs, sorted.
    pub matches: Vec<(TreeId, u32)>,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Whether no match was found.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Evaluates `query` against `index`. See the module docs.
pub fn evaluate(index: &SubtreeIndex, query: &Query) -> si_storage::Result<EvalResult> {
    let options = index.options();
    let cover = decompose(query, options.mss, options.coding);
    debug_assert_eq!(cover.validate(query, options.mss), Ok(()));
    match options.coding {
        Coding::FilterBased => eval_filter(index, query, &cover),
        Coding::RootSplit | Coding::SubtreeInterval => eval_structural(index, query, &cover),
    }
}

/// Filter-based evaluation: intersect tid lists, then the filtering
/// phase (§4.4.1).
fn eval_filter(
    index: &SubtreeIndex,
    query: &Query,
    cover: &Cover,
) -> si_storage::Result<EvalResult> {
    let mut stats = EvalStats {
        covers: cover.subtrees.len(),
        ..EvalStats::default()
    };
    let mut lists: Vec<Vec<TreeId>> = Vec::with_capacity(cover.subtrees.len());
    for st in &cover.subtrees {
        let Some(postings) = index.postings(&st.key)? else {
            return Ok(EvalResult { matches: Vec::new(), stats });
        };
        stats.postings_fetched += postings.len();
        lists.push(
            postings
                .into_iter()
                .map(|p| match p {
                    Posting::Tid(tid) => tid,
                    _ => unreachable!("filter index yields tid postings"),
                })
                .collect(),
        );
    }
    stats.joins = lists.len().saturating_sub(1);
    let candidates = intersect_tids(&lists);
    let matches = validate_candidates(index, query, &candidates, &mut stats)?;
    Ok(EvalResult { matches, stats })
}

/// The filtering / post-validation phase: fetch candidate trees from the
/// data file and run the in-memory matcher.
pub(crate) fn validate_candidates(
    index: &SubtreeIndex,
    query: &Query,
    candidates: &[TreeId],
    stats: &mut EvalStats,
) -> si_storage::Result<Vec<(TreeId, u32)>> {
    let mut matches = Vec::new();
    for &tid in candidates {
        let tree = index.store().get(tid)?;
        stats.validated_trees += 1;
        let matcher = Matcher::new(&tree, query);
        for root in matcher.roots() {
            matches.push((tid, root.0));
        }
    }
    matches.sort_unstable();
    matches.dedup();
    Ok(matches)
}

/// A materialized posting stream: tuples plus the query node each slot
/// binds.
struct Stream {
    qnodes: Vec<QNodeId>,
    tuples: Vec<Tuple>,
}

/// Structural evaluation for root-split and subtree-interval codings.
fn eval_structural(
    index: &SubtreeIndex,
    query: &Query,
    cover: &Cover,
) -> si_storage::Result<EvalResult> {
    let coding = index.options().coding;
    let mut stats = EvalStats {
        covers: cover.subtrees.len(),
        ..EvalStats::default()
    };

    // Cheap selectivity pre-pass (§7 future work): posting-list lengths
    // come from leaf entries without decoding. A missing key means some
    // cover subtree occurs nowhere — the query has no matches and the
    // remaining (possibly huge) lists are never touched.
    for st in &cover.subtrees {
        if index.posting_len(&st.key)?.is_none() {
            return Ok(EvalResult { matches: Vec::new(), stats });
        }
    }

    // Materialize one stream per cover subtree, shortest posting list
    // first, with a running semi-join on tids: a tree absent from any
    // already-materialized stream can never survive the join phase, so
    // its postings in later (longer) lists are skipped before tuple
    // expansion. This is what makes selective queries cheap even when
    // the cover also contains a very frequent key.
    let mut fetch_order: Vec<usize> = (0..cover.subtrees.len()).collect();
    {
        let mut lens = Vec::with_capacity(cover.subtrees.len());
        for st in &cover.subtrees {
            lens.push(index.posting_len(&st.key)?.unwrap_or(0));
        }
        fetch_order.sort_by_key(|&i| lens[i]);
    }
    let mut streams_by_cover: Vec<Option<Stream>> = (0..cover.subtrees.len()).map(|_| None).collect();
    let mut allowed_tids: Option<Vec<si_parsetree::TreeId>> = None;
    for &ci in &fetch_order {
        let st = &cover.subtrees[ci];
        let Some(postings) = index.postings(&st.key)? else {
            return Ok(EvalResult { matches: Vec::new(), stats });
        };
        stats.postings_fetched += postings.len();
        let tid_ok = |tid: si_parsetree::TreeId| -> bool {
            match &allowed_tids {
                None => true,
                Some(list) => list.binary_search(&tid).is_ok(),
            }
        };
        let stream = match coding {
            Coding::RootSplit => Stream {
                qnodes: vec![st.root],
                tuples: postings
                    .into_iter()
                    .filter_map(|p| match p {
                        Posting::Root { tid, root } => tid_ok(tid)
                            .then_some(Tuple { tid, slots: vec![root] }),
                        _ => unreachable!("root-split index yields root postings"),
                    })
                    .collect(),
            },
            Coding::SubtreeInterval => {
                let shape = decode_key(&st.key).expect("well-formed cover key");
                // Each posting fixes one arbitrary assignment of data
                // nodes to canonical positions; automorphic reassignments
                // are equally valid and joins must see them all.
                let autos = automorphisms(&shape, 720);
                let mut tuples = Vec::new();
                for p in postings {
                    let Posting::Occurrence { tid, nodes } = p else {
                        unreachable!("interval index yields occurrence postings")
                    };
                    if !tid_ok(tid) {
                        continue;
                    }
                    for perm in &autos {
                        tuples.push(Tuple {
                            tid,
                            slots: perm.iter().map(|&j| nodes[j].0).collect(),
                        });
                    }
                }
                Stream {
                    qnodes: st.nodes.clone(),
                    tuples,
                }
            }
            Coding::FilterBased => unreachable!("handled by eval_filter"),
        };
        if stream.tuples.is_empty() {
            return Ok(EvalResult { matches: Vec::new(), stats });
        }
        // Tids of this stream become the new allowed set (it is already
        // a subset of the previous one).
        let mut tids: Vec<si_parsetree::TreeId> = stream.tuples.iter().map(|t| t.tid).collect();
        tids.dedup(); // posting order is tid-ascending
        allowed_tids = Some(tids);
        streams_by_cover[ci] = Some(stream);
    }
    let streams: Vec<Stream> = streams_by_cover
        .into_iter()
        .map(|s| s.expect("all covers materialized"))
        .collect();

    // Cross-stream predicates.
    let (preds, needs_validation) = build_predicates(query, cover, &streams, coding);

    // Left-deep join: smallest stream first, connected steps preferred.
    let mut remaining: Vec<usize> = (0..streams.len()).collect();
    remaining.sort_by_key(|&i| streams[i].tuples.len());
    let first = remaining.remove(0);
    let mut joined_qnodes = streams[first].qnodes.clone();
    let mut joined = streams[first].tuples.clone();
    let mut placed = vec![first];

    while !remaining.is_empty() {
        // Prefer the smallest stream connected by some predicate.
        let next_pos = remaining
            .iter()
            .position(|&s| {
                preds
                    .iter()
                    .any(|p| (p.a == s && placed.contains(&p.b)) || (p.b == s && placed.contains(&p.a)))
            })
            .unwrap_or(0);
        let s = remaining.remove(next_pos);
        let stream = &streams[s];

        // Predicates between `s` and already-placed streams, split into
        // one driving join condition plus residual filters (rewritten to
        // combined slot indices). Parent/Ancestor predicates whose child
        // end is already placed cannot drive our merge forms and become
        // residuals.
        let offset = joined_qnodes.len();
        let slot_of_placed =
            |q: QNodeId, qnodes: &[QNodeId]| -> Option<usize> { qnodes.iter().position(|&x| x == q) };
        let mut driving: Option<(JoinKind, usize, usize)> = None;
        let mut residuals: Vec<Pred> = Vec::new();
        for p in preds.iter() {
            let (placed_q, new_q, forward) = if p.b == s && placed.contains(&p.a) {
                (p.aq, p.bq, true)
            } else if p.a == s && placed.contains(&p.b) {
                (p.bq, p.aq, false)
            } else {
                continue;
            };
            let Some(l) = slot_of_placed(placed_q, &joined_qnodes) else { continue };
            let Some(rs) = stream.qnodes.iter().position(|&x| x == new_q) else { continue };
            let r_combined = offset + rs;
            match (p.kind, forward) {
                (PredKind::Eq, _) => {
                    if driving.is_none() {
                        driving = Some((JoinKind::Eq, l, rs));
                    } else {
                        residuals.push(Pred::Eq(l, r_combined));
                    }
                }
                (PredKind::Parent, true) => {
                    if driving.is_none() {
                        driving = Some((JoinKind::Parent, l, rs));
                    } else {
                        residuals.push(Pred::Parent(l, r_combined));
                    }
                }
                (PredKind::Parent, false) => residuals.push(Pred::Parent(r_combined, l)),
                (PredKind::Ancestor, true) => {
                    if driving.is_none() {
                        driving = Some((JoinKind::Ancestor, l, rs));
                    } else {
                        residuals.push(Pred::Ancestor(l, r_combined));
                    }
                }
                (PredKind::Ancestor, false) => residuals.push(Pred::Ancestor(r_combined, l)),
                (PredKind::Neq, _) => residuals.push(Pred::Neq(l, r_combined)),
            }
        }
        joined = match driving {
            Some((kind, l, r)) => join(
                &joined,
                &stream.tuples,
                kind,
                l,
                r,
                &residuals,
                index.join_algo(),
            ),
            // Disconnected step (should not happen for valid covers):
            // conjunction via per-tid cross product.
            None => tid_cross_join(&joined, &stream.tuples, &residuals),
        };
        stats.joins += 1;
        joined_qnodes.extend(stream.qnodes.iter().copied());
        placed.push(s);
        if joined.is_empty() {
            return Ok(EvalResult { matches: Vec::new(), stats });
        }
    }

    if needs_validation {
        stats.used_validation = true;
        let mut tids: Vec<TreeId> = joined.iter().map(|t| t.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let matches = validate_candidates(index, query, &tids, &mut stats)?;
        return Ok(EvalResult { matches, stats });
    }

    // Project the query root.
    let root_slot = joined_qnodes
        .iter()
        .position(|&q| q == query.root())
        .expect("query root exposed by its component's covers");
    let mut set: HashSet<(TreeId, u32)> = HashSet::with_capacity(joined.len());
    for t in &joined {
        set.insert((t.tid, t.slots[root_slot].pre));
    }
    let mut matches: Vec<(TreeId, u32)> = set.into_iter().collect();
    matches.sort_unstable();
    Ok(EvalResult { matches, stats })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredKind {
    Eq,
    Parent,
    Ancestor,
    Neq,
}

/// A predicate between two streams: `kind` relates query node `aq`
/// (exposed by stream `a`) to `bq` (exposed by stream `b`); for
/// Parent/Ancestor, `aq` is the upper end.
struct StreamPred {
    a: usize,
    b: usize,
    aq: QNodeId,
    bq: QNodeId,
    kind: PredKind,
}

/// Derives all cross-stream predicates plus the validation flag.
fn build_predicates(
    query: &Query,
    cover: &Cover,
    streams: &[Stream],
    coding: Coding,
) -> (Vec<StreamPred>, bool) {
    let exposed = |q: QNodeId| -> Vec<usize> {
        streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.qnodes.contains(&q))
            .map(|(i, _)| i)
            .collect()
    };
    let mut preds: Vec<StreamPred> = Vec::new();

    // Shared exposures: same query node in several streams.
    for q in query.nodes() {
        let ex = exposed(q);
        for w in ex.windows(2) {
            preds.push(StreamPred {
                a: w[0],
                b: w[1],
                aq: q,
                bq: q,
                kind: PredKind::Eq,
            });
        }
    }

    // Query edges across streams.
    for v in query.nodes().skip(1) {
        let u = query.parent(v).expect("non-root");
        let kind = match query.axis(v) {
            Axis::Child => PredKind::Parent,
            Axis::Descendant => PredKind::Ancestor,
        };
        for &a in &exposed(u) {
            for &b in &exposed(v) {
                if a != b {
                    preds.push(StreamPred { a, b, aq: u, bq: v, kind });
                }
            }
        }
    }

    // Same-label `/`-sibling distinctness (DESIGN.md §5).
    let mut needs_validation = false;
    for p in query.nodes() {
        let kids: Vec<QNodeId> = query.children_via(p, Axis::Child).collect();
        for (i, &u) in kids.iter().enumerate() {
            for &v in &kids[i + 1..] {
                if query.label(u) != query.label(v) {
                    continue;
                }
                // Co-residence in one cover implies distinctness (an
                // occurrence is a real subtree).
                if cover.subtrees.iter().any(|s| s.contains(u) && s.contains(v)) {
                    continue;
                }
                let eu = exposed(u);
                let ev = exposed(v);
                if eu.is_empty() || ev.is_empty() {
                    needs_validation = true;
                    continue;
                }
                for &a in &eu {
                    for &b in &ev {
                        if a != b {
                            preds.push(StreamPred { a, b, aq: u, bq: v, kind: PredKind::Neq });
                        }
                    }
                }
            }
        }
    }
    let _ = coding;
    (preds, needs_validation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_result_len_and_emptiness() {
        let r = EvalResult::default();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        let r = EvalResult {
            matches: vec![(0, 1), (2, 3)],
            stats: EvalStats::default(),
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn stream_pred_kinds_are_distinct() {
        // Guard against accidental re-ordering of the predicate enum —
        // the join planner matches on these.
        assert_ne!(PredKind::Eq, PredKind::Parent);
        assert_ne!(PredKind::Parent, PredKind::Ancestor);
        assert_ne!(PredKind::Ancestor, PredKind::Neq);
    }
}
