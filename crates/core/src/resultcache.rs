//! Byte-bounded cache of **per-shard query results** with shard-epoch
//! invalidation — the ROADMAP's `(canonical query, match set)` cache.
//!
//! An identical repeat query used to re-run its whole join pipeline;
//! real traffic is Zipfian, so hot queries dominate. This cache stores
//! the *final* answer of one query against one shard state, keyed by
//!
//! ```text
//! (canonical query bytes, coding, shard id, shard generation)
//! ```
//!
//! The generation comes from `MANIFEST.si` (version 2): `si ingest`
//! writes its new shard at a fresh generation and never touches
//! existing shards, while a rebuild stamps every shard above the old
//! maximum. A key therefore names **one immutable shard state** — no
//! explicit invalidation pass exists or is needed; entries for retired
//! `(id, generation)` pairs simply stop being probed and age out of
//! the LRU. For a monolithic (unsharded) index the whole index is
//! "shard 0, generation 0" of its open handle.
//!
//! **Partial-reuse soundness.** Shards partition the corpus by
//! contiguous tid range, so per-shard match sets are disjoint and the
//! global answer is their in-order concatenation (see
//! `si_storage::shard`). Caching per shard — not per whole query —
//! means an ingest invalidates exactly the shards it touched: a repeat
//! query reuses every untouched shard's cached partial and evaluates
//! only the new shards before the same ordered concat. The concat of
//! per-shard answers is oblivious to *where* each partial came from,
//! which is the entire soundness argument.
//!
//! **Negative entries.** Zero-match partials are stored explicitly
//! (an empty match vector still occupies key + bookkeeping bytes), so
//! the many zero-answer queries of a skewed workload — including
//! shards the planner proved empty without opening a posting list —
//! answer from the cache too. A negative entry is invalidated the
//! same way everything is: the shard that could make the query
//! non-empty is a *new* `(id, generation)`, which the probe misses.
//!
//! Match sets are stored as `Arc<Vec<u64>>` of [`pack_match`]-packed
//! `(shard-local tid, pre)` pairs: one allocation per entry, shared
//! with every reader, offset to global tids only at assembly time.
//!
//! The mechanics mirror [`crate::blockcache`]: hash-sharded
//! independently locked LRU shards, each an intrusive list over
//! variable-size entries with a byte budget of `budget / shards`, and
//! relaxed global counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use si_parsetree::{varint, TreeId};
use si_query::{Axis, QNodeId, Query};

/// Packs one shard-local match `(tid, pre)` into the cached `u64`.
#[inline]
pub fn pack_match(tid: TreeId, pre: u32) -> u64 {
    (u64::from(tid) << 32) | u64::from(pre)
}

/// Inverse of [`pack_match`].
#[inline]
pub fn unpack_match(packed: u64) -> (TreeId, u32) {
    ((packed >> 32) as TreeId, packed as u32)
}

/// Canonical cache key of a query: semantically equal queries (same
/// unordered shape, labels and axes) encode to the same bytes.
///
/// The encoding is a length-prefixed pre-order flattening with each
/// node's children sorted by their own encodings — the same
/// canonicalization idea as `canonical::canon_encode`, extended with
/// the edge axis (child vs descendant), which index keys do not carry
/// but which changes a query's answer. Length prefixes make the
/// serialization injective, so distinct queries can never collide.
pub fn canonical_query_key(query: &Query) -> Arc<[u8]> {
    fn encode(query: &Query, n: QNodeId, out: &mut Vec<u8>) {
        out.push(match query.axis(n) {
            Axis::Child => 0,
            Axis::Descendant => 1,
        });
        varint::write_u32(out, query.label(n).0);
        let mut blocks: Vec<Vec<u8>> = query
            .children(n)
            .map(|c| {
                let mut b = Vec::new();
                encode(query, c, &mut b);
                b
            })
            .collect();
        blocks.sort_unstable();
        varint::write_u64(out, blocks.len() as u64);
        for b in blocks {
            varint::write_u64(out, b.len() as u64);
            out.extend_from_slice(&b);
        }
    }
    let mut out = Vec::with_capacity(query.len() * 4);
    encode(query, query.root(), &mut out);
    Arc::from(out)
}

/// Cache identity of one per-shard partial result: canonical query
/// bytes (shared across the query's entries via `Arc`), posting coding
/// id, shard id, shard generation.
type ResultKey = (Arc<[u8]>, u8, u64, u64);

/// Tuning knobs of a [`ResultCache`].
#[derive(Debug, Clone, Copy)]
pub struct ResultCacheConfig {
    /// Total byte budget across all lock shards.
    pub budget_bytes: usize,
    /// Number of independently locked lock shards (unrelated to index
    /// shards; purely a contention knob).
    pub shards: usize,
}

impl Default for ResultCacheConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 32 << 20,
            shards: 8,
        }
    }
}

impl ResultCacheConfig {
    /// A config with the given total byte budget (other knobs default).
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            ..Self::default()
        }
    }
}

/// Counter snapshot of a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Probes served from the cache (negative entries included).
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Hits whose entry was an explicit empty match set.
    pub negative_hits: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Bytes currently resident (match sets + key + bookkeeping).
    pub current_bytes: u64,
    /// High-water mark of resident bytes (must stay ≤ the budget).
    pub peak_bytes: u64,
}

impl ResultCacheStats {
    /// Probe hit fraction in `[0, 1]`; zero when nothing was probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mirrors this snapshot into `registry` under the stable
    /// `resultcache.*` dotted names (monotone counters via
    /// `Counter::set`, resident bytes as a gauge). Call at snapshot
    /// time; the cache itself stays registry-free on its hot path.
    pub fn register_into(&self, registry: &si_obs::Registry) {
        registry.counter("resultcache.hits").set(self.hits);
        registry.counter("resultcache.misses").set(self.misses);
        registry
            .counter("resultcache.negative_hits")
            .set(self.negative_hits);
        registry
            .counter("resultcache.insertions")
            .set(self.insertions);
        registry
            .counter("resultcache.evictions")
            .set(self.evictions);
        registry
            .gauge("resultcache.bytes")
            .set(i64::try_from(self.current_bytes).unwrap_or(i64::MAX));
        registry
            .gauge("resultcache.peak_bytes")
            .set(i64::try_from(self.peak_bytes).unwrap_or(i64::MAX));
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: ResultKey,
    matches: Arc<Vec<u64>>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One lock shard: an intrusive-list LRU over variable-size entries
/// with a byte budget. Head = most recently used.
struct Shard {
    map: HashMap<ResultKey, usize>,
    slots: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            budget,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Removes the LRU entry, returning its byte size.
    fn evict_tail(&mut self) -> usize {
        let i = self.tail;
        debug_assert_ne!(i, NIL);
        self.unlink(i);
        let bytes = self.slots[i].bytes;
        let key = self.slots[i].key.clone();
        self.map.remove(&key);
        self.slots[i].matches = Arc::new(Vec::new());
        self.free.push(i);
        self.bytes -= bytes;
        bytes
    }
}

/// The sharded result cache. Cheap to share behind an `Arc`; one
/// instance serves every worker of a query service — and survives the
/// service itself across an ingest, because `(id, generation)` keys
/// keep old entries from ever answering for new shard states.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    negative_hits: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    current_bytes: AtomicU64,
    peak_bytes: AtomicU64,
}

impl ResultCache {
    /// Creates a cache per `config`.
    pub fn new(config: ResultCacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = (config.budget_bytes / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            negative_hits: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            current_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &ResultKey) -> MutexGuard<'_, Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i = h.finish() as usize % self.shards.len();
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up the partial result of `query_key` against shard
    /// `(shard, generation)` under `coding`, bumping the entry to MRU
    /// on a hit. An empty returned vector is an explicit negative
    /// entry: the shard is *known* to hold no match.
    pub fn get(
        &self,
        query_key: &Arc<[u8]>,
        coding: u8,
        shard: u64,
        generation: u64,
    ) -> Option<Arc<Vec<u64>>> {
        let rk = (query_key.clone(), coding, shard, generation);
        let mut lock = self.shard_for(&rk);
        match lock.map.get(&rk).copied() {
            Some(i) => {
                lock.touch(i);
                let matches = lock.slots[i].matches.clone();
                drop(lock);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if matches.is_empty() {
                    self.negative_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(matches)
            }
            None => {
                drop(lock);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts the partial result of `query_key` against shard
    /// `(shard, generation)`, evicting LRU entries of its lock shard
    /// until it fits. An entry larger than the whole per-lock-shard
    /// budget is not cached at all. Re-inserting refreshes the LRU
    /// position without double counting.
    pub fn insert(
        &self,
        query_key: &Arc<[u8]>,
        coding: u8,
        shard: u64,
        generation: u64,
        matches: Arc<Vec<u64>>,
    ) {
        let rk = (query_key.clone(), coding, shard, generation);
        // What an entry actually keeps resident: the match-set bytes,
        // the key bytes (negative entries pay these too) and the
        // bookkeeping slot.
        let entry_bytes = matches.len() * std::mem::size_of::<u64>()
            + query_key.len()
            + std::mem::size_of::<Entry>();
        let mut lock = self.shard_for(&rk);
        if let Some(&i) = lock.map.get(&rk) {
            lock.touch(i);
            return;
        }
        if entry_bytes > lock.budget {
            return;
        }
        // Same peak discipline as the block cache: decrement the global
        // byte counter before bytes leave a shard and increment after
        // they land, so the recorded peak never exceeds the true total
        // — which the per-shard loops keep ≤ budget.
        let mut evicted = 0u64;
        while lock.bytes + entry_bytes > lock.budget && lock.tail != NIL {
            let tail_bytes = lock.slots[lock.tail].bytes as u64;
            self.current_bytes.fetch_sub(tail_bytes, Ordering::Relaxed);
            let freed = lock.evict_tail() as u64;
            debug_assert_eq!(freed, tail_bytes);
            evicted += 1;
        }
        let entry = Entry {
            key: rk.clone(),
            matches,
            bytes: entry_bytes,
            prev: NIL,
            next: NIL,
        };
        let i = match lock.free.pop() {
            Some(i) => {
                lock.slots[i] = entry;
                i
            }
            None => {
                lock.slots.push(entry);
                lock.slots.len() - 1
            }
        };
        lock.push_front(i);
        lock.map.insert(rk, i);
        lock.bytes += entry_bytes;
        let now = self
            .current_bytes
            .fetch_add(entry_bytes as u64, Ordering::Relaxed)
            + entry_bytes as u64;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
        drop(lock);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            current_bytes: self.current_bytes.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::LabelInterner;
    use si_query::parse_query;

    fn qkey(text: &str) -> Arc<[u8]> {
        let mut interner = LabelInterner::default();
        canonical_query_key(&parse_query(text, &mut interner).unwrap())
    }

    fn matches(n: u64) -> Arc<Vec<u64>> {
        Arc::new((0..n).map(|i| pack_match(i as TreeId, 7)).collect())
    }

    #[test]
    fn pack_round_trips() {
        for &(tid, pre) in &[(0, 0), (1, 2), (u32::MAX, u32::MAX), (12345, 678)] {
            assert_eq!(unpack_match(pack_match(tid, pre)), (tid, pre));
        }
    }

    /// Semantically equal queries share a key; different axes, labels
    /// or shapes do not.
    #[test]
    fn canonical_key_identifies_equal_queries() {
        let mut interner = LabelInterner::default();
        let mut key =
            |text: &str| canonical_query_key(&parse_query(text, &mut interner).unwrap()).to_vec();
        assert_eq!(key("S(NP)(VP)"), key("S(VP)(NP)"));
        assert_eq!(key("S(NP(DT)(NN))(VP)"), key("S(VP)(NP(NN)(DT))"));
        assert_ne!(key("S(NP)(VP)"), key("S(NP)"));
        assert_ne!(key("VP(NN)"), key("VP(//NN)"));
        assert_ne!(key("S(NP)(VP)"), key("S(NP(VP))"));
        // Same multiset of labels, different structure.
        assert_ne!(key("A(B(C))"), key("A(B)(C)"));
    }

    #[test]
    fn hit_miss_negative_and_generation_isolation() {
        let cache = ResultCache::new(ResultCacheConfig::default());
        let k = qkey("NP(DT)(NN)");
        assert!(cache.get(&k, 0, 0, 0).is_none());
        cache.insert(&k, 0, 0, 0, matches(3));
        cache.insert(&k, 0, 1, 0, Arc::new(Vec::new())); // negative
        assert_eq!(cache.get(&k, 0, 0, 0).unwrap().len(), 3);
        assert!(cache.get(&k, 0, 1, 0).unwrap().is_empty());
        // A bumped generation is a different shard state: miss.
        assert!(cache.get(&k, 0, 0, 1).is_none());
        // A different coding is a different answer encoding path: miss.
        assert!(cache.get(&k, 2, 0, 0).is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.negative_hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.insertions, 2);
    }

    /// Satellite: inserted bytes — match sets plus negative entries
    /// plus key/bookkeeping overhead — never exceed the configured
    /// budget, at any instant.
    #[test]
    fn byte_budget_is_never_exceeded() {
        let budget = 4 << 10;
        let cache = ResultCache::new(ResultCacheConfig {
            budget_bytes: budget,
            shards: 1,
        });
        let k = qkey("S(NP)(VP)");
        for shard in 0..256u64 {
            // Mix real and negative entries; both carry overhead.
            let m = if shard % 3 == 0 {
                Arc::new(Vec::new())
            } else {
                matches(16)
            };
            cache.insert(&k, 0, shard, 1, m);
            let s = cache.stats();
            assert!(
                s.current_bytes as usize <= budget,
                "shard {shard}: {} > {budget}",
                s.current_bytes
            );
        }
        let s = cache.stats();
        assert!(s.peak_bytes as usize <= budget, "peak {}", s.peak_bytes);
        assert!(s.evictions > 0, "tiny budget must evict");
    }

    /// Satellite: eviction is LRU-ordered — touching an old entry
    /// saves it; the untouched one goes first.
    #[test]
    fn eviction_is_lru_ordered() {
        let k = qkey("NP(NN)");
        let probe = ResultCache::new(ResultCacheConfig {
            budget_bytes: 1 << 20,
            shards: 1,
        });
        probe.insert(&k, 0, 0, 0, matches(8));
        let per_entry = probe.stats().current_bytes as usize;
        // Room for exactly two entries.
        let cache = ResultCache::new(ResultCacheConfig {
            budget_bytes: per_entry * 2,
            shards: 1,
        });
        cache.insert(&k, 0, 0, 0, matches(8));
        cache.insert(&k, 0, 1, 0, matches(8));
        // Touch shard 0 so shard 1 is LRU, then overflow.
        assert!(cache.get(&k, 0, 0, 0).is_some());
        cache.insert(&k, 0, 2, 0, matches(8));
        assert!(cache.get(&k, 0, 0, 0).is_some(), "MRU entry evicted");
        assert!(cache.get(&k, 0, 1, 0).is_none(), "LRU entry survived");
        assert!(cache.get(&k, 0, 2, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_is_not_cached() {
        let cache = ResultCache::new(ResultCacheConfig {
            budget_bytes: 64,
            shards: 1,
        });
        let k = qkey("NP(NN)");
        cache.insert(&k, 0, 0, 0, matches(1024));
        assert!(cache.get(&k, 0, 0, 0).is_none());
        assert_eq!(cache.stats().current_bytes, 0);
    }

    #[test]
    fn reinsert_refreshes_without_double_counting() {
        let cache = ResultCache::new(ResultCacheConfig::default());
        let k = qkey("NP(NN)");
        cache.insert(&k, 0, 0, 0, matches(4));
        let once = cache.stats().current_bytes;
        cache.insert(&k, 0, 0, 0, matches(4));
        assert_eq!(cache.stats().current_bytes, once);
        assert_eq!(cache.stats().insertions, 1);
    }
}
