//! Structural and equality joins over posting-derived tuple streams.
//!
//! The join phase (§4.3) combines the posting lists of a cover's
//! subtrees. Our engine materializes each subtree's postings into
//! [`Tuple`]s — one [`NodeVal`] slot per query node the subtree exposes —
//! and reduces them with binary joins:
//!
//! * **equality** joins on a shared query node (two covers overlapping on
//!   a node must map it to the same data node) — sort-merge;
//! * **structural** joins for query edges whose endpoints live in
//!   different covers — parent-child or ancestor-descendant on interval
//!   codes, using **MPMGJN** (Zhang et al., SIGMOD 2001 — the paper's off-the-shelf
//!   choice) or **Stack-Tree** (Al-Khalifa et al., ICDE 2002 — the paper's
//!   suggested improvement; our ablation);
//! * residual predicates (extra equalities, level checks, distinctness
//!   between same-label `/`-siblings) applied as filters on the joined
//!   tuples.

use si_parsetree::TreeId;

use crate::coding::NodeVal;

/// Inline slot capacity of [`Slots`]: tuples bind one slot per exposed
/// query node, and workload queries rarely exceed this many — so the
/// hot pipeline runs allocation-free (the query service's throughput
/// depends on it).
const INLINE_SLOTS: usize = 6;

const ZERO_VAL: NodeVal = NodeVal {
    pre: 0,
    post: 0,
    level: 0,
};

/// A small-vector of bound node values: up to `INLINE_SLOTS` (4) values
/// inline, spilling to the heap beyond that. Dereferences to
/// `[NodeVal]`, so indexing and iteration read like a `Vec`.
#[derive(Debug, Clone)]
pub struct Slots {
    inline_len: u8,
    inline: [NodeVal; INLINE_SLOTS],
    spill: Vec<NodeVal>,
}

impl Slots {
    /// An empty slot vector.
    pub fn new() -> Self {
        Self {
            inline_len: 0,
            inline: [ZERO_VAL; INLINE_SLOTS],
            spill: Vec::new(),
        }
    }

    /// A single-slot vector (the root-split scan's shape).
    pub fn one(v: NodeVal) -> Self {
        let mut s = Self::new();
        s.inline[0] = v;
        s.inline_len = 1;
        s
    }

    /// Builds from a slice.
    pub fn from_slice(vals: &[NodeVal]) -> Self {
        let mut s = Self::new();
        s.extend_from_slice(vals);
        s
    }

    /// The concatenation of two slot slices (join output shape).
    pub fn combined(l: &[NodeVal], r: &[NodeVal]) -> Self {
        let mut s = Self::new();
        if l.len() + r.len() > INLINE_SLOTS {
            s.spill.reserve(l.len() + r.len());
        }
        s.extend_from_slice(l);
        s.extend_from_slice(r);
        s
    }

    /// Appends one value.
    pub fn push(&mut self, v: NodeVal) {
        if self.spill.is_empty() {
            if (self.inline_len as usize) < INLINE_SLOTS {
                self.inline[self.inline_len as usize] = v;
                self.inline_len += 1;
                return;
            }
            // Spill: move the inline prefix to the heap once.
            self.spill.reserve(2 * INLINE_SLOTS);
            self.spill.extend_from_slice(&self.inline[..INLINE_SLOTS]);
            self.inline_len = 0;
        }
        self.spill.push(v);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, vals: &[NodeVal]) {
        for &v in vals {
            self.push(v);
        }
    }

    /// Heap bytes in use (zero while inline).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.spill.capacity() * std::mem::size_of::<NodeVal>()
    }
}

impl Default for Slots {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Slots {
    type Target = [NodeVal];

    fn deref(&self) -> &[NodeVal] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len as usize]
        } else {
            &self.spill
        }
    }
}

impl PartialEq for Slots {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Slots {}

impl From<Vec<NodeVal>> for Slots {
    fn from(vals: Vec<NodeVal>) -> Self {
        Self::from_slice(&vals)
    }
}

impl FromIterator<NodeVal> for Slots {
    fn from_iter<I: IntoIterator<Item = NodeVal>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

/// One intermediate result row: a tree plus the data-node values bound to
/// a set of slots (the caller tracks which query node each slot means).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// The tree all slots live in.
    pub tid: TreeId,
    /// Bound node values.
    pub slots: Slots,
}

/// Approximate resident size of a tuple (memory instrumentation shared
/// by both executors).
pub(crate) fn tuple_bytes(t: &Tuple) -> usize {
    std::mem::size_of::<Tuple>() + t.slots.heap_bytes()
}

/// Sum of [`tuple_bytes`] over a buffer.
pub(crate) fn tuples_bytes(ts: &[Tuple]) -> usize {
    ts.iter().map(tuple_bytes).sum()
}

/// The driving condition of a binary join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Left and right slots bind the same data node.
    Eq,
    /// Left slot is the parent of the right slot.
    Parent,
    /// Left slot is a proper ancestor of the right slot.
    Ancestor,
}

/// A predicate over the *combined* slot vector (left slots first, then
/// right slots), applied as a filter after the driving join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// Slots bind the same node.
    Eq(usize, usize),
    /// First slot is parent of second.
    Parent(usize, usize),
    /// First slot is a proper ancestor of second.
    Ancestor(usize, usize),
    /// Slots bind distinct nodes (sibling distinctness).
    Neq(usize, usize),
}

impl Pred {
    /// Evaluates against a combined slot vector.
    pub fn holds(&self, slots: &[NodeVal]) -> bool {
        match *self {
            Pred::Eq(a, b) => slots[a].pre == slots[b].pre,
            Pred::Parent(a, b) => slots[a].is_parent_of(&slots[b]),
            Pred::Ancestor(a, b) => slots[a].is_ancestor_of(&slots[b]),
            Pred::Neq(a, b) => slots[a].pre != slots[b].pre,
        }
    }
}

/// Structural-join algorithm selector (the ablation of DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Multi-Predicate Merge Join (the paper's default).
    Mpmgjn,
    /// Stack-Tree join.
    StackTree,
}

/// Joins `left` and `right` on `kind` over `(left_slot, right_slot)`,
/// then filters by `residual` predicates (combined indexing). Both
/// inputs may be in arbitrary order; they are sorted as needed.
pub fn join(
    left: &[Tuple],
    right: &[Tuple],
    kind: JoinKind,
    left_slot: usize,
    right_slot: usize,
    residual: &[Pred],
    algo: JoinAlgo,
) -> Vec<Tuple> {
    let mut out = match kind {
        JoinKind::Eq => equi_join(left, right, left_slot, right_slot),
        JoinKind::Parent | JoinKind::Ancestor => match algo {
            JoinAlgo::Mpmgjn => mpmgjn(left, right, kind, left_slot, right_slot),
            JoinAlgo::StackTree => stack_tree(left, right, kind, left_slot, right_slot),
        },
    };
    if !residual.is_empty() {
        out.retain(|t| residual.iter().all(|p| p.holds(&t.slots)));
    }
    out
}

/// Cross-joins tuples per tid (fallback when no predicate connects two
/// streams; rare — only disconnected join graphs reach this).
pub fn tid_cross_join(left: &[Tuple], right: &[Tuple], residual: &[Pred]) -> Vec<Tuple> {
    let mut lrefs: Vec<&Tuple> = left.iter().collect();
    let mut rrefs: Vec<&Tuple> = right.iter().collect();
    lrefs.sort_by_key(|t| t.tid);
    rrefs.sort_by_key(|t| t.tid);
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < lrefs.len() && j < rrefs.len() {
        match lrefs[i].tid.cmp(&rrefs[j].tid) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let tid = lrefs[i].tid;
                let i_end = (i..lrefs.len())
                    .find(|&x| lrefs[x].tid != tid)
                    .unwrap_or(lrefs.len());
                let j_end = (j..rrefs.len())
                    .find(|&x| rrefs[x].tid != tid)
                    .unwrap_or(rrefs.len());
                for l in &lrefs[i..i_end] {
                    for r in &rrefs[j..j_end] {
                        let c = combine(l, r);
                        if residual.iter().all(|p| p.holds(&c.slots)) {
                            out.push(c);
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Intersects sorted, deduplicated tid lists (filter-based coding's join
/// phase: "pairwise intersection of these lists", §4.4.1).
pub fn intersect_tids(lists: &[Vec<TreeId>]) -> Vec<TreeId> {
    if lists.is_empty() {
        return Vec::new();
    }
    // Start from the shortest list: intersection can only shrink.
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|&i| lists[i].len());
    let mut acc = lists[order[0]].clone();
    for &i in &order[1..] {
        let other = &lists[i];
        let mut next = Vec::with_capacity(acc.len().min(other.len()));
        let (mut a, mut b) = (0, 0);
        while a < acc.len() && b < other.len() {
            match acc[a].cmp(&other[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    next.push(acc[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        acc = next;
        if acc.is_empty() {
            break;
        }
    }
    acc
}

fn sort_by_slot(tuples: &[Tuple], slot: usize) -> Vec<&Tuple> {
    let mut refs: Vec<&Tuple> = tuples.iter().collect();
    refs.sort_by_key(|t| (t.tid, t.slots[slot].pre));
    refs
}

/// Concatenates two tuples of the same tree (join output); shared by
/// the materializing evaluator and the streaming operators.
pub(crate) fn combine(l: &Tuple, r: &Tuple) -> Tuple {
    Tuple {
        tid: l.tid,
        slots: Slots::combined(&l.slots, &r.slots),
    }
}

/// Sort-merge equality join on `(tid, pre)`.
fn equi_join(left: &[Tuple], right: &[Tuple], ls: usize, rs: usize) -> Vec<Tuple> {
    let lrefs = sort_by_slot(left, ls);
    let rrefs = sort_by_slot(right, rs);
    let key = |t: &Tuple, s: usize| (t.tid, t.slots[s].pre);
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < lrefs.len() && j < rrefs.len() {
        match key(lrefs[i], ls).cmp(&key(rrefs[j], rs)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full cross-product of the equal-key groups.
                let k = key(lrefs[i], ls);
                let i_end = (i..lrefs.len())
                    .find(|&x| key(lrefs[x], ls) != k)
                    .unwrap_or(lrefs.len());
                let j_end = (j..rrefs.len())
                    .find(|&x| key(rrefs[x], rs) != k)
                    .unwrap_or(rrefs.len());
                for l in &lrefs[i..i_end] {
                    for r in &rrefs[j..j_end] {
                        out.push(combine(l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Multi-Predicate Merge Join (Zhang et al.): both sides sorted by
/// `(tid, pre)`; for each right tuple, scan the window of left tuples
/// whose interval can contain it.
fn mpmgjn(left: &[Tuple], right: &[Tuple], kind: JoinKind, ls: usize, rs: usize) -> Vec<Tuple> {
    let lrefs = sort_by_slot(left, ls);
    let rrefs = sort_by_slot(right, rs);
    let mut out = Vec::new();
    let mut lo = 0; // first left candidate for the current tid window
    for r in &rrefs {
        let rv = r.slots[rs];
        // Advance past earlier trees.
        while lo < lrefs.len() && lrefs[lo].tid < r.tid {
            lo += 1;
        }
        let mut i = lo;
        // Candidates: same tid, l.pre < r.pre. As `i` only moves forward
        // within a tid group we re-scan from `lo`; the windows in parse
        // trees are short (tree sizes ~ tens of nodes).
        while i < lrefs.len() && lrefs[i].tid == r.tid && lrefs[i].slots[ls].pre < rv.pre {
            let lv = lrefs[i].slots[ls];
            let ok = match kind {
                JoinKind::Parent => lv.is_parent_of(&rv),
                JoinKind::Ancestor => lv.is_ancestor_of(&rv),
                JoinKind::Eq => unreachable!("Eq uses equi_join"),
            };
            if ok {
                out.push(combine(lrefs[i], r));
            }
            i += 1;
        }
    }
    out
}

/// Stack-Tree join (Al-Khalifa et al.): a single merged pass with a
/// stack of open ancestors.
fn stack_tree(left: &[Tuple], right: &[Tuple], kind: JoinKind, ls: usize, rs: usize) -> Vec<Tuple> {
    let lrefs = sort_by_slot(left, ls);
    let rrefs = sort_by_slot(right, rs);
    let mut out = Vec::new();
    let mut stack: Vec<&Tuple> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while j < rrefs.len() {
        let r = rrefs[j];
        let rv = r.slots[rs];
        // Pop ancestors that cannot contain r (different tree or closed
        // interval).
        while let Some(top) = stack.last() {
            let tv = top.slots[ls];
            if top.tid < r.tid || (top.tid == r.tid && tv.post < rv.post && tv.pre < rv.pre) {
                // top interval ends before r begins iff post < r.post and
                // it is not an ancestor; precise check below.
                if top.tid < r.tid || !tv.is_ancestor_of(&rv) {
                    stack.pop();
                    continue;
                }
            }
            break;
        }
        // Push left tuples that start before r.
        while i < lrefs.len()
            && (lrefs[i].tid < r.tid || (lrefs[i].tid == r.tid && lrefs[i].slots[ls].pre < rv.pre))
        {
            let lv = lrefs[i].slots[ls];
            if lrefs[i].tid == r.tid && lv.is_ancestor_of(&rv) {
                // Keep only nodes on the ancestor path of r.
                while let Some(top) = stack.last() {
                    if top.tid != r.tid || !top.slots[ls].is_ancestor_of(&rv) {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(lrefs[i]);
            }
            i += 1;
        }
        // Everything on the stack that is an ancestor of r joins.
        for l in &stack {
            if l.tid != r.tid {
                continue;
            }
            let lv = l.slots[ls];
            let ok = match kind {
                JoinKind::Parent => lv.is_parent_of(&rv),
                JoinKind::Ancestor => lv.is_ancestor_of(&rv),
                JoinKind::Eq => unreachable!("Eq uses equi_join"),
            };
            if ok {
                out.push(combine(l, r));
            }
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nv(pre: u32, post: u32, level: u16) -> NodeVal {
        NodeVal { pre, post, level }
    }

    fn t1(tid: TreeId, v: NodeVal) -> Tuple {
        Tuple {
            tid,
            slots: Slots::one(v),
        }
    }

    /// A small synthetic tree (pre, post, level):
    ///   0:(0,5,0) root
    ///   1:(1,2,1) ├ a
    ///   2:(2,0,2) │ └ b
    ///   3:(3,1,2) │ (sibling of b)  -- child of a
    ///   4:(4,4,1) └ c
    ///   5:(5,3,2)   └ d
    fn nodes() -> Vec<NodeVal> {
        vec![
            nv(0, 5, 0),
            nv(1, 2, 1),
            nv(2, 0, 2),
            nv(3, 1, 2),
            nv(4, 4, 1),
            nv(5, 3, 2),
        ]
    }

    #[test]
    fn equi_join_matches_on_tid_and_pre() {
        let n = nodes();
        let left = vec![t1(1, n[1]), t1(2, n[1]), t1(2, n[4])];
        let right = vec![t1(2, n[1]), t1(2, n[2]), t1(3, n[1])];
        let out = join(&left, &right, JoinKind::Eq, 0, 0, &[], JoinAlgo::Mpmgjn);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tid, 2);
        assert_eq!(out[0].slots.len(), 2);
    }

    #[test]
    fn equi_join_cross_product_on_duplicates() {
        let n = nodes();
        let left = vec![t1(1, n[0]), t1(1, n[0])];
        let right = vec![t1(1, n[0]), t1(1, n[0]), t1(1, n[0])];
        let out = join(&left, &right, JoinKind::Eq, 0, 0, &[], JoinAlgo::Mpmgjn);
        assert_eq!(out.len(), 6);
    }

    fn structural_pairs(kind: JoinKind, algo: JoinAlgo) -> Vec<(u32, u32)> {
        let n = nodes();
        let all: Vec<Tuple> = n.iter().map(|&v| t1(7, v)).collect();
        let mut pairs: Vec<(u32, u32)> = join(&all, &all, kind, 0, 0, &[], algo)
            .into_iter()
            .map(|t| (t.slots[0].pre, t.slots[1].pre))
            .collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn ancestor_join_finds_all_containments() {
        let want = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (1, 3),
            (4, 5),
        ];
        assert_eq!(structural_pairs(JoinKind::Ancestor, JoinAlgo::Mpmgjn), want);
        assert_eq!(
            structural_pairs(JoinKind::Ancestor, JoinAlgo::StackTree),
            want
        );
    }

    #[test]
    fn parent_join_checks_level() {
        let want = vec![(0, 1), (0, 4), (1, 2), (1, 3), (4, 5)];
        assert_eq!(structural_pairs(JoinKind::Parent, JoinAlgo::Mpmgjn), want);
        assert_eq!(
            structural_pairs(JoinKind::Parent, JoinAlgo::StackTree),
            want
        );
    }

    #[test]
    fn joins_never_cross_trees() {
        let n = nodes();
        let left = vec![t1(1, n[0])];
        let right = vec![t1(2, n[1])];
        for algo in [JoinAlgo::Mpmgjn, JoinAlgo::StackTree] {
            assert!(join(&left, &right, JoinKind::Ancestor, 0, 0, &[], algo).is_empty());
        }
    }

    #[test]
    fn residual_predicates_filter() {
        let n = nodes();
        let left = vec![Tuple {
            tid: 1,
            slots: Slots::from_slice(&[n[1], n[2]]),
        }];
        let right = vec![t1(1, n[2]), t1(1, n[3])];
        // Join a's tuple to children of a, requiring the right node to
        // differ from slot 1 (which holds b = pre 2).
        let out = join(
            &left,
            &right,
            JoinKind::Parent,
            0,
            0,
            &[Pred::Neq(1, 2)],
            JoinAlgo::Mpmgjn,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slots[2].pre, 3);
    }

    #[test]
    fn pred_holds_all_variants() {
        let n = nodes();
        let slots = vec![n[0], n[1], n[2]];
        assert!(Pred::Ancestor(0, 2).holds(&slots));
        assert!(Pred::Parent(1, 2).holds(&slots));
        assert!(!Pred::Parent(0, 2).holds(&slots));
        assert!(Pred::Neq(0, 1).holds(&slots));
        assert!(Pred::Eq(1, 1).holds(&slots));
    }

    #[test]
    fn intersect_tids_basics() {
        assert_eq!(
            intersect_tids(&[vec![1, 3, 5, 7], vec![3, 4, 5], vec![0, 3, 5, 9]]),
            vec![3, 5]
        );
        assert_eq!(intersect_tids(&[vec![1, 2], vec![3]]), Vec::<TreeId>::new());
        assert_eq!(intersect_tids(&[]), Vec::<TreeId>::new());
        assert_eq!(intersect_tids(&[vec![2, 4]]), vec![2, 4]);
    }

    #[test]
    fn unsorted_inputs_are_handled() {
        let n = nodes();
        let left = vec![t1(2, n[0]), t1(1, n[0])];
        let right = vec![t1(1, n[5]), t1(2, n[1])];
        for algo in [JoinAlgo::Mpmgjn, JoinAlgo::StackTree] {
            let out = join(&left, &right, JoinKind::Ancestor, 0, 0, &[], algo);
            assert_eq!(out.len(), 2, "{algo:?}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn mpmgjn_and_stacktree_agree_on_random_inputs() {
        // Pseudo-random intervals built from a simple LCG; both
        // algorithms must produce identical pair sets.
        let mut state = 88172645463325252u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            // Build a random forest per tid by nesting intervals.
            let mut tuples = Vec::new();
            for tid in 0..4u32 {
                // Random binary tree over 15 nodes via pre/post generation.
                let n = 15;
                let mut pres: Vec<u32> = (0..n).collect();
                // Random parent pointers forming a tree rooted at 0.
                let mut parent = vec![0usize; n as usize];
                for i in 1..n as usize {
                    parent[i] = (rnd() % i as u64) as usize;
                }
                // Compute post and level from the tree.
                let mut children: Vec<Vec<usize>> = vec![Vec::new(); n as usize];
                for i in 1..n as usize {
                    children[parent[i]].push(i);
                }
                let mut post = vec![0u32; n as usize];
                let mut level = vec![0u16; n as usize];
                let mut counter = 0u32;
                fn dfs(
                    v: usize,
                    children: &[Vec<usize>],
                    post: &mut [u32],
                    level: &mut [u16],
                    counter: &mut u32,
                    depth: u16,
                ) {
                    level[v] = depth;
                    for &c in &children[v] {
                        dfs(c, children, post, level, counter, depth + 1);
                    }
                    post[v] = *counter;
                    *counter += 1;
                }
                dfs(0, &children, &mut post, &mut level, &mut counter, 0);
                // NOTE: `pre` from parent order is not a true DFS pre
                // rank; recompute with a second DFS.
                let mut pre = vec![0u32; n as usize];
                let mut c2 = 0u32;
                fn dfs_pre(v: usize, children: &[Vec<usize>], pre: &mut [u32], c: &mut u32) {
                    pre[v] = *c;
                    *c += 1;
                    for &ch in &children[v] {
                        dfs_pre(ch, children, pre, c);
                    }
                }
                dfs_pre(0, &children, &mut pre, &mut c2);
                let _ = pres.pop();
                for i in 0..n as usize {
                    tuples.push(t1(tid, nv(pre[i], post[i], level[i])));
                }
            }
            // Random subsets as join sides.
            let left: Vec<Tuple> = tuples.iter().filter(|_| rnd() % 2 == 0).cloned().collect();
            let right: Vec<Tuple> = tuples.iter().filter(|_| rnd() % 2 == 0).cloned().collect();
            for kind in [JoinKind::Ancestor, JoinKind::Parent] {
                let mut a: Vec<(u32, u32, u32)> =
                    join(&left, &right, kind, 0, 0, &[], JoinAlgo::Mpmgjn)
                        .into_iter()
                        .map(|t| (t.tid, t.slots[0].pre, t.slots[1].pre))
                        .collect();
                let mut b: Vec<(u32, u32, u32)> =
                    join(&left, &right, kind, 0, 0, &[], JoinAlgo::StackTree)
                        .into_iter()
                        .map(|t| (t.tid, t.slots[0].pre, t.slots[1].pre))
                        .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{kind:?}");
            }
        }
    }
}
