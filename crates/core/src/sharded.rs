//! Tid-range sharded indexes: parallel build, scatter-gather execution
//! and incremental ingest.
//!
//! A monolithic `index.bt` caps corpus size at single-file build
//! memory/time and serializes index construction. This module partitions
//! the corpus **by contiguous tree-id range** into N shards, each a full
//! self-contained [`SubtreeIndex`] (corpus store, B+Tree, stats
//! segment), described by a [`ShardManifest`] (`MANIFEST.si`, see
//! `si_storage::shard`). The paper's posting lists are tid-sorted under
//! all three codings (§4.4), which makes tid-range partitioning the
//! natural axis: shard-local match sets are disjoint and already
//! ordered, so the global answer is per-shard answers **concatenated**
//! in shard order with local tids offset by the shard base — no dedup,
//! no merge sort.
//!
//! Three capabilities fall out:
//!
//! * **Parallel build** ([`ShardedIndex::build`]): shards build
//!   independently on a worker pool, each reusing one of the existing
//!   build paths (in-memory, enumeration-parallel, external-merge).
//!   Unlike `SubtreeIndex::build_parallel`, nothing is stitched
//!   afterwards — per-key fragments never cross shard boundaries — and
//!   the per-shard aggregation maps stay small.
//! * **Scatter-gather queries** ([`ShardedIndex::evaluate`]): every
//!   shard plans with its *own* stats segment. Before a shard is even
//!   consulted, its per-key statistics can prove it empty — a cover key
//!   absent from the shard, or (cost-based planner) shard-local tid
//!   ranges disjoint — and the whole shard is skipped
//!   ([`EvalStats::shards_skipped`]). Live shards evaluate in parallel.
//! * **Incremental ingest** ([`ShardedIndex::ingest`]): new documents
//!   become a fresh shard (with its stats segment, built like any
//!   other); only `MANIFEST.si` is rewritten, atomically. Existing shard
//!   files are never touched — the first update path that does not
//!   rebuild the world.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use si_obs::Stage;
use si_parsetree::{LabelInterner, ParseTree, TreeId};
use si_query::Query;
use si_storage::{KeyStats, Result, ShardEntry, ShardManifest, StorageError};

use crate::build::{IndexOptions, IndexStats, SubtreeIndex};
use crate::coding::Coding;
use crate::cover::decompose;
use crate::eval::{EvalResult, EvalStats};
use crate::exec::{ExecContext, ExecMode};
use crate::plan::PlannerMode;
use crate::stats::intersect_tid_ranges;

/// Which single-index build path each shard uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBuildMode {
    /// In-memory aggregation ([`SubtreeIndex::build`]) — the default;
    /// shard-level workers already use every core.
    #[default]
    InMemory,
    /// Enumeration-parallel build within each shard
    /// ([`SubtreeIndex::build_parallel`] with this many threads).
    Parallel(usize),
    /// Bounded-memory external merge ([`SubtreeIndex::build_external`]).
    External,
}

/// Knobs of a sharded build.
#[derive(Debug, Clone, Copy)]
pub struct ShardedBuildConfig {
    /// Number of tid-range shards (clamped to the tree count).
    pub shards: usize,
    /// Worker threads building shards concurrently.
    pub workers: usize,
    /// Build path used inside each shard.
    pub mode: ShardBuildMode,
}

impl Default for ShardedBuildConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mode: ShardBuildMode::InMemory,
        }
    }
}

/// A tid-range partitioned index: N per-shard [`SubtreeIndex`]es plus
/// the manifest tying them together. See the module docs.
pub struct ShardedIndex {
    dir: PathBuf,
    manifest: ShardManifest,
    shards: Vec<Arc<SubtreeIndex>>,
    exec_mode: ExecMode,
    query_threads: usize,
}

impl ShardedIndex {
    /// Builds a sharded index over `trees` at `dir`: the corpus is split
    /// into `config.shards` contiguous tid ranges and each range becomes
    /// a full per-shard index, built concurrently by `config.workers`
    /// worker threads. All shards share `interner`, so canonical keys
    /// agree across shards (and with any monolithic index over the same
    /// corpus).
    pub fn build(
        dir: &Path,
        trees: &[ParseTree],
        interner: &LabelInterner,
        options: IndexOptions,
        config: ShardedBuildConfig,
    ) -> Result<Self> {
        if trees.is_empty() {
            return Err(StorageError::OutOfRange(
                "sharded build needs at least one tree".into(),
            ));
        }
        std::fs::create_dir_all(dir)?;
        // Serialize against a concurrent ingest (same lock): a rebuild
        // racing an in-flight ingest would otherwise interleave the
        // teardown below with the ingest's shard build + manifest
        // rewrite and wedge the directory.
        let _lock = acquire_writer_lock(dir)?;
        // A rebuild into a directory that already held a sharded index
        // stamps its shards *above* the old maximum generation: shard
        // ids restart at 0, so a result cache outliving the rebuild
        // must see fresh `(id, generation)` keys or it would serve the
        // previous corpus's answers.
        let generation = ShardManifest::read(dir)
            .map(|old| old.max_generation() + 1)
            .unwrap_or(0);
        // Rebuilding over an existing sharded directory: tear the old
        // layout down *first* (manifest before shard dirs). The old
        // manifest is replaced only at the very end of the build, so
        // leaving it in place would let a crash mid-build — or a
        // concurrent reader — pair the stale manifest with partially
        // overwritten shard directories and serve a mixed corpus.
        remove_sharded_layout_unlocked(dir)?;
        // The reverse shadowing hazard of the monolithic rebuild path:
        // a stale monolithic index left in this directory would double
        // disk and, should a crash land before the manifest write, be
        // silently served by `AnyIndex::open` with the old corpus's
        // answers.
        for stale in ["index.bt", "si.meta"] {
            std::fs::remove_file(dir.join(stale)).ok();
        }
        std::fs::remove_dir_all(dir.join("corpus")).ok();
        let shards = config.shards.clamp(1, trees.len());
        let chunk = trees.len().div_ceil(shards);
        let entries: Vec<ShardEntry> = trees
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| ShardEntry {
                id: i as u64,
                base: (i * chunk) as TreeId,
                len: slice.len() as TreeId,
                generation,
            })
            .collect();

        let built: Vec<Mutex<Option<SubtreeIndex>>> =
            entries.iter().map(|_| Mutex::new(None)).collect();
        let first_error: Mutex<Option<StorageError>> = Mutex::new(None);
        // One shard failing (disk full, I/O error) makes the whole
        // build fail, so other workers stop claiming shards instead of
        // burning minutes (and disk) on work that will be thrown away.
        let failed = std::sync::atomic::AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        let workers = config.workers.clamp(1, entries.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while !failed.load(Ordering::Acquire) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(entry) = entries.get(i) else { break };
                        let slice =
                            &trees[entry.base as usize..entry.base as usize + entry.len as usize];
                        let shard_dir = dir.join(entry.dir_name());
                        match build_one_shard(&shard_dir, slice, interner, options, config.mode) {
                            Ok(index) => *built[i].lock().unwrap() = Some(index),
                            Err(e) => {
                                first_error.lock().unwrap().get_or_insert(e);
                                failed.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.lock().unwrap().take() {
            return Err(e);
        }

        let manifest = ShardManifest {
            mss: options.mss as u64,
            coding: options.coding.id(),
            shards: entries,
        };
        manifest.write(dir)?;
        let shards = built
            .into_iter()
            .map(|slot| Arc::new(slot.into_inner().unwrap().expect("worker built shard")))
            .collect();
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest,
            shards,
            exec_mode: ExecMode::Streaming,
            query_threads: default_query_threads(),
        })
    }

    /// Opens a sharded index directory (its `MANIFEST.si` plus every
    /// shard), validating that each shard agrees with the manifest on
    /// options and tree count.
    pub fn open(dir: &Path) -> Result<Self> {
        let manifest = ShardManifest::read(dir)?;
        let options = manifest_options(&manifest)?;
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            let shard = SubtreeIndex::open(&dir.join(entry.dir_name()))?;
            if shard.options() != options {
                return Err(StorageError::Corrupt(format!(
                    "shard {} options disagree with manifest",
                    entry.dir_name()
                )));
            }
            if shard.store().len() != entry.len as usize {
                return Err(StorageError::Corrupt(format!(
                    "shard {} holds {} trees, manifest says {}",
                    entry.dir_name(),
                    shard.store().len(),
                    entry.len
                )));
            }
            shards.push(Arc::new(shard));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest,
            shards,
            exec_mode: ExecMode::Streaming,
            query_threads: default_query_threads(),
        })
    }

    /// Whether `dir` holds a sharded index (vs a monolithic one).
    pub fn is_sharded(dir: &Path) -> bool {
        ShardManifest::exists(dir)
    }

    /// The index directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// The per-shard indexes, in manifest (tid) order.
    pub fn shards(&self) -> &[Arc<SubtreeIndex>] {
        &self.shards
    }

    /// The shared build options.
    pub fn options(&self) -> IndexOptions {
        manifest_options(&self.manifest).expect("validated at open/build")
    }

    /// Total trees across all shards.
    pub fn num_trees(&self) -> u64 {
        self.manifest.total_trees()
    }

    /// A copy of the label interner queries should be parsed against.
    /// Ingested shards extend the interner append-only, so the **last**
    /// shard's interner is a superset of every earlier one.
    pub fn interner(&self) -> LabelInterner {
        self.shards
            .last()
            .expect("manifest guarantees >= 1 shard")
            .interner()
    }

    /// Selects the per-shard query executor (default streaming; the
    /// materializing oracle is used by the differential suites).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The configured per-shard executor.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Caps the scatter-gather fan-out (threads evaluating shards
    /// concurrently); defaults to available parallelism.
    pub fn set_query_threads(&mut self, threads: usize) {
        self.query_threads = threads.max(1);
    }

    /// Aggregated build statistics: sums over shards. `keys` counts
    /// per-shard B+Tree entries, so a key hot in every shard is counted
    /// once per shard (the price of disjoint shard files);
    /// `build_seconds` sums per-shard build times (CPU cost, not the
    /// parallel wall time).
    pub fn stats(&self) -> IndexStats {
        let mut agg = IndexStats {
            keys: 0,
            postings: 0,
            index_bytes: 0,
            posting_bytes: 0,
            data_bytes: 0,
            build_seconds: 0.0,
        };
        for shard in &self.shards {
            let s = shard.stats();
            agg.keys += s.keys;
            agg.postings += s.postings;
            agg.index_bytes += s.index_bytes;
            agg.posting_bytes += s.posting_bytes;
            agg.data_bytes += s.data_bytes;
            agg.build_seconds += s.build_seconds;
        }
        agg
    }

    /// Aggregated per-key statistics across shards: posting counts,
    /// distinct tids and bytes sum; the tid range spans from the first
    /// covering shard's range start to the last one's end (shard-local
    /// tids offset by the shard base). `None` when no shard indexes the
    /// key. Backs `si stats KEY` on a sharded index.
    pub fn key_stats(&self, key: &[u8]) -> Result<Option<KeyStats>> {
        let mut agg: Option<KeyStats> = None;
        for (entry, shard) in self.manifest.shards.iter().zip(&self.shards) {
            let Some(s) = shard.key_stats(key)? else {
                continue;
            };
            // Saturate at the shard's own bounds: estimated fallback
            // stats carry the full u32 range.
            let first = entry.base + s.first_tid.min(entry.len - 1);
            let last = entry.base + s.last_tid.min(entry.len - 1);
            match &mut agg {
                None => {
                    agg = Some(KeyStats {
                        first_tid: first,
                        last_tid: last,
                        ..s
                    })
                }
                Some(a) => {
                    a.postings += s.postings;
                    a.distinct_tids += s.distinct_tids;
                    a.bytes += s.bytes;
                    a.last_tid = last; // shards ascend in tid order
                    a.exact &= s.exact;
                    // Per-shard histograms bucket shard-local ranges and
                    // cannot be re-bucketed onto the merged span.
                    a.tid_hist = [0; si_storage::TID_HIST_BUCKETS];
                }
            }
        }
        Ok(agg)
    }

    /// Fetches the tree with **global** id `tid` from whichever shard
    /// covers it.
    pub fn tree(&self, tid: TreeId) -> Result<ParseTree> {
        let i = self
            .manifest
            .shard_of(tid)
            .ok_or_else(|| StorageError::OutOfRange(format!("tid {tid}")))?;
        self.shards[i]
            .store()
            .get(tid - self.manifest.shards[i].base)
    }

    /// Evaluates `query` with the default (cost-based) planner.
    pub fn evaluate(&self, query: &Query) -> Result<EvalResult> {
        self.evaluate_with_planner(query, PlannerMode::default())
    }

    /// Scatter-gather evaluation: plans per shard, skips shards whose
    /// own statistics prove them empty, evaluates the rest in parallel
    /// and concatenates the tid-disjoint match sets in shard order
    /// (global tids = shard-local tids + shard base). The result is
    /// identical to evaluating a monolithic index over the same corpus.
    pub fn evaluate_with_planner(&self, query: &Query, planner: PlannerMode) -> Result<EvalResult> {
        self.evaluate_with_prefs(query, planner, crate::plan::DEFAULT_ROOT_PREF_FACTOR)
    }

    /// [`ShardedIndex::evaluate_with_planner`] with an explicit
    /// root-slot preference factor (see
    /// [`crate::exec::ExecContext::root_pref_factor`]), threaded into
    /// every per-shard evaluation.
    pub fn evaluate_with_prefs(
        &self,
        query: &Query,
        planner: PlannerMode,
        root_pref_factor: f64,
    ) -> Result<EvalResult> {
        let ctx = ExecContext {
            planner,
            root_pref_factor,
            ..ExecContext::default()
        };
        self.evaluate_with(query, &ctx)
    }

    /// Scatter-gather evaluation honouring the context's planner
    /// settings and timings. Per-shard resources are still built fresh
    /// inside each worker (shard posting lists share canonical keys, so
    /// one block cache must never span shards); when `ctx` carries
    /// enabled timings each worker collects its own and the gather
    /// phase folds every shard's snapshot in under a `shard-N` group
    /// node, with the gather itself attributed to the merge stage.
    /// Stage nanoseconds therefore sum **CPU time across shards**,
    /// which exceeds wall time when workers run in parallel.
    pub fn evaluate_with(&self, query: &Query, ctx: &ExecContext<'_>) -> Result<EvalResult> {
        let planner = ctx.planner;
        let root_pref_factor = ctx.root_pref_factor;
        let timings = ctx.timings.filter(|t| t.enabled());
        let options = self.options();
        let cover = {
            let _span = ctx.span(Stage::Canonicalize);
            decompose(query, options.mss, options.coding)
        };
        let mut stats = EvalStats {
            covers: cover.subtrees.len(),
            shards: self.shards.len(),
            ..EvalStats::default()
        };

        // Shard-skip pruning from per-shard statistics alone: no posting
        // list of a skipped shard is ever opened.
        let mut live: Vec<usize> = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            if shard_provably_empty(shard, &cover.subtrees, planner)? {
                stats.shards_skipped += 1;
            } else {
                live.push(i);
            }
        }
        if live.is_empty() {
            return Ok(EvalResult {
                matches: Vec::new(),
                stats,
            });
        }

        // Cross-shard overlap: hint every live shard's cover lists
        // before a single worker starts, instead of each worker
        // discovering its shard's lists serially when its turn comes —
        // the laggard shards of the scatter find their leading pages
        // already in flight. Held across the scatter; dropped at gather
        // time, cancelling whatever no worker consumed. These hints are
        // issued on the gather thread, so they are counted here rather
        // than in any worker's thread-local delta.
        let cover_hints: Vec<si_storage::PrefetchTicket> = if si_storage::prefetch_enabled() {
            live.iter()
                .flat_map(|&i| {
                    cover.subtrees.iter().filter_map(move |st| {
                        self.shards[i].prefetch_posting(&st.key, crate::exec::COVER_HINT_BYTES)
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        stats.prefetch_hints += cover_hints.len() as u64;

        // Scatter: evaluate live shards on a worker pool.
        let collect = timings.is_some();
        type ShardSlot = Mutex<Option<(EvalResult, Option<si_obs::TimingsSnapshot>)>>;
        let results: Vec<ShardSlot> = live.iter().map(|_| Mutex::new(None)).collect();
        let first_error: Mutex<Option<StorageError>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        let workers = self.query_threads.clamp(1, live.len());
        if workers == 1 {
            for (slot, &i) in results.iter().zip(&live) {
                *slot.lock().unwrap() = Some(eval_one_shard(
                    &self.shards[i],
                    query,
                    self.exec_mode,
                    planner,
                    root_pref_factor,
                    collect,
                )?);
            }
        } else {
            // Any shard failing fails the query, so other workers stop
            // claiming shards as soon as the flag flips.
            let failed = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        while !failed.load(Ordering::Acquire) {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = live.get(slot) else { break };
                            match eval_one_shard(
                                &self.shards[i],
                                query,
                                self.exec_mode,
                                planner,
                                root_pref_factor,
                                collect,
                            ) {
                                Ok(result) => *results[slot].lock().unwrap() = Some(result),
                                Err(e) => {
                                    first_error.lock().unwrap().get_or_insert(e);
                                    failed.store(true, Ordering::Release);
                                    break;
                                }
                            }
                        }
                    });
                }
            });
            if let Some(e) = first_error.lock().unwrap().take() {
                return Err(e);
            }
        }

        // Gather: tid-disjoint shard answers concatenate in shard order;
        // each is already sorted, so the global set is sorted too.
        let merge_span = ctx.span(Stage::Merge);
        let mut matches: Vec<(TreeId, u32)> = Vec::new();
        for (slot, &i) in results.iter().zip(&live) {
            let (result, snap) = slot
                .lock()
                .unwrap()
                .take()
                .expect("worker filled shard slot");
            if let (Some(t), Some(snap)) = (timings, snap.as_ref()) {
                t.absorb(snap, &format!("shard-{i}"));
            }
            let base = self.manifest.shards[i].base;
            matches.extend(result.matches.iter().map(|&(tid, pre)| (base + tid, pre)));
            merge_shard_stats(&mut stats, &result.stats);
        }
        drop(merge_span);
        Ok(EvalResult { matches, stats })
    }

    /// Appends `trees` as a brand-new shard: builds a full per-shard
    /// index (stats segment included) under the next shard directory,
    /// then atomically rewrites `MANIFEST.si`. **No existing shard file
    /// is touched.** The new documents get the next contiguous global
    /// tids. `interner` must be an append-only extension of
    /// [`ShardedIndex::interner`] (parse the new corpus against a copy
    /// of it, so existing label ids keep their meaning).
    pub fn ingest(&mut self, trees: &[ParseTree], interner: &LabelInterner) -> Result<ShardEntry> {
        if trees.is_empty() {
            return Err(StorageError::OutOfRange("ingest of zero trees".into()));
        }
        // Inter-process exclusion: two concurrent writers (ingest or
        // rebuild) would read the same manifest, pick the same next
        // shard id and race building into the same directory — the
        // loser's documents would silently vanish in the manifest
        // rewrite. An OS file lock (released automatically on process
        // death, so a crashed writer never wedges the index)
        // serializes them; the second writer fails fast instead of
        // corrupting.
        let _lock = acquire_writer_lock(&self.dir)?;
        // Another writer may have changed the layout while we were
        // unlocked (the manifest is the source of truth); reload on
        // *any* difference — an ingest appends, but a rebuild can also
        // shrink or replace the shard set — carrying this handle's
        // configuration across.
        let on_disk = ShardManifest::read(&self.dir)?;
        if on_disk != self.manifest {
            let mut fresh = Self::open(&self.dir)?;
            fresh.exec_mode = self.exec_mode;
            fresh.query_threads = self.query_threads;
            *self = fresh;
        }
        let existing = self.interner();
        let extends = interner.len() >= existing.len()
            && existing
                .iter()
                .all(|(label, name)| interner.resolve(label) == name);
        if !extends {
            return Err(StorageError::Corrupt(
                "ingest interner must extend the index's interner".into(),
            ));
        }
        // The new shard gets a generation strictly above every live
        // one: `(id, generation)` then names this exact shard state,
        // so result-cache entries for untouched shards stay valid
        // while nothing stale can ever be served for this id.
        let entry = ShardEntry {
            id: self.manifest.next_id(),
            base: self.manifest.next_base(),
            len: trees.len() as TreeId,
            generation: self.manifest.max_generation() + 1,
        };
        let shard_dir = self.dir.join(entry.dir_name());
        let shard = SubtreeIndex::build(&shard_dir, trees, interner, self.options())?;
        debug_assert!(shard.has_key_stats(), "ingested shard must carry stats");
        let mut manifest = self.manifest.clone();
        manifest.shards.push(entry);
        manifest.write(&self.dir)?;
        self.manifest = manifest;
        self.shards.push(Arc::new(shard));
        Ok(entry)
    }
}

/// Takes the directory's exclusive writer lock (`ingest.lock`), shared
/// by [`ShardedIndex::build`] and [`ShardedIndex::ingest`]. The OS
/// releases the lock when the returned handle drops — including on
/// process death, so a crashed writer never wedges the index. A held
/// lock makes the second writer fail fast instead of corrupting.
fn acquire_writer_lock(dir: &Path) -> Result<std::fs::File> {
    let path = dir.join("ingest.lock");
    let lock_file = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&path)?;
    if let Err(e) = lock_file.try_lock() {
        return Err(StorageError::Io(std::io::Error::other(format!(
            "another build or ingest holds {}: {e}",
            path.display()
        ))));
    }
    Ok(lock_file)
}

/// Removes a sharded layout from `dir`: the manifest first (so readers
/// immediately stop dispatching to the shards), then every shard
/// directory it named. Required before building a **monolithic** index
/// into a directory that held a sharded one — [`AnyIndex::open`]
/// dispatches on the manifest's presence, so a stale `MANIFEST.si`
/// would silently shadow the fresh monolithic index with the old
/// corpus's answers. Serializes against concurrent sharded writers via
/// the directory's writer lock. A no-op when `dir` holds no manifest;
/// a corrupt manifest is still removed (its shard directories are then
/// unknown and left behind as inert garbage).
pub fn remove_sharded_layout(dir: &Path) -> Result<()> {
    if !ShardManifest::exists(dir) {
        return Ok(());
    }
    let _lock = acquire_writer_lock(dir)?;
    remove_sharded_layout_unlocked(dir)
}

/// [`remove_sharded_layout`] body, for callers already holding the
/// writer lock (a second `try_lock` on the same file from the same
/// process would fail, not recurse).
fn remove_sharded_layout_unlocked(dir: &Path) -> Result<()> {
    if !ShardManifest::exists(dir) {
        return Ok(());
    }
    let entries = ShardManifest::read(dir)
        .map(|m| m.shards)
        .unwrap_or_default();
    std::fs::remove_file(ShardManifest::path(dir))?;
    for entry in entries {
        std::fs::remove_dir_all(dir.join(entry.dir_name())).ok();
    }
    Ok(())
}

/// Default scatter-gather fan-out.
fn default_query_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Decodes the manifest's shared (mss, coding) into [`IndexOptions`].
fn manifest_options(manifest: &ShardManifest) -> Result<IndexOptions> {
    let coding = Coding::from_id(manifest.coding)
        .ok_or_else(|| StorageError::Corrupt("manifest coding id".into()))?;
    Ok(IndexOptions::new(manifest.mss as usize, coding))
}

/// Runs one shard's build through the selected build path.
fn build_one_shard(
    dir: &Path,
    trees: &[ParseTree],
    interner: &LabelInterner,
    options: IndexOptions,
    mode: ShardBuildMode,
) -> Result<SubtreeIndex> {
    match mode {
        ShardBuildMode::InMemory => SubtreeIndex::build(dir, trees, interner, options),
        ShardBuildMode::Parallel(threads) => {
            SubtreeIndex::build_parallel(dir, trees, interner, options, threads)
        }
        ShardBuildMode::External => SubtreeIndex::build_external(
            dir,
            trees,
            interner,
            options,
            crate::build_ext::ExternalBuildConfig::default(),
        ),
    }
}

/// Whether `shard`'s own statistics prove the query empty there, from
/// the stats segment alone. A cover key absent from the shard always
/// proves it (exact information regardless of planner mode); disjoint
/// shard-local tid ranges prove it under the cost-based planner (the
/// byte-length mode deliberately skips range reasoning so A/B runs
/// isolate the cost model, matching the monolithic executor's gating).
pub fn shard_provably_empty(
    shard: &SubtreeIndex,
    cover_subtrees: &[crate::cover::CoverSubtree],
    planner: PlannerMode,
) -> Result<bool> {
    shard_provably_empty_with(shard, cover_subtrees, planner, &ExecContext::default())
}

/// [`shard_provably_empty`] through an explicit context — a `ctx` with
/// a [`crate::stats::StatsCache`] memoizes the per-key probes, which
/// the sharded query service relies on (one probe per key per shard
/// per batch, not per query).
pub fn shard_provably_empty_with(
    shard: &SubtreeIndex,
    cover_subtrees: &[crate::cover::CoverSubtree],
    planner: PlannerMode,
    ctx: &ExecContext<'_>,
) -> Result<bool> {
    let mut key_stats: Vec<KeyStats> = Vec::with_capacity(cover_subtrees.len());
    for st in cover_subtrees {
        match crate::stats::key_stats_cached(shard, &st.key, ctx)? {
            Some(s) => key_stats.push(s),
            None => return Ok(true),
        }
    }
    Ok(planner == PlannerMode::CostBased && intersect_tid_ranges(&key_stats).is_none())
}

/// Evaluates `query` against one shard with a fresh default context,
/// folding pager counter deltas into the stats the way
/// [`SubtreeIndex::evaluate_with`] does — thread-local snapshots, so
/// each worker's delta is exactly its own shard's traffic even with the
/// pool running shards in parallel. With `collect_timings` the worker
/// records a private [`si_obs::Timings`] and returns its snapshot for
/// the gather phase to fold in.
fn eval_one_shard(
    shard: &SubtreeIndex,
    query: &Query,
    exec_mode: ExecMode,
    planner: PlannerMode,
    root_pref_factor: f64,
    collect_timings: bool,
) -> Result<(EvalResult, Option<si_obs::TimingsSnapshot>)> {
    let timings = collect_timings.then(|| si_obs::Timings::new(true));
    let ctx = ExecContext {
        planner,
        root_pref_factor,
        timings: timings.as_ref(),
        ..ExecContext::default()
    };
    let before = si_storage::thread_counters();
    let pf_before = si_storage::thread_prefetch_counters();
    let mut result = match exec_mode {
        ExecMode::Streaming => crate::exec::evaluate_streaming_with(shard, query, &ctx),
        ExecMode::Materialized => crate::eval::evaluate(shard, query),
    }?;
    let after = si_storage::thread_counters();
    let pf = si_storage::thread_prefetch_counters().delta_since(&pf_before);
    result.stats.pager_hits = after.hits.saturating_sub(before.hits);
    result.stats.pager_misses = after.misses.saturating_sub(before.misses);
    result.stats.pager_evictions = after.evictions.saturating_sub(before.evictions);
    result.stats.prefetch_hints = pf.hints;
    result.stats.prefetch_useful = pf.useful;
    Ok((result, timings.map(|t| t.snapshot())))
}

/// Folds one shard's evaluation stats into the gathered totals. Counters
/// sum; `peak_posting_bytes` takes the per-shard maximum (each shard's
/// pipeline bounds its own residency); flags OR.
pub fn merge_shard_stats(agg: &mut EvalStats, shard: &EvalStats) {
    agg.joins += shard.joins;
    agg.postings_fetched += shard.postings_fetched;
    agg.validated_trees += shard.validated_trees;
    agg.used_validation |= shard.used_validation;
    agg.range_pruned |= shard.range_pruned;
    agg.peak_posting_bytes = agg.peak_posting_bytes.max(shard.peak_posting_bytes);
    agg.pager_hits += shard.pager_hits;
    agg.pager_misses += shard.pager_misses;
    agg.pager_evictions += shard.pager_evictions;
    agg.cache_hits += shard.cache_hits;
    agg.cache_misses += shard.cache_misses;
    agg.postings_borrowed += shard.postings_borrowed;
    agg.sort_exchanges_avoided += shard.sort_exchanges_avoided;
    agg.seeks += shard.seeks;
    agg.postings_skipped += shard.postings_skipped;
    agg.result_hits += shard.result_hits;
    agg.result_misses += shard.result_misses;
    agg.partial_reuses += shard.partial_reuses;
    agg.negative_hits += shard.negative_hits;
    agg.prefetch_hints += shard.prefetch_hints;
    agg.prefetch_useful += shard.prefetch_useful;
}

/// A monolithic or sharded index behind one seam — how the CLI (and any
/// embedder) opens an index directory without caring which layout it
/// holds.
pub enum AnyIndex {
    /// A single `index.bt` directory.
    Mono(Box<SubtreeIndex>),
    /// A `MANIFEST.si` directory of tid-range shards.
    Sharded(ShardedIndex),
}

impl AnyIndex {
    /// Opens `dir` as sharded when `MANIFEST.si` is present, monolithic
    /// otherwise.
    pub fn open(dir: &Path) -> Result<Self> {
        if ShardedIndex::is_sharded(dir) {
            Ok(AnyIndex::Sharded(ShardedIndex::open(dir)?))
        } else {
            Ok(AnyIndex::Mono(Box::new(SubtreeIndex::open(dir)?)))
        }
    }

    /// The build options.
    pub fn options(&self) -> IndexOptions {
        match self {
            AnyIndex::Mono(i) => i.options(),
            AnyIndex::Sharded(i) => i.options(),
        }
    }

    /// The interner queries should be parsed against.
    pub fn interner(&self) -> LabelInterner {
        match self {
            AnyIndex::Mono(i) => i.interner(),
            AnyIndex::Sharded(i) => i.interner(),
        }
    }

    /// Number of shards (1 for a monolithic index).
    pub fn num_shards(&self) -> usize {
        match self {
            AnyIndex::Mono(_) => 1,
            AnyIndex::Sharded(i) => i.shards().len(),
        }
    }

    /// Selects the executor on whichever layout is open.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        match self {
            AnyIndex::Mono(i) => i.set_exec_mode(mode),
            AnyIndex::Sharded(i) => i.set_exec_mode(mode),
        }
    }

    /// Evaluates `query`; `ctx` applies fully to the monolithic path.
    /// The sharded path builds per-shard contexts itself and honours
    /// the planner settings and timings only — shard posting lists
    /// share canonical keys, so one block cache must never span shards.
    pub fn evaluate_with(&self, query: &Query, ctx: &ExecContext<'_>) -> Result<EvalResult> {
        match self {
            AnyIndex::Mono(i) => i.evaluate_with(query, ctx),
            AnyIndex::Sharded(i) => i.evaluate_with(query, ctx),
        }
    }

    /// Fetches a tree by global tid.
    pub fn tree(&self, tid: TreeId) -> Result<ParseTree> {
        match self {
            AnyIndex::Mono(i) => i.store().get(tid),
            AnyIndex::Sharded(i) => i.tree(tid),
        }
    }

    /// Per-key planner statistics (aggregated across shards).
    pub fn key_stats(&self, key: &[u8]) -> Result<Option<KeyStats>> {
        match self {
            AnyIndex::Mono(i) => i.key_stats(key),
            AnyIndex::Sharded(i) => i.key_stats(key),
        }
    }
}
