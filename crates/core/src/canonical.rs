//! Canonical encoding of unordered subtrees (§4.2).
//!
//! Index keys are *unordered*: `A(B)(C)` and `A(C)(B)` share one key
//! entry (Figure 4). The canonical form orders every node's children by
//! the lexicographic order of their own encodings, then emits pre-order
//! `(label, size)` varint pairs — the paper's flattening, which costs
//! `mss(⌈log₂(mss+1)⌉ + ⌈log₂|ΣV|⌉)` bits with fixed-width fields; we use
//! varints so the B+Tree keys stay byte-aligned.
//!
//! Keys with **automorphisms** (identical sibling branches, e.g.
//! `A(B)(B)`) matter for the subtree-interval coding: a posting fixes one
//! arbitrary assignment of data nodes to canonical positions, and joins
//! must consider all automorphic reassignments ([`automorphisms`]).

use si_parsetree::varint;

/// A decoded canonical subtree shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonTree {
    /// Interned label id.
    pub label: u32,
    /// Children in canonical order.
    pub children: Vec<CanonTree>,
}

impl CanonTree {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(CanonTree::size).sum::<usize>()
    }
}

/// Canonically encodes the subtree reachable from `root` through
/// `children_of`, labelling nodes with `label_of`.
///
/// Returns the key bytes and the nodes listed in canonical order (the
/// order their `(label, size)` pairs appear in the key). The first entry
/// is always `root`.
///
/// Generic over the node type so the same code serves data trees
/// ([`si_parsetree::ParseTree`]), queries ([`si_query::Query`]) and
/// enumeration intermediates.
pub fn canon_encode<N, L, C, I>(root: N, label_of: &L, children_of: &C) -> (Vec<u8>, Vec<N>)
where
    N: Copy,
    L: Fn(N) -> u32,
    C: Fn(N) -> I,
    I: IntoIterator<Item = N>,
{
    fn go<N, L, C, I>(n: N, label_of: &L, children_of: &C) -> (Vec<u8>, Vec<N>)
    where
        N: Copy,
        L: Fn(N) -> u32,
        C: Fn(N) -> I,
        I: IntoIterator<Item = N>,
    {
        let mut blocks: Vec<(Vec<u8>, Vec<N>)> = children_of(n)
            .into_iter()
            .map(|c| go(c, label_of, children_of))
            .collect();
        blocks.sort_by(|a, b| a.0.cmp(&b.0));
        let size = 1 + blocks.iter().map(|b| b.1.len()).sum::<usize>();
        let mut enc = Vec::with_capacity(4 + blocks.iter().map(|b| b.0.len()).sum::<usize>());
        varint::write_u32(&mut enc, label_of(n));
        varint::write_u64(&mut enc, size as u64);
        let mut nodes = Vec::with_capacity(size);
        nodes.push(n);
        for (benc, bnodes) in blocks {
            enc.extend_from_slice(&benc);
            nodes.extend(bnodes);
        }
        (enc, nodes)
    }
    go(root, label_of, children_of)
}

/// Decodes a canonical key back into its shape. Returns `None` on
/// malformed bytes (truncation, size mismatches).
pub fn decode_key(bytes: &[u8]) -> Option<CanonTree> {
    let mut r = varint::Reader::new(bytes);
    let tree = decode_node(&mut r)?;
    r.is_empty().then_some(tree)
}

fn decode_node(r: &mut varint::Reader<'_>) -> Option<CanonTree> {
    let label = r.u32()?;
    let size = r.u64()? as usize;
    if size == 0 {
        return None;
    }
    let mut remaining = size - 1;
    let mut children = Vec::new();
    while remaining > 0 {
        let child = decode_node(r)?;
        let csize = child.size();
        if csize > remaining {
            return None;
        }
        remaining -= csize;
        children.push(child);
    }
    Some(CanonTree { label, children })
}

/// Number of nodes in a canonical key without fully decoding it (the
/// root's size field).
pub fn key_size(bytes: &[u8]) -> Option<usize> {
    let mut r = varint::Reader::new(bytes);
    let _label = r.u32()?;
    Some(r.u64()? as usize)
}

/// All automorphisms of a canonical shape, as permutations over its
/// pre-order positions: `perm[i] = j` means position `i` may be re-read
/// as position `j`.
///
/// The group is the product of symmetric groups over identical sibling
/// blocks, composed recursively; for keys of ≤ 6 nodes it is tiny (the
/// worst case `A(B)(B)(B)(B)(B)` has 120). `limit` caps the enumeration
/// (0 = unlimited); if hit, the returned set is a correct subset
/// containing the identity, which keeps joins sound (they may enumerate
/// fewer assignments) — callers pass a generous limit and the cap exists
/// only as a safety valve.
pub fn automorphisms(tree: &CanonTree, limit: usize) -> Vec<Vec<usize>> {
    // For the subtree at `tree` return permutations relative to its own
    // pre-order positions (0 = the subtree root).
    fn go(tree: &CanonTree, limit: usize) -> Vec<Vec<usize>> {
        let size = tree.size();
        let ident: Vec<usize> = (0..size).collect();
        let mut result = vec![ident];
        // Child block offsets within this subtree's positions.
        let mut offsets = Vec::with_capacity(tree.children.len());
        let mut off = 1;
        for c in &tree.children {
            offsets.push(off);
            off += c.size();
        }
        // Group identical children (canonical order puts them adjacent).
        let mut i = 0;
        while i < tree.children.len() {
            let mut j = i + 1;
            while j < tree.children.len() && tree.children[j] == tree.children[i] {
                j += 1;
            }
            let group: Vec<usize> = (i..j).collect();
            // Inner automorphisms of one representative.
            let inner = go(&tree.children[i], limit);
            // Apply every inner automorphism to each group member.
            if inner.len() > 1 {
                let mut next = Vec::new();
                for perm in &result {
                    for &member in &group {
                        for ip in inner.iter().skip(1) {
                            let mut p = perm.clone();
                            apply_block(&mut p, offsets[member], ip);
                            next.push(p);
                            if limit != 0 && result.len() + next.len() >= limit {
                                result.extend(next);
                                return result;
                            }
                        }
                    }
                }
                result.extend(next);
            }
            // Permute the group blocks themselves.
            if group.len() > 1 {
                let blocks: Vec<(usize, usize)> = group
                    .iter()
                    .map(|&m| (offsets[m], tree.children[m].size()))
                    .collect();
                let mut arrangement: Vec<usize> = (0..group.len()).collect();
                let mut arrangements = Vec::new();
                permutations(&mut arrangement, 0, &mut arrangements);
                let mut next = Vec::new();
                for perm in &result {
                    for arr in arrangements.iter().skip(1) {
                        let mut p = perm.clone();
                        // Send block g to where block arr[g] sits.
                        for (g, &target) in arr.iter().enumerate() {
                            let (src_off, len) = blocks[g];
                            let (dst_off, _) = blocks[target];
                            p[src_off..src_off + len]
                                .copy_from_slice(&perm[dst_off..dst_off + len]);
                        }
                        next.push(p);
                        if limit != 0 && result.len() + next.len() >= limit {
                            result.extend(next);
                            return result;
                        }
                    }
                }
                result.extend(next);
            }
            i = j;
        }
        result
    }
    let mut perms = go(tree, limit);
    perms.sort();
    perms.dedup();
    perms
}

/// Rewrites positions `offset..offset+inner.len()` of `p` through the
/// relative permutation `inner`.
fn apply_block(p: &mut [usize], offset: usize, inner: &[usize]) {
    let orig: Vec<usize> = (0..inner.len()).map(|k| p[offset + k]).collect();
    for (k, &ik) in inner.iter().enumerate() {
        p[offset + k] = orig[ik];
    }
}

fn permutations(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == arr.len() {
        out.push(arr.clone());
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permutations(arr, k + 1, out);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::{ptb, LabelInterner, NodeId, ParseTree};

    fn encode_tree(tree: &ParseTree) -> (Vec<u8>, Vec<NodeId>) {
        canon_encode(tree.root(), &|n| tree.label(n).id(), &|n| {
            tree.children(n).collect::<Vec<_>>()
        })
    }

    #[test]
    fn sibling_order_does_not_matter() {
        let mut li = LabelInterner::new();
        let a = ptb::parse("(A (B) (C))", &mut li).unwrap();
        let b = ptb::parse("(A (C) (B))", &mut li).unwrap();
        assert_eq!(encode_tree(&a).0, encode_tree(&b).0);
        // But different structures differ.
        let c = ptb::parse("(A (B (C)))", &mut li).unwrap();
        assert_ne!(encode_tree(&a).0, encode_tree(&c).0);
    }

    #[test]
    fn deep_reordering_is_canonicalized() {
        let mut li = LabelInterner::new();
        let a = ptb::parse("(A (B (D) (E)) (C))", &mut li).unwrap();
        let b = ptb::parse("(A (C) (B (E) (D)))", &mut li).unwrap();
        assert_eq!(encode_tree(&a).0, encode_tree(&b).0);
    }

    #[test]
    fn canonical_nodes_start_at_root_and_cover_subtree() {
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (C (E)) (B))", &mut li).unwrap();
        let (_, nodes) = encode_tree(&t);
        assert_eq!(nodes[0], t.root());
        assert_eq!(nodes.len(), t.len());
        let mut sorted: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn decode_round_trips() {
        let mut li = LabelInterner::new();
        for src in ["(A)", "(A (B) (C))", "(A (B (C) (D)) (E))", "(X (Y (Z)))"] {
            let t = ptb::parse(src, &mut li).unwrap();
            let (enc, _) = encode_tree(&t);
            let decoded = decode_key(&enc).expect(src);
            assert_eq!(decoded.size(), t.len());
            assert_eq!(key_size(&enc), Some(t.len()));
            // Re-encoding the decoded shape is a fixpoint.
            let (enc2, _) = canon_encode(&decoded, &|n: &CanonTree| n.label, &|n: &CanonTree| {
                n.children.iter().collect::<Vec<_>>()
            });
            assert_eq!(enc, enc2);
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_key(&[]).is_none());
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (B))", &mut li).unwrap();
        let (enc, _) = encode_tree(&t);
        assert!(decode_key(&enc[..enc.len() - 1]).is_none());
        let mut extra = enc.clone();
        extra.push(0);
        assert!(decode_key(&extra).is_none());
    }

    #[test]
    fn automorphisms_of_asymmetric_tree_is_identity() {
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (B) (C))", &mut li).unwrap();
        let (enc, _) = encode_tree(&t);
        let shape = decode_key(&enc).unwrap();
        assert_eq!(automorphisms(&shape, 0), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn automorphisms_of_twin_leaves() {
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (B) (B))", &mut li).unwrap();
        let shape = decode_key(&encode_tree(&t).0).unwrap();
        let autos = automorphisms(&shape, 0);
        assert_eq!(autos.len(), 2);
        assert!(autos.contains(&vec![0, 1, 2]));
        assert!(autos.contains(&vec![0, 2, 1]));
    }

    #[test]
    fn automorphisms_of_twin_branches() {
        // A(B(C))(B(C)): swapping the two B-blocks swaps pairs of positions.
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (B (C)) (B (C)))", &mut li).unwrap();
        let shape = decode_key(&encode_tree(&t).0).unwrap();
        let autos = automorphisms(&shape, 0);
        assert_eq!(autos.len(), 2);
        assert!(autos.contains(&vec![0, 1, 2, 3, 4]));
        assert!(autos.contains(&vec![0, 3, 4, 1, 2]));
    }

    #[test]
    fn automorphisms_of_triplets() {
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (B) (B) (B))", &mut li).unwrap();
        let shape = decode_key(&encode_tree(&t).0).unwrap();
        assert_eq!(automorphisms(&shape, 0).len(), 6);
        // The cap yields a subset containing the identity.
        let capped = automorphisms(&shape, 3);
        assert!(capped.len() <= 3 + 1);
        assert!(capped.contains(&vec![0, 1, 2, 3]));
    }

    #[test]
    fn nested_automorphisms_compose() {
        // A(B(C)(C)): inner swap of the two Cs only.
        let mut li = LabelInterner::new();
        let t = ptb::parse("(A (B (C) (C)))", &mut li).unwrap();
        let shape = decode_key(&encode_tree(&t).0).unwrap();
        let autos = automorphisms(&shape, 0);
        assert_eq!(autos.len(), 2);
        assert!(autos.contains(&vec![0, 1, 3, 2]));
    }
}
