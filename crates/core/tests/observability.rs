//! Observability: instrumented runs answer exactly like plain runs,
//! stage nanoseconds account for the measured wall time, the operator
//! tree reflects the executed plan, `merge_shard_stats` folds every
//! counter, and per-query pager attribution stays exact under
//! concurrency (thread-local counter regression).

use std::sync::{Arc, Barrier};

use si_core::sharded::{merge_shard_stats, ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{Coding, EvalStats, ExecContext, IndexOptions, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_obs::Timings;
use si_query::{parse_query, Query};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-obs-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const QUERIES: &[&str] = &[
    "NP(DT)(NN)",
    "S(NP)(VP)",
    "S(NP(NN))(VP)",
    "VP(//NN)",
    "NP(JJ)(NN)",
];

fn fixture(coding: Coding, name: &str) -> (SubtreeIndex, Vec<Query>, std::path::PathBuf) {
    let corpus = GeneratorConfig::default().with_seed(1234567).generate(250);
    let mut qi = corpus.interner().clone();
    let queries: Vec<Query> = QUERIES
        .iter()
        .map(|q| parse_query(q, &mut qi).unwrap())
        .collect();
    let dir = tmp_dir(name);
    let index =
        SubtreeIndex::build(&dir, corpus.trees(), &qi, IndexOptions::new(3, coding)).unwrap();
    (index, queries, dir)
}

/// Enabled timings must not change a single answer, and the stage
/// partition must account for the bulk of the measured wall time
/// (decode + join + validate + posting-seek tile the executor's run by
/// construction).
#[test]
fn instrumented_runs_answer_identically_and_stages_account_for_time() {
    for coding in Coding::ALL {
        let (index, queries, dir) = fixture(coding, &format!("equiv-{coding:?}").to_lowercase());
        for (qi, query) in queries.iter().enumerate() {
            let plain = index.evaluate_with(query, &ExecContext::default()).unwrap();
            let timings = Timings::new(true);
            let ctx = ExecContext {
                timings: Some(&timings),
                ..ExecContext::default()
            };
            let start = std::time::Instant::now();
            let timed = index.evaluate_with(query, &ctx).unwrap();
            let wall = start.elapsed().as_nanos() as u64;
            assert_eq!(
                timed.matches, plain.matches,
                "query {qi} under {coding:?}: instrumentation changed the answer"
            );
            let snap = timings.snapshot();
            let total = snap.stage_total();
            assert!(total > 0, "query {qi} under {coding:?}: no time attributed");
            assert!(
                total <= wall.saturating_mul(11) / 10,
                "query {qi} under {coding:?}: stages ({total} ns) exceed wall ({wall} ns)"
            );
            assert!(
                total >= wall / 2,
                "query {qi} under {coding:?}: stages ({total} ns) cover under half the wall ({wall} ns)"
            );
            // The operator tree reflects an executed pipeline: at least
            // one node, exactly one root, child indices in range.
            assert!(!snap.ops.is_empty(), "query {qi}: no operator nodes");
            assert_eq!(snap.roots().len(), 1, "query {qi}: forest, expected a tree");
            for op in &snap.ops {
                for &c in &op.children {
                    assert!(c < snap.ops.len());
                }
            }
            if coding == Coding::FilterBased {
                assert!(snap.ops.iter().any(|op| op.label == "tid leapfrog"));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Plan-driven prefetch is observable (`prefetch_hints` counted per
/// query, exactly zero when the process-wide switch is off) and changes
/// no answers — the unit-level half of the bench's divergence gate.
#[test]
fn prefetch_hints_are_counted_and_change_no_answers() {
    let (index, queries, dir) = fixture(Coding::SubtreeInterval, "prefetch");
    // Reopen so the evaluations start from a cold page cache and the
    // cover hints have pages left to request.
    drop(index);
    let index = SubtreeIndex::open(&dir).unwrap();
    let mut total_hints = 0u64;
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| {
            let r = index.evaluate_with(q, &ExecContext::default()).unwrap();
            total_hints += r.stats.prefetch_hints;
            r.matches
        })
        .collect();
    assert!(
        total_hints > 0,
        "no prefetch hints issued across the whole suite"
    );
    si_storage::set_prefetch_enabled(false);
    let off: Vec<_> = queries
        .iter()
        .map(|q| {
            let r = index.evaluate_with(q, &ExecContext::default()).unwrap();
            assert_eq!(r.stats.prefetch_hints, 0, "hints while disabled");
            assert_eq!(r.stats.prefetch_useful, 0, "useful while disabled");
            r.matches
        })
        .collect();
    si_storage::set_prefetch_enabled(true);
    assert_eq!(baseline, off, "prefetch changed answers");
    std::fs::remove_dir_all(&dir).ok();
}

/// A disabled `Timings` records nothing and changes nothing.
#[test]
fn disabled_timings_are_inert() {
    let (index, queries, dir) = fixture(Coding::SubtreeInterval, "inert");
    for query in &queries {
        let plain = index.evaluate_with(query, &ExecContext::default()).unwrap();
        let timings = Timings::new(false);
        let ctx = ExecContext {
            timings: Some(&timings),
            ..ExecContext::default()
        };
        let timed = index.evaluate_with(query, &ctx).unwrap();
        assert_eq!(timed.matches, plain.matches);
        let snap = timings.snapshot();
        assert_eq!(snap.stage_total(), 0);
        assert!(snap.ops.is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded evaluation folds every worker's snapshot in under a
/// `shard-N` group node without changing the answer.
#[test]
fn sharded_timings_group_per_shard() {
    let corpus = GeneratorConfig::default().with_seed(0xBEEF).generate(180);
    let mut qi = corpus.interner().clone();
    let query = parse_query("NP(DT)(NN)", &mut qi).unwrap();
    let dir = tmp_dir("sharded");
    let index = ShardedIndex::build(
        &dir,
        corpus.trees(),
        &qi,
        IndexOptions::new(3, Coding::SubtreeInterval),
        ShardedBuildConfig {
            shards: 3,
            workers: 2,
            mode: ShardBuildMode::InMemory,
        },
    )
    .unwrap();
    let plain = index.evaluate(&query).unwrap();
    let timings = Timings::new(true);
    let ctx = ExecContext {
        timings: Some(&timings),
        ..ExecContext::default()
    };
    let timed = index.evaluate_with(&query, &ctx).unwrap();
    assert_eq!(timed.matches, plain.matches);
    let snap = timings.snapshot();
    let groups: Vec<&str> = snap
        .ops
        .iter()
        .filter(|op| op.label.starts_with("shard-"))
        .map(|op| op.label.as_str())
        .collect();
    assert!(
        !groups.is_empty(),
        "expected shard group nodes, ops: {:?}",
        snap.ops.iter().map(|o| &o.label).collect::<Vec<_>>()
    );
    // Every root of the forest is a shard group.
    for r in snap.roots() {
        assert!(snap.ops[r].label.starts_with("shard-"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `merge_shard_stats` must fold **every** counter. The
/// exhaustive struct literals (no `..Default::default()`) make adding
/// an `EvalStats` field a compile error here until the merge handles
/// it.
#[test]
fn merge_shard_stats_covers_every_field() {
    let a = EvalStats {
        covers: 3,
        joins: 2,
        postings_fetched: 100,
        validated_trees: 7,
        used_validation: true,
        range_pruned: false,
        peak_posting_bytes: 5000,
        pager_hits: 11,
        pager_misses: 13,
        pager_evictions: 17,
        cache_hits: 19,
        cache_misses: 23,
        postings_borrowed: 29,
        sort_exchanges_avoided: 31,
        shards: 4,
        shards_skipped: 1,
        seeks: 37,
        postings_skipped: 41,
        result_hits: 83,
        result_misses: 89,
        partial_reuses: 97,
        negative_hits: 101,
        prefetch_hints: 127,
        prefetch_useful: 131,
    };
    let b = EvalStats {
        covers: 5,
        joins: 6,
        postings_fetched: 200,
        validated_trees: 8,
        used_validation: false,
        range_pruned: true,
        peak_posting_bytes: 4000,
        pager_hits: 43,
        pager_misses: 47,
        pager_evictions: 53,
        cache_hits: 59,
        cache_misses: 61,
        postings_borrowed: 67,
        sort_exchanges_avoided: 71,
        shards: 9,
        shards_skipped: 2,
        seeks: 73,
        postings_skipped: 79,
        result_hits: 103,
        result_misses: 107,
        partial_reuses: 109,
        negative_hits: 113,
        prefetch_hints: 137,
        prefetch_useful: 139,
    };
    let mut agg = a;
    merge_shard_stats(&mut agg, &b);
    // Summed counters.
    assert_eq!(agg.joins, a.joins + b.joins);
    assert_eq!(
        agg.postings_fetched,
        a.postings_fetched + b.postings_fetched
    );
    assert_eq!(agg.validated_trees, a.validated_trees + b.validated_trees);
    assert_eq!(agg.pager_hits, a.pager_hits + b.pager_hits);
    assert_eq!(agg.pager_misses, a.pager_misses + b.pager_misses);
    assert_eq!(agg.pager_evictions, a.pager_evictions + b.pager_evictions);
    assert_eq!(agg.cache_hits, a.cache_hits + b.cache_hits);
    assert_eq!(agg.cache_misses, a.cache_misses + b.cache_misses);
    assert_eq!(
        agg.postings_borrowed,
        a.postings_borrowed + b.postings_borrowed
    );
    assert_eq!(
        agg.sort_exchanges_avoided,
        a.sort_exchanges_avoided + b.sort_exchanges_avoided
    );
    assert_eq!(agg.seeks, a.seeks + b.seeks);
    assert_eq!(
        agg.postings_skipped,
        a.postings_skipped + b.postings_skipped
    );
    assert_eq!(agg.result_hits, a.result_hits + b.result_hits);
    assert_eq!(agg.result_misses, a.result_misses + b.result_misses);
    assert_eq!(agg.partial_reuses, a.partial_reuses + b.partial_reuses);
    assert_eq!(agg.negative_hits, a.negative_hits + b.negative_hits);
    assert_eq!(agg.prefetch_hints, a.prefetch_hints + b.prefetch_hints);
    assert_eq!(agg.prefetch_useful, a.prefetch_useful + b.prefetch_useful);
    // ORed flags; per-shard maximum.
    assert!(agg.used_validation && agg.range_pruned);
    assert_eq!(
        agg.peak_posting_bytes,
        a.peak_posting_bytes.max(b.peak_posting_bytes)
    );
    // Caller-set fields the merge deliberately leaves alone.
    assert_eq!(agg.covers, a.covers);
    assert_eq!(agg.shards, a.shards);
    assert_eq!(agg.shards_skipped, a.shards_skipped);
}

/// Satellite regression: per-query pager counters are **exact** under
/// concurrency. A query's delta comes from thread-local counters, so a
/// second thread hammering the same index must not leak into it. The
/// index is opened read-only (mapped pager: every access is a
/// deterministic cache hit), so the solo run's counters are the ground
/// truth for the concurrent one.
#[test]
fn pager_attribution_exact_under_concurrent_queries() {
    let (index, queries, dir) = fixture(Coding::SubtreeInterval, "pager");
    let index = Arc::new(SubtreeIndex::open(index.dir()).unwrap_or(index));
    let qa = queries[0].clone();
    let qb = queries[1].clone();
    // Warm + solo baseline.
    index.evaluate(&qa).unwrap();
    let solo = index.evaluate(&qa).unwrap().stats;
    let barrier = Arc::new(Barrier::new(2));
    let a = {
        let (index, barrier) = (Arc::clone(&index), Arc::clone(&barrier));
        std::thread::spawn(move || {
            barrier.wait();
            index.evaluate(&qa).unwrap().stats
        })
    };
    let b = {
        let (index, barrier) = (Arc::clone(&index), Arc::clone(&barrier));
        std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..5 {
                index.evaluate(&qb).unwrap();
            }
        })
    };
    let concurrent = a.join().unwrap();
    b.join().unwrap();
    assert_eq!(
        (
            concurrent.pager_hits,
            concurrent.pager_misses,
            concurrent.pager_evictions
        ),
        (solo.pager_hits, solo.pager_misses, solo.pager_evictions),
        "concurrent run's pager delta differs from the solo ground truth"
    );
    std::fs::remove_dir_all(&dir).ok();
}
