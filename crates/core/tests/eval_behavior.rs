//! Behavioural tests of the query processor: statistics, early exits,
//! validation avoidance, and cover patching under root-split coding.

use si_core::cover::{decompose, minrc};
use si_core::{Coding, IndexOptions, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_parsetree::{ptb, LabelInterner, ParseTree};
use si_query::parse_query;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-evalbeh-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn handmade() -> (Vec<ParseTree>, LabelInterner) {
    let mut li = LabelInterner::new();
    let trees = vec![
        ptb::parse("(S (NP (NN a) (NN b)) (VP (VBZ x)))", &mut li).unwrap(),
        ptb::parse("(S (NP (NN c)) (VP (VBZ y)))", &mut li).unwrap(),
        ptb::parse(
            "(S (NP (NP (NN d) (JJ j)) (NP (NN e) (JJ k))) (VP (VBD z)))",
            &mut li,
        )
        .unwrap(),
    ];
    (trees, li)
}

#[test]
fn missing_key_short_circuits_without_fetching() {
    let (trees, mut li) = handmade();
    let dir = tmp_dir("missing");
    let index =
        SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, Coding::RootSplit)).unwrap();
    // NP(VP) never occurs: its cover key is absent, so nothing should be
    // decoded at all.
    let q = parse_query("NP(VP)", &mut li).unwrap();
    let r = index.evaluate(&q).unwrap();
    assert!(r.is_empty());
    assert_eq!(r.stats.postings_fetched, 0, "early exit before decode");
    assert_eq!(r.stats.joins, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_stats_reflect_plan_shape() {
    let (trees, mut li) = handmade();
    let dir = tmp_dir("stats");
    let index =
        SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(2, Coding::RootSplit)).unwrap();
    let q = parse_query("S(NP(NN))(VP)", &mut li).unwrap();
    let r = index.evaluate(&q).unwrap();
    assert_eq!(
        r.stats.covers,
        decompose(&q, 2, Coding::RootSplit).subtrees.len()
    );
    assert_eq!(r.stats.joins, r.stats.covers - 1);
    assert!(r.stats.postings_fetched > 0);
    assert!(!r.stats.used_validation);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sibling_clash_avoids_validation_via_root_patches() {
    let (trees, mut li) = handmade();
    // NP(NP(NN))(NP(NN)): two same-label sibling branches of size 2 that
    // cannot co-reside in one mss=3 cover rooted at the outer NP together
    // with both subtrees.
    let q = parse_query("NP(NP(NN)(JJ))(NP(NN)(JJ))", &mut li).unwrap();
    let cover = minrc(&q, 3);
    // Both inner NPs must be cover roots (the distinctness patch).
    let inner: Vec<_> = q.children(q.root()).collect();
    for u in inner {
        assert!(
            cover.subtrees.iter().any(|s| s.root == u),
            "clash sibling {} must root a cover",
            u.0
        );
    }
    let dir = tmp_dir("clash");
    let index =
        SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, Coding::RootSplit)).unwrap();
    let r = index.evaluate(&q).unwrap();
    // Tree 2 has exactly one such NP (distinct branches required).
    assert_eq!(r.matches, vec![(2, 1)]);
    assert!(
        !r.stats.used_validation,
        "root patches should make validation unnecessary"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn filter_based_always_validates() {
    let (trees, mut li) = handmade();
    let dir = tmp_dir("filterval");
    let index =
        SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, Coding::FilterBased)).unwrap();
    let q = parse_query("S(NP(NN))(VP)", &mut li).unwrap();
    let r = index.evaluate(&q).unwrap();
    assert!(r.stats.validated_trees > 0, "filtering phase must run");
    // Trees 0 and 1 have S(NP(NN))(VP); tree 2's S-level NP has only NP children.
    assert_eq!(r.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_node_queries_hit_the_fast_path() {
    let (trees, mut li) = handmade();
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("single-{coding:?}").to_lowercase());
        let index = SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, coding)).unwrap();
        let q = parse_query("NN", &mut li).unwrap();
        let r = index.evaluate(&q).unwrap();
        assert_eq!(r.len(), 5, "{coding:?}");
        assert_eq!(r.stats.covers, 1);
        assert_eq!(r.stats.joins, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn posting_len_estimates_are_available() {
    let corpus = GeneratorConfig::default().with_seed(15).generate(200);
    let dir = tmp_dir("lens");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(2, Coding::RootSplit),
    )
    .unwrap();
    // Frequent single-label keys have longer posting lists than rare
    // ones; the estimate must reflect that without decoding.
    let mut li = corpus.interner().clone();
    let np = decompose(&parse_query("NP", &mut li).unwrap(), 2, Coding::RootSplit);
    let np_len = index.posting_len(&np.subtrees[0].key).unwrap().unwrap();
    let wrb = decompose(&parse_query("WRB", &mut li).unwrap(), 2, Coding::RootSplit);
    let wrb_len = index.posting_len(&wrb.subtrees[0].key).unwrap().unwrap();
    assert!(
        np_len > wrb_len,
        "NP ({np_len}) should dominate WRB ({wrb_len})"
    );
    assert!(index.posting_len(b"not-a-real-key").unwrap().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn descendant_only_query_spans_components() {
    let (trees, mut li) = handmade();
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("desc-{coding:?}").to_lowercase());
        let index = SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, coding)).unwrap();
        let q = parse_query("S(//NN)(//JJ)", &mut li).unwrap();
        let r = index.evaluate(&q).unwrap();
        assert_eq!(r.matches, vec![(2, 0)], "{coding:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn holistic_twig_agrees_with_engine_on_descendant_queries() {
    use si_core::coding::Posting;
    use si_core::holistic::{eval_twig, Twig, TwigAxis, TwigNode};
    use si_query::Axis;

    let corpus = GeneratorConfig::default().with_seed(88).generate(120);
    let dir = tmp_dir("holistic");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(1, Coding::RootSplit),
    )
    .unwrap();
    let mut li = corpus.interner().clone();
    for src in [
        "S(//NN)",
        "S(//NP(//NN))",
        "S(//NP)(//VP)",
        "VP(//PP(//NN))",
    ] {
        let q = parse_query(src, &mut li).unwrap();
        // Build the twig and one single-label stream per query node.
        let nodes: Vec<TwigNode> = q
            .nodes()
            .map(|n| TwigNode {
                parent: q.parent(n).map(|p| p.0 as usize),
                axis: match q.axis(n) {
                    Axis::Child => TwigAxis::Child,
                    Axis::Descendant => TwigAxis::Descendant,
                },
            })
            .collect();
        let twig = Twig::new(nodes);
        let streams: Vec<Vec<(si_parsetree::TreeId, si_core::coding::NodeVal)>> = q
            .nodes()
            .map(|n| {
                let single = si_core::cover::decompose(
                    &{
                        let mut b = si_query::QueryBuilder::new();
                        b.leaf(q.label(n), Axis::Child);
                        b.finish().unwrap()
                    },
                    1,
                    Coding::RootSplit,
                );
                index
                    .postings(&single.subtrees[0].key)
                    .unwrap()
                    .unwrap_or_default()
                    .into_iter()
                    .map(|p| match p {
                        Posting::Root { tid, root } => (tid, root),
                        _ => unreachable!(),
                    })
                    .collect()
            })
            .collect();
        let holistic: Vec<(si_parsetree::TreeId, u32)> = eval_twig(&twig, &streams)
            .into_iter()
            .map(|(tid, v)| (tid, v.pre))
            .collect();
        let engine = index.evaluate(&q).unwrap().matches;
        assert_eq!(holistic, engine, "{src}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
