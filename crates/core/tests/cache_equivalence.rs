//! The cache-aware and shared-scan execution paths must be invisible to
//! results: for any query, evaluating through a [`BlockCache`] (cold,
//! warm, or eviction-thrashed) or through batch-shared tuple vectors
//! yields exactly the plain streaming executor's match set.

use std::sync::Arc;

use si_core::cover::decompose;
use si_core::exec::collect_scan_tuples;
use si_core::{
    BlockCache, BlockCacheConfig, Coding, ExecContext, IndexOptions, SharedTuples, SubtreeIndex,
};
use si_corpus::GeneratorConfig;
use si_query::parse_query;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-cacheeq-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const QUERIES: &[&str] = &[
    "NP(NN)",
    "S(NP)(VP)",
    "S(NP(DT)(NN))(VP)",
    "VP(VBZ)(NP(NN))",
    "S(//NN)",
    "NP(//DT)",
    "S(NP(NNS))(VP(VBZ)(NP))",
];

#[test]
fn cached_execution_matches_plain_for_all_codings() {
    let corpus = GeneratorConfig::default().with_seed(77).generate(300);
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("{coding:?}").to_lowercase());
        let index = SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, coding),
        )
        .unwrap();
        let mut interner = index.interner();
        // A generous cache and a tiny (eviction-thrashing) cache must
        // both be invisible to results.
        for budget in [16 << 20, 2 << 10] {
            let cache = Arc::new(BlockCache::new(BlockCacheConfig {
                budget_bytes: budget,
                shards: 2,
                block_postings: 64,
            }));
            for text in QUERIES {
                let query = parse_query(text, &mut interner).unwrap();
                let plain = index.evaluate(&query).unwrap();
                let ctx = ExecContext {
                    cache: Some(cache.clone()),
                    ..Default::default()
                };
                // Twice: cold then (possibly) warm.
                let cold = index.evaluate_with(&query, &ctx).unwrap();
                let warm = index.evaluate_with(&query, &ctx).unwrap();
                assert_eq!(cold.matches, plain.matches, "{text} {coding} cold");
                assert_eq!(warm.matches, plain.matches, "{text} {coding} warm");
            }
            let stats = cache.stats();
            assert!(
                stats.peak_bytes as usize <= budget,
                "{coding}: peak {} exceeds budget {budget}",
                stats.peak_bytes
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn warm_cache_registers_hits_in_eval_stats() {
    let corpus = GeneratorConfig::default().with_seed(78).generate(300);
    let dir = tmp_dir("warmhits");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(3, Coding::RootSplit),
    )
    .unwrap();
    let mut interner = index.interner();
    let query = parse_query("S(NP)(VP)", &mut interner).unwrap();
    let cache = Arc::new(BlockCache::new(BlockCacheConfig::default()));
    let ctx = ExecContext {
        cache: Some(cache),
        ..Default::default()
    };
    let cold = index.evaluate_with(&query, &ctx).unwrap();
    assert!(!cold.matches.is_empty(), "query should match the corpus");
    assert!(cold.stats.cache_misses > 0, "cold run must miss");
    let warm = index.evaluate_with(&query, &ctx).unwrap();
    assert!(warm.stats.cache_hits > 0, "warm run must hit");
    assert_eq!(warm.stats.cache_misses, 0, "fully cached list");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_scans_match_plain_execution() {
    let corpus = GeneratorConfig::default().with_seed(79).generate(300);
    for coding in [Coding::RootSplit, Coding::SubtreeInterval] {
        let dir = tmp_dir(&format!("shared-{coding:?}").to_lowercase());
        let index = SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, coding),
        )
        .unwrap();
        let mut interner = index.interner();
        for text in QUERIES {
            let query = parse_query(text, &mut interner).unwrap();
            // Pre-decode every cover key into shared tuple vectors, as
            // the service does for keys shared across a batch.
            let cover = decompose(&query, index.options().mss, coding);
            let mut shared = SharedTuples::new();
            for st in &cover.subtrees {
                if index.posting_len(&st.key).unwrap().is_some() {
                    let tuples =
                        collect_scan_tuples(&index, &st.key, &ExecContext::default()).unwrap();
                    shared.insert(st.key.clone(), tuples);
                }
            }
            let plain = index.evaluate(&query).unwrap();
            let ctx = ExecContext {
                shared: Some(&shared),
                ..Default::default()
            };
            let got = index.evaluate_with(&query, &ctx).unwrap();
            assert_eq!(got.matches, plain.matches, "{text} under {coding}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn pager_counters_flow_into_eval_stats() {
    let corpus = GeneratorConfig::default().with_seed(80).generate(200);
    let dir = tmp_dir("pagerstats");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        corpus.interner(),
        IndexOptions::new(3, Coding::RootSplit),
    )
    .unwrap();
    let mut interner = index.interner();
    let query = parse_query("S(NP)(VP)", &mut interner).unwrap();
    let result = index.evaluate(&query).unwrap();
    assert!(
        result.stats.pager_hits + result.stats.pager_misses > 0,
        "a B+Tree descent must touch pages: {:?}",
        result.stats
    );
    std::fs::remove_dir_all(&dir).ok();
}
