//! Differential tests: every coding scheme must produce exactly the
//! match set the in-memory matcher computes, across corpora, `mss`
//! values and query shapes — the core exactness claim of the paper
//! ("our subtree interval and root-split codings remove the need for
//! post-validations" while staying exact).

use si_core::{Coding, IndexOptions, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_parsetree::{LabelInterner, ParseTree, TreeId};
use si_query::{matcher::Matcher, parse_query, Query};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-equiv-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ground_truth(trees: &[ParseTree], query: &Query) -> Vec<(TreeId, u32)> {
    let mut out = Vec::new();
    for (tid, tree) in trees.iter().enumerate() {
        for root in Matcher::new(tree, query).roots() {
            out.push((tid as TreeId, root.0));
        }
    }
    out
}

/// Builds indexes for every (coding, mss) combination and checks every
/// query against the matcher.
fn check_all(trees: &[ParseTree], interner: &LabelInterner, queries: &[&str], msses: &[usize]) {
    let mut qi = interner.clone();
    let parsed: Vec<(String, Query)> = queries
        .iter()
        .map(|q| ((*q).to_string(), parse_query(q, &mut qi).unwrap()))
        .collect();
    for &mss in msses {
        for coding in Coding::ALL {
            let dir = tmp_dir(&format!("{coding:?}-{mss}").to_lowercase());
            let index =
                SubtreeIndex::build(&dir, trees, &qi, IndexOptions::new(mss, coding)).unwrap();
            for (text, query) in &parsed {
                let expect = ground_truth(trees, query);
                let got = index.evaluate(query).unwrap();
                assert_eq!(got.matches, expect, "query {text} under {coding} mss={mss}");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn handcrafted_corpus_all_codings() {
    let mut li = LabelInterner::new();
    let srcs = [
        "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))",
        "(S (NP (NNS agouti)) (VP (VBZ is) (NP (DT a) (JJ small) (NN rodent))))",
        "(S (NP (NN cat)) (VP (VBD sat) (PP (IN on) (NP (DT the) (NN mat)))))",
        "(S (NP (NP (NN list)) (PP (IN of) (NP (NNS items)))) (VP (VBZ grows)))",
        "(NP (NN x) (NN y))",
        "(S (VP (VBZ runs)))",
    ];
    let trees: Vec<ParseTree> = srcs
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let queries = [
        "NN",
        "NP(NN)",
        "NP(DT)(NN)",
        "S(NP)(VP)",
        "S(NP(NN))(VP(VBZ))",
        "VP(VBZ)(NP(DT)(NN))",
        "S(//NN)",
        "VP(//NN)",
        "S(NP)(//NN)",
        "NP(NN)(NN)",
        "S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))",
        "PP(IN(on))(NP)",
        "XXUNKNOWN",
        "S(NP(XX))",
    ];
    check_all(&trees, &li, &queries, &[1, 2, 3, 4, 5]);
}

#[test]
fn generated_corpus_all_codings() {
    let corpus = GeneratorConfig::default().with_seed(1234).generate(120);
    let queries = [
        "NP(DT)(NN)",
        "S(NP)(VP)",
        "VP(VBZ)(NP)",
        "NP(NP)(PP(IN)(NP))",
        "S(NP(DT)(NN))(VP)",
        "S(//PP(IN)(NP))",
        "VP(//NN)",
        "NP(DT(the))(NN)",
        "S(NP(PRP))(VP(VBZ)(NP(DT)(NN)))",
        "PP(IN(of))(NP(NNS))",
    ];
    check_all(corpus.trees(), corpus.interner(), &queries, &[1, 2, 3, 5]);
}

#[test]
fn generated_corpus_fb_style_subtree_queries() {
    // Queries extracted as real subtrees of held-out trees (the FB
    // construction): guaranteed non-trivial structure.
    let corpus = GeneratorConfig::default().with_seed(77).generate(100);
    let mut interner = corpus.interner().clone();
    let heldout = GeneratorConfig::default()
        .with_seed(78)
        .generate_into(30, &mut interner);
    let fb = si_corpus::fb_query_set(&corpus, &heldout, 5);
    for &mss in &[2usize, 3, 4] {
        for coding in Coding::ALL {
            let dir = tmp_dir(&format!("fb-{coding:?}-{mss}").to_lowercase());
            let index = SubtreeIndex::build(
                &dir,
                corpus.trees(),
                &interner,
                IndexOptions::new(mss, coding),
            )
            .unwrap();
            // Every 4th query keeps runtime low while covering all
            // classes and sizes.
            for fbq in fb.iter().step_by(4) {
                let expect = ground_truth(corpus.trees(), &fbq.query);
                let got = index.evaluate(&fbq.query).unwrap();
                assert_eq!(
                    got.matches, expect,
                    "class {} size {} under {coding} mss={mss}",
                    fbq.class, fbq.size
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn wh_queries_match_ground_truth() {
    let corpus = GeneratorConfig::default().with_seed(4242).generate(150);
    let mut interner = corpus.interner().clone();
    let wh = si_corpus::wh_query_set(&mut interner);
    for &mss in &[3usize] {
        for coding in Coding::ALL {
            let dir = tmp_dir(&format!("wh-{coding:?}-{mss}").to_lowercase());
            let index = SubtreeIndex::build(
                &dir,
                corpus.trees(),
                &interner,
                IndexOptions::new(mss, coding),
            )
            .unwrap();
            for q in wh.iter().step_by(3) {
                let expect = ground_truth(corpus.trees(), &q.query);
                let got = index.evaluate(&q.query).unwrap();
                assert_eq!(got.matches, expect, "{} under {coding}", q.text);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Randomized differential property test (self-contained — the external
/// `proptest` crate is unavailable offline): across random corpora and
/// real-subtree queries, the streaming executor must return exactly the
/// match set of the legacy materializing evaluator under every coding,
/// with internally consistent `EvalStats`.
#[test]
fn property_streaming_matches_materialized_across_codings() {
    // Deterministic seed schedule; each round draws a fresh corpus and
    // a fresh FB-style query set.
    for round in 0u64..4 {
        let corpus_seed = 0xC0FFEE + round * 7919;
        let corpus = GeneratorConfig::default()
            .with_seed(corpus_seed)
            .generate(60 + (round as usize) * 25);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(corpus_seed + 1)
            .generate_into(25, &mut interner);
        let fb = si_corpus::fb_query_set(&corpus, &heldout, corpus_seed + 2);
        let mss = 2 + (round as usize % 2); // rotate 2, 3
        for coding in Coding::ALL {
            let dir = tmp_dir(&format!("prop-{round}-{coding:?}-{mss}").to_lowercase());
            let mut index = SubtreeIndex::build(
                &dir,
                corpus.trees(),
                &interner,
                IndexOptions::new(mss, coding),
            )
            .unwrap();
            for fbq in fb.iter().step_by(3) {
                index.set_exec_mode(si_core::ExecMode::Streaming);
                let s = index.evaluate(&fbq.query).unwrap();
                index.set_exec_mode(si_core::ExecMode::Materialized);
                let m = index.evaluate(&fbq.query).unwrap();
                assert_eq!(
                    s.matches, m.matches,
                    "round {round} class {} size {} under {coding} mss={mss}",
                    fbq.class, fbq.size
                );
                // The matcher is the independent ground truth.
                assert_eq!(
                    s.matches,
                    ground_truth(corpus.trees(), &fbq.query),
                    "round {round} ground truth under {coding} mss={mss}"
                );
                // Stats sanity for both executors.
                for (which, stats) in [("streaming", s.stats), ("materialized", m.stats)] {
                    assert!(stats.covers >= 1, "{which}: no covers");
                    assert!(
                        stats.joins <= stats.covers.saturating_sub(1),
                        "{which}: more joins than cover pairs"
                    );
                    if !s.matches.is_empty() {
                        assert_eq!(
                            stats.joins,
                            stats.covers - 1,
                            "{which}: non-empty result must execute the full plan"
                        );
                        assert!(stats.postings_fetched > 0, "{which}: no postings decoded");
                        assert!(
                            stats.peak_posting_bytes > 0,
                            "{which}: resident bytes untracked"
                        );
                    }
                }
                assert_eq!(s.stats.covers, m.stats.covers, "same decomposition");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The acceptance criterion of the streaming refactor, as a test: with
/// one rare and one very frequent cover subtree, the streaming executor
/// holds O(pages in flight) posting bytes while the materializing
/// evaluator pays for the full frequent list — streaming must stay
/// under 50% of the legacy footprint (it is typically under 10%).
#[test]
fn streaming_bounds_resident_bytes_on_skewed_lists() {
    let mut li = LabelInterner::new();
    let mut srcs: Vec<String> = Vec::new();
    // Two rare trees carrying the selective key.
    srcs.push("(FRAG (NP (NN target)))".to_string());
    srcs.push("(S (FRAG (NP (NN target))) (VP (VBZ is)))".to_string());
    // A long tail of filler trees, each contributing many distinct
    // NP-rooted NN occurrences (distinct roots survive root-split
    // deduplication, so the NN-side posting list grows with the corpus).
    for i in 0..1500 {
        let nps: String = (0..8).map(|j| format!("(NP (NN w{i}x{j}))")).collect();
        srcs.push(format!("(S {nps} (VP (VBZ v{i})))"));
    }
    let trees: Vec<ParseTree> = srcs
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let dir = tmp_dir("skewed");
    let mut index =
        SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(2, Coding::RootSplit)).unwrap();
    let mut qi = li.clone();
    let query = parse_query("FRAG(NP(NN))", &mut qi).unwrap();

    index.set_exec_mode(si_core::ExecMode::Streaming);
    let s = index.evaluate(&query).unwrap();
    index.set_exec_mode(si_core::ExecMode::Materialized);
    let m = index.evaluate(&query).unwrap();

    assert_eq!(s.matches, m.matches);
    assert_eq!(s.matches, ground_truth(&trees, &query));
    assert!(!s.matches.is_empty(), "the rare pattern must match");
    // The frequent NN list spans multiple pages; materializing pays for
    // all of it, streaming only for the pages in flight.
    assert!(
        m.stats.peak_posting_bytes > 8 * 1024,
        "test corpus too small to be meaningful: legacy peak {}",
        m.stats.peak_posting_bytes
    );
    assert!(
        (s.stats.peak_posting_bytes as f64) < 0.5 * m.stats.peak_posting_bytes as f64,
        "streaming peak {} must stay under half of materialized peak {}",
        s.stats.peak_posting_bytes,
        m.stats.peak_posting_bytes
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistence_round_trip() {
    let corpus = GeneratorConfig::default().with_seed(9).generate(60);
    let dir = tmp_dir("persist");
    let mut qi = corpus.interner().clone();
    let query = parse_query("S(NP)(VP(VBZ))", &mut qi).unwrap();
    let expect;
    {
        let index = SubtreeIndex::build(
            &dir,
            corpus.trees(),
            &qi,
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap();
        expect = index.evaluate(&query).unwrap().matches;
    }
    let reopened = SubtreeIndex::open(&dir).unwrap();
    assert_eq!(reopened.options().mss, 3);
    assert_eq!(reopened.options().coding, Coding::RootSplit);
    assert_eq!(reopened.evaluate(&query).unwrap().matches, expect);
    assert_eq!(reopened.stats().keys, {
        let fresh = SubtreeIndex::build(
            &tmp_dir("persist2"),
            corpus.trees(),
            &qi,
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap();
        fresh.stats().keys
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stack_tree_join_agrees_with_mpmgjn() {
    let corpus = GeneratorConfig::default().with_seed(31).generate(80);
    let dir = tmp_dir("stj");
    let mut qi = corpus.interner().clone();
    let mut index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        &qi,
        IndexOptions::new(2, Coding::RootSplit),
    )
    .unwrap();
    for src in [
        "S(NP)(VP(VBZ))",
        "S(//NN)",
        "NP(//DT)",
        "VP(VBZ)(NP(DT)(NN))",
    ] {
        let query = parse_query(src, &mut qi).unwrap();
        index.set_join_algo(si_core::join::JoinAlgo::Mpmgjn);
        let a = index.evaluate(&query).unwrap().matches;
        index.set_join_algo(si_core::join::JoinAlgo::StackTree);
        let b = index.evaluate(&query).unwrap().matches;
        assert_eq!(a, b, "{src}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn external_build_matches_in_memory_build() {
    let corpus = GeneratorConfig::default().with_seed(404).generate(80);
    let mut qi = corpus.interner().clone();
    let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)"]
        .iter()
        .map(|s| parse_query(s, &mut qi).unwrap())
        .collect();
    for coding in Coding::ALL {
        let d1 = tmp_dir(&format!("mem-{coding:?}").to_lowercase());
        let d2 = tmp_dir(&format!("ext-{coding:?}").to_lowercase());
        let mem =
            SubtreeIndex::build(&d1, corpus.trees(), &qi, IndexOptions::new(3, coding)).unwrap();
        let ext = SubtreeIndex::build_external(
            &d2,
            corpus.trees(),
            &qi,
            IndexOptions::new(3, coding),
            si_core::build_ext::ExternalBuildConfig {
                run_budget_bytes: 4 << 10, // force multiple runs
            },
        )
        .unwrap();
        assert_eq!(mem.stats().keys, ext.stats().keys, "{coding:?}");
        assert_eq!(mem.stats().postings, ext.stats().postings, "{coding:?}");
        assert_eq!(
            mem.stats().posting_bytes,
            ext.stats().posting_bytes,
            "{coding:?}"
        );
        for q in &queries {
            assert_eq!(
                mem.evaluate(q).unwrap().matches,
                ext.evaluate(q).unwrap().matches,
                "{coding:?}"
            );
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}

#[test]
fn parallel_build_is_byte_identical_to_sequential() {
    let corpus = GeneratorConfig::default().with_seed(505).generate(90);
    let mut qi = corpus.interner().clone();
    let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)"]
        .iter()
        .map(|s| parse_query(s, &mut qi).unwrap())
        .collect();
    for coding in Coding::ALL {
        let d1 = tmp_dir(&format!("seq-{coding:?}").to_lowercase());
        let d2 = tmp_dir(&format!("par-{coding:?}").to_lowercase());
        let seq =
            SubtreeIndex::build(&d1, corpus.trees(), &qi, IndexOptions::new(3, coding)).unwrap();
        let par =
            SubtreeIndex::build_parallel(&d2, corpus.trees(), &qi, IndexOptions::new(3, coding), 4)
                .unwrap();
        assert_eq!(seq.stats().keys, par.stats().keys, "{coding:?}");
        assert_eq!(seq.stats().postings, par.stats().postings, "{coding:?}");
        assert_eq!(
            seq.stats().posting_bytes,
            par.stats().posting_bytes,
            "{coding:?} stitched bytes must match sequential encoding"
        );
        for q in &queries {
            assert_eq!(
                seq.evaluate(q).unwrap().matches,
                par.evaluate(q).unwrap().matches,
                "{coding:?}"
            );
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
