//! Seekable posting blocks: skip-header round-trips across every build
//! path, randomized seek-vs-linear cursor differentials, the seeking
//! executor against the draining one, and clean fallback on pre-skip
//! (`SIMETA1`) and corrupt-header inputs.

use si_core::build_ext::ExternalBuildConfig;
use si_core::coding::{
    build_list_value, decode_postings, split_skip_header, NodeVal, Posting, PostingBuilder,
    PostingCursor, SliceSource, DEFAULT_RESTART_INTERVAL,
};
use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{Coding, ExecContext, IndexOptions, PlannerMode, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_parsetree::{LabelInterner, ParseTree, TreeId};
use si_query::{matcher::Matcher, parse_query, Query};
use si_storage::BTree;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-seek-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ground_truth(trees: &[ParseTree], query: &Query) -> Vec<(TreeId, u32)> {
    let mut out = Vec::new();
    for (tid, tree) in trees.iter().enumerate() {
        for root in Matcher::new(tree, query).roots() {
            out.push((tid as TreeId, root.0));
        }
    }
    out
}

/// Deterministic xorshift so the randomized differentials replay.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Every build path stamps `SIMETA2` and prefixes every non-empty list
/// with a parseable skip header at the default restart interval, while
/// the payload decodes to exactly what the cursor streams — across all
/// three codings, and with identical query answers between paths.
#[test]
fn skip_headers_round_trip_across_codings_and_build_paths() {
    let corpus = GeneratorConfig::default().with_seed(0x5EEC).generate(90);
    let mut qi = corpus.interner().clone();
    let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)", "NN"]
        .iter()
        .map(|s| parse_query(s, &mut qi).unwrap())
        .collect();
    for coding in Coding::ALL {
        let options = IndexOptions::new(3, coding);
        let build = |path: &str| tmp_dir(&format!("rt-{path}-{coding:?}").to_lowercase());
        let dirs = [build("mem"), build("par"), build("ext")];
        let indexes = [
            SubtreeIndex::build(&dirs[0], corpus.trees(), &qi, options).unwrap(),
            SubtreeIndex::build_parallel(&dirs[1], corpus.trees(), &qi, options, 3).unwrap(),
            SubtreeIndex::build_external(
                &dirs[2],
                corpus.trees(),
                &qi,
                options,
                ExternalBuildConfig {
                    run_budget_bytes: 4 << 10, // force multi-run merges
                },
            )
            .unwrap(),
        ];
        let expect: Vec<Vec<(TreeId, u32)>> = queries
            .iter()
            .map(|q| ground_truth(corpus.trees(), q))
            .collect();
        for (index, dir) in indexes.iter().zip(&dirs) {
            assert!(index.has_skip_headers(), "{coding:?} {dir:?}");
            let meta = std::fs::read(dir.join("si.meta")).unwrap();
            assert_eq!(&meta[..8], b"SIMETA2\0", "{coding:?} {dir:?}");
            for (q, want) in queries.iter().zip(&expect) {
                assert_eq!(
                    &index.evaluate(q).unwrap().matches,
                    want,
                    "{coding:?} {dir:?}"
                );
            }
            // Walk the raw B+Tree: every non-empty value is header +
            // byte-identical legacy payload, and the header's restart
            // points tile the payload at the default interval.
            let bt = BTree::open_readonly(&dir.join("index.bt")).unwrap();
            let key_nodes = |key: &[u8]| si_core::canonical::key_size(key).unwrap_or(1);
            let mut lists = 0usize;
            for entry in bt.iter().unwrap() {
                let (key, value) = entry.unwrap();
                if value.is_empty() {
                    continue;
                }
                lists += 1;
                let (table, payload) = split_skip_header(&value).unwrap();
                let table = table.expect("non-empty list carries a skip header");
                assert_eq!(table.interval(), DEFAULT_RESTART_INTERVAL);
                let nodes = key_nodes(&key);
                let linear: Vec<Posting> = decode_postings(coding, nodes, payload).collect();
                assert_eq!(
                    table.restarts(),
                    (linear.len().max(1) - 1) / DEFAULT_RESTART_INTERVAL as usize,
                    "one restart per full interval past the first"
                );
                // The cursor (header-aware) streams the same postings.
                let mut cursor =
                    PostingCursor::with_format(coding, nodes, SliceSource::new(&value), true);
                let mut streamed = Vec::new();
                while let Some(p) = cursor.next_posting().unwrap() {
                    streamed.push(p.clone());
                }
                assert_eq!(streamed, linear, "{coding:?} {dir:?}");
            }
            assert!(lists > 0, "corpus produced posting lists");
        }
        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// Randomized cursor differential: after `seek_to_tid(t)` the stream
/// must be exactly the linear decode minus a prefix of postings that
/// all have `tid < t`, with the reported skip count equal to that
/// prefix's length.
#[test]
fn seek_to_tid_matches_linear_decode() {
    let mut rng = Rng(0x5EE1_0000_0001);
    for coding in Coding::ALL {
        let key_nodes = 2usize;
        let mut builder = PostingBuilder::new(coding);
        let mut tid: TreeId = 0;
        let mut pre = 0u32;
        for i in 0..3000u32 {
            // Occasional duplicate tids exercise the multi-occurrence
            // codings; filter-based dedups them itself. Root pre-orders
            // must stay nondecreasing within a tid.
            if i == 0 || rng.below(5) != 0 {
                tid += 1 + rng.below(3) as TreeId;
                pre = rng.below(1000) as u32;
            } else {
                pre += 1 + rng.below(5) as u32;
            }
            let nodes = [
                (
                    NodeVal {
                        pre,
                        post: pre + 10,
                        level: 1,
                    },
                    1u8,
                ),
                (
                    NodeVal {
                        pre: pre + 1,
                        post: pre + 2,
                        level: 2,
                    },
                    2u8,
                ),
            ];
            builder.push(tid, &nodes);
        }
        let (first, last) = (builder.first_tid().unwrap(), builder.last_tid().unwrap());
        let payload = builder.finish();
        let (value, _hist) =
            build_list_value(coding, key_nodes, &payload, 64, first, last).unwrap();
        let linear: Vec<Posting> = {
            let mut c =
                PostingCursor::with_format(coding, key_nodes, SliceSource::new(&value), true);
            let mut out = Vec::new();
            while let Some(p) = c.next_posting().unwrap() {
                out.push(p.clone());
            }
            out
        };
        assert!(linear.len() > 500, "{coding:?}");

        // Fresh-cursor seeks to random targets (including past-the-end).
        for _ in 0..60 {
            let t = rng.below(u64::from(last) + 10) as TreeId;
            let mut c =
                PostingCursor::with_format(coding, key_nodes, SliceSource::new(&value), true);
            let skipped = c.seek_to_tid(t).unwrap() as usize;
            assert!(
                linear[..skipped].iter().all(|p| p.tid() < t),
                "{coding:?}: a posting with tid >= {t} was skipped"
            );
            let mut tail = Vec::new();
            while let Some(p) = c.next_posting().unwrap() {
                tail.push(p.clone());
            }
            assert_eq!(tail, linear[skipped..], "{coding:?} seek to {t}");
        }

        // One cursor, ascending targets interleaved with decoding: the
        // posting after each seek is the linear posting at `position()`.
        let mut c = PostingCursor::with_format(coding, key_nodes, SliceSource::new(&value), true);
        let mut t: TreeId = 0;
        loop {
            t += rng.below(u64::from(last) / 6 + 1) as TreeId + 1;
            if t > last {
                break;
            }
            let before = c.position();
            let skipped = c.seek_to_tid(t).unwrap();
            assert_eq!(
                c.position(),
                before + skipped,
                "{coding:?}: position accounting"
            );
            let at = c.position() as usize;
            match c.next_posting().unwrap() {
                Some(p) => assert_eq!(*p, linear[at], "{coding:?} monotone seek to {t}"),
                None => break,
            }
        }
    }
}

/// A pre-skip index file (legacy `SIMETA1` magic, bare payloads) opens
/// cleanly, reports no skip headers, and answers byte-identically —
/// synthesized here by stripping every header off a fresh index and
/// rewriting the meta magic, exactly the bytes an old build would leave.
#[test]
fn legacy_simeta1_index_answers_identically() {
    let corpus = GeneratorConfig::default().with_seed(0x01D).generate(80);
    let mut qi = corpus.interner().clone();
    let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)"]
        .iter()
        .map(|s| parse_query(s, &mut qi).unwrap())
        .collect();
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("legacy-{coding:?}").to_lowercase());
        let index =
            SubtreeIndex::build(&dir, corpus.trees(), &qi, IndexOptions::new(3, coding)).unwrap();
        let expect: Vec<Vec<(TreeId, u32)>> = queries
            .iter()
            .map(|q| index.evaluate(q).unwrap().matches)
            .collect();
        drop(index);

        // Strip the skip header off every list, writing bare payloads.
        let mut bt = BTree::open(&dir.join("index.bt")).unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = bt.iter().unwrap().map(|e| e.unwrap()).collect();
        for (key, value) in &pairs {
            let (_, payload) = split_skip_header(value).unwrap();
            let payload = payload.to_vec();
            bt.insert(key, &payload).unwrap();
        }
        bt.flush().unwrap();
        drop(bt);
        // Rewind the format flag to the pre-skip magic.
        let meta_path = dir.join("si.meta");
        let mut meta = std::fs::read(&meta_path).unwrap();
        assert_eq!(&meta[..8], b"SIMETA2\0");
        meta[..8].copy_from_slice(b"SIMETA1\0");
        std::fs::write(&meta_path, &meta).unwrap();

        let legacy = SubtreeIndex::open(&dir).unwrap();
        assert!(!legacy.has_skip_headers(), "{coding:?}");
        for (q, want) in queries.iter().zip(&expect) {
            let got = legacy.evaluate(q).unwrap();
            assert_eq!(&got.matches, want, "{coding:?}");
            assert_eq!(got.matches, ground_truth(corpus.trees(), q), "{coding:?}");
            // Legacy lists cannot seek; the executor must not count any.
            assert_eq!(got.stats.seeks, 0, "{coding:?}");
            assert_eq!(got.stats.postings_skipped, 0, "{coding:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Truncated or version-bumped skip headers surface as corruption
/// errors, not silent misdecodes — from both the whole-value splitter
/// and the streaming cursor.
#[test]
fn corrupt_skip_headers_error_cleanly() {
    let mut builder = PostingBuilder::new(Coding::FilterBased);
    for tid in 0..200u32 {
        builder.push(
            tid,
            &[(
                NodeVal {
                    pre: 1,
                    post: 2,
                    level: 1,
                },
                1,
            )],
        );
    }
    let payload = builder.finish();
    let (value, _) = build_list_value(Coding::FilterBased, 1, &payload, 16, 0, 199).unwrap();

    // Sanity: the intact value round-trips.
    let (table, rest) = split_skip_header(&value).unwrap();
    assert!(table.is_some());
    assert_eq!(rest, &payload[..]);

    // Truncate inside the header (keep the version byte plus one more).
    let truncated = &value[..2];
    assert!(split_skip_header(truncated).is_err());
    let mut c =
        PostingCursor::with_format(Coding::FilterBased, 1, SliceSource::new(truncated), true);
    assert!(c.next_posting().is_err());

    // An unknown header version is rejected, never guessed at.
    let mut bumped = value.clone();
    bumped[0] = 9;
    assert!(split_skip_header(&bumped).is_err());
    let mut c = PostingCursor::with_format(Coding::FilterBased, 1, SliceSource::new(&bumped), true);
    assert!(c.next_posting().is_err());

    // An empty value stays a clean empty list in both formats.
    let (none, rest) = split_skip_header(&[]).unwrap();
    assert!(none.is_none() && rest.is_empty());
    let mut c = PostingCursor::with_format(Coding::FilterBased, 1, SliceSource::new(&[]), true);
    assert!(c.next_posting().unwrap().is_none());
    assert_eq!(c.seek_to_tid(5).unwrap(), 0);
}

/// Randomized executor differential: seeking on vs off must answer
/// identically across codings × planner modes × mono/sharded layouts,
/// with the in-memory matcher as independent ground truth — and drains
/// must never report a seek.
#[test]
fn seeking_and_draining_executors_agree() {
    for round in 0u64..2 {
        let seed = 0x5EE0 + round * 104729;
        let corpus = GeneratorConfig::default()
            .with_seed(seed)
            .generate(120 + round as usize * 60);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(seed + 1)
            .generate_into(20, &mut interner);
        let fb = si_corpus::fb_query_set(&corpus, &heldout, seed + 2);
        let queries: Vec<&Query> = fb.iter().step_by(7).map(|f| &f.query).collect();
        assert!(!queries.is_empty());
        for coding in Coding::ALL {
            let options = IndexOptions::new(2 + (round as usize % 2), coding);
            let mono_dir = tmp_dir(&format!("ab-mono-{round}-{coding:?}").to_lowercase());
            let shard_dir = tmp_dir(&format!("ab-shard-{round}-{coding:?}").to_lowercase());
            let mono = SubtreeIndex::build(&mono_dir, corpus.trees(), &interner, options).unwrap();
            let sharded = ShardedIndex::build(
                &shard_dir,
                corpus.trees(),
                &interner,
                options,
                ShardedBuildConfig {
                    shards: 2,
                    workers: 2,
                    mode: ShardBuildMode::InMemory,
                },
            )
            .unwrap();
            for planner in [PlannerMode::CostBased, PlannerMode::ByteLen] {
                let seeking = ExecContext {
                    planner,
                    ..ExecContext::default()
                };
                let draining = ExecContext {
                    planner,
                    seeks: false,
                    ..ExecContext::default()
                };
                for q in &queries {
                    let a = mono.evaluate_with(q, &seeking).unwrap();
                    let b = mono.evaluate_with(q, &draining).unwrap();
                    assert_eq!(a.matches, b.matches, "{coding:?} {planner:?} round {round}");
                    assert_eq!(b.stats.seeks, 0, "drains never seek");
                    assert_eq!(b.stats.postings_skipped, 0, "drains decode everything");
                    assert_eq!(
                        a.matches,
                        ground_truth(corpus.trees(), q),
                        "{coding:?} {planner:?}"
                    );
                    // The sharded path builds per-shard contexts itself
                    // (seeks stay on there); it must agree with both.
                    let sa = sharded.evaluate_with_planner(q, planner).unwrap();
                    assert_eq!(sa.matches, a.matches, "sharded {coding:?} {planner:?}");
                }
            }
            std::fs::remove_dir_all(&mono_dir).ok();
            std::fs::remove_dir_all(&shard_dir).ok();
        }
    }
}

/// End-to-end seek proof: a corpus long enough to carry restart points
/// on its common lists, probed by a selective query anchored near the
/// tail, must jump at least one whole restart block undecoded — and
/// still answer exactly like the draining executor and the matcher.
#[test]
fn selective_queries_skip_restart_blocks_end_to_end() {
    // 1500 structurally identical trees with unique tokens: the S/NP/VP
    // keys span every tid (1500-posting lists → one restart at 1024),
    // while NN(w{i}) pins tree i exactly.
    let mut li = LabelInterner::new();
    let trees: Vec<ParseTree> = (0..1500)
        .map(|i| {
            si_parsetree::ptb::parse(&format!("(S (NP (NN w{i})) (VP (VBZ barks)))"), &mut li)
                .unwrap()
        })
        .collect();
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("e2e-{coding:?}").to_lowercase());
        let index = SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, coding)).unwrap();
        assert!(index.has_skip_headers());
        let mut qi = index.interner();
        let q = parse_query("S(//NN(w1400))", &mut qi).unwrap();
        let want = ground_truth(&trees, &q);
        assert_eq!(want.len(), 1, "the token pins exactly one tree");

        let seeking = index.evaluate_with(&q, &ExecContext::default()).unwrap();
        assert_eq!(seeking.matches, want, "{coding:?}");
        assert!(seeking.stats.seeks > 0, "{coding:?}: no seeks recorded");
        assert!(
            seeking.stats.postings_skipped >= u64::from(DEFAULT_RESTART_INTERVAL),
            "{coding:?}: expected at least one whole restart block skipped, got {}",
            seeking.stats.postings_skipped
        );

        let draining = index
            .evaluate_with(
                &q,
                &ExecContext {
                    seeks: false,
                    ..ExecContext::default()
                },
            )
            .unwrap();
        assert_eq!(draining.matches, want, "{coding:?}");
        assert_eq!(draining.stats.seeks, 0);
        assert_eq!(draining.stats.postings_skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
