//! Property tests for the core invariants: canonical keys are
//! sibling-order invariant, enumeration agrees with brute force,
//! decompositions are always valid covers, and automorphisms are true
//! structure-preserving permutations.
//!
//! Requires the external `proptest` crate; compiled out by default
//! because this build environment is offline (enable the `proptest`
//! feature after adding the dependency to run them).
#![cfg(feature = "proptest")]

use std::collections::HashSet;

use proptest::prelude::*;
use si_core::canonical::{automorphisms, canon_encode, decode_key, key_size};
use si_core::cover::{decompose, minrc};
use si_core::extract::extract_subtrees;
use si_core::Coding;
use si_parsetree::{LabelInterner, NodeId, ParseTree, TreeBuilder};
use si_query::{Axis, QNodeId, Query, QueryBuilder};

#[derive(Debug, Clone)]
struct Shape {
    label: u8,
    children: Vec<Shape>,
}

fn shape_strategy(max_label: u8) -> impl Strategy<Value = Shape> {
    let leaf = (0..max_label).prop_map(|label| Shape {
        label,
        children: Vec::new(),
    });
    leaf.prop_recursive(4, 24, 3, move |inner| {
        ((0..max_label), prop::collection::vec(inner, 0..3))
            .prop_map(|(label, children)| Shape { label, children })
    })
}

fn build_tree(shape: &Shape, li: &mut LabelInterner) -> ParseTree {
    fn go(shape: &Shape, b: &mut TreeBuilder, li: &mut LabelInterner) {
        b.open(li.intern(&format!("L{}", shape.label)));
        for c in &shape.children {
            go(c, b, li);
        }
        b.close();
    }
    let mut b = TreeBuilder::new();
    go(shape, &mut b, li);
    b.finish().unwrap()
}

/// Builds the same shape with children reversed at every level.
fn reversed(shape: &Shape) -> Shape {
    Shape {
        label: shape.label,
        children: shape.children.iter().rev().map(reversed).collect(),
    }
}

/// Builds a query from the shape with random axes driven by `axis_bits`.
fn build_query(shape: &Shape, axis_bits: u64, li: &mut LabelInterner) -> Query {
    fn go(shape: &Shape, bits: &mut u64, b: &mut QueryBuilder, li: &mut LabelInterner) {
        let axis = if *bits & 1 == 1 {
            Axis::Descendant
        } else {
            Axis::Child
        };
        *bits >>= 1;
        b.open(li.intern(&format!("L{}", shape.label)), axis);
        for c in &shape.children {
            go(c, bits, b, li);
        }
        b.close();
    }
    let mut b = QueryBuilder::new();
    let mut bits = axis_bits;
    go(shape, &mut bits, &mut b, li);
    b.finish().unwrap()
}

fn encode_full(tree: &ParseTree) -> Vec<u8> {
    canon_encode(tree.root(), &|n| tree.label(n).id(), &|n| {
        tree.children(n).collect::<Vec<_>>()
    })
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_key_is_sibling_order_invariant(shape in shape_strategy(4)) {
        let mut li = LabelInterner::new();
        let a = build_tree(&shape, &mut li);
        let b = build_tree(&reversed(&shape), &mut li);
        prop_assert_eq!(encode_full(&a), encode_full(&b));
    }

    #[test]
    fn canonical_decode_round_trips(shape in shape_strategy(4)) {
        let mut li = LabelInterner::new();
        let tree = build_tree(&shape, &mut li);
        let key = encode_full(&tree);
        let decoded = decode_key(&key).expect("decodes");
        prop_assert_eq!(decoded.size(), tree.len());
        prop_assert_eq!(key_size(&key), Some(tree.len()));
    }

    #[test]
    fn extraction_counts_match_brute_force(shape in shape_strategy(3), mss in 1usize..4) {
        let mut li = LabelInterner::new();
        let tree = build_tree(&shape, &mut li);
        let subtrees = extract_subtrees(&tree, mss);
        // Node sets are exactly the connected rooted subsets of size <= mss.
        let got: HashSet<Vec<u32>> = subtrees
            .iter()
            .map(|s| {
                let mut ids: Vec<u32> = s.nodes.iter().map(|n| n.0).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        prop_assert_eq!(got.len(), subtrees.len(), "no duplicate occurrences");
        let mut brute: HashSet<Vec<u32>> = HashSet::new();
        for root in tree.nodes() {
            grow(&tree, vec![root], mss, &mut brute);
        }
        let got_sorted: Vec<_> = {
            let mut v: Vec<_> = got.into_iter().collect();
            v.sort();
            v
        };
        let brute_sorted: Vec<_> = {
            let mut v: Vec<_> = brute.into_iter().collect();
            v.sort();
            v
        };
        prop_assert_eq!(got_sorted, brute_sorted);
    }

    #[test]
    fn covers_are_always_valid(shape in shape_strategy(4), axis_bits in any::<u64>(), mss in 1usize..5) {
        let mut li = LabelInterner::new();
        let query = build_query(&shape, axis_bits, &mut li);
        for coding in Coding::ALL {
            let cover = decompose(&query, mss, coding);
            prop_assert_eq!(cover.validate(&query, mss), Ok(()),
                "coding {:?}", coding);
        }
    }

    #[test]
    fn minrc_exposes_uncovered_edge_parents(shape in shape_strategy(4), axis_bits in any::<u64>(), mss in 1usize..5) {
        let mut li = LabelInterner::new();
        let query = build_query(&shape, axis_bits, &mut li);
        let cover = minrc(&query, mss);
        // Every query edge is either inside one cover subtree, or its
        // upper endpoint roots some subtree (so root-only joins can
        // check it). For // edges, the lower endpoint must root its
        // component's covers.
        for v in query.nodes().skip(1) {
            let u = query.parent(v).unwrap();
            if query.axis(v) == Axis::Child {
                let inside = cover.subtrees.iter().any(|s| s.contains(u) && s.contains(v));
                if !inside {
                    prop_assert!(cover.subtrees.iter().any(|s| s.root == u));
                    prop_assert!(cover.subtrees.iter().any(|s| s.root == v));
                }
            } else {
                prop_assert!(cover.subtrees.iter().any(|s| s.root == u),
                    "// parent {} must be a cover root", u.0);
                prop_assert!(cover.subtrees.iter().any(|s| s.root == v));
            }
        }
    }

    #[test]
    fn automorphisms_preserve_structure(shape in shape_strategy(2)) {
        let mut li = LabelInterner::new();
        let tree = build_tree(&shape, &mut li);
        let key = encode_full(&tree);
        let decoded = decode_key(&key).unwrap();
        let autos = automorphisms(&decoded, 1000);
        prop_assert!(!autos.is_empty());
        // Each is a permutation fixing the root.
        let n = decoded.size();
        for perm in &autos {
            prop_assert_eq!(perm.len(), n);
            prop_assert_eq!(perm[0], 0, "root is fixed");
            let mut seen = vec![false; n];
            for &p in perm {
                prop_assert!(!seen[p], "not a permutation");
                seen[p] = true;
            }
            // Labels at mapped positions agree.
            let labels = preorder_labels(&decoded);
            for (i, &p) in perm.iter().enumerate() {
                prop_assert_eq!(labels[i], labels[p]);
            }
        }
    }
}

fn grow(tree: &ParseTree, set: Vec<NodeId>, mss: usize, out: &mut HashSet<Vec<u32>>) {
    let mut ids: Vec<u32> = set.iter().map(|n| n.0).collect();
    ids.sort_unstable();
    if !out.insert(ids) {
        return;
    }
    if set.len() == mss {
        return;
    }
    for &m in &set {
        for c in tree.children(m) {
            if !set.contains(&c) {
                let mut bigger = set.clone();
                bigger.push(c);
                grow(tree, bigger, mss, out);
            }
        }
    }
}

fn preorder_labels(t: &si_core::canonical::CanonTree) -> Vec<u32> {
    let mut out = vec![t.label];
    for c in &t.children {
        out.extend(preorder_labels(c));
    }
    out
}

/// Sanity: query node ids used in properties exist.
#[test]
fn qnode_index_sanity() {
    let mut li = LabelInterner::new();
    let mut b = QueryBuilder::new();
    b.open(li.intern("A"), Axis::Child);
    b.leaf(li.intern("B"), Axis::Child);
    b.close();
    let q = b.finish().unwrap();
    assert_eq!(q.nodes().collect::<Vec<_>>(), vec![QNodeId(0), QNodeId(1)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    #[allow(clippy::needless_range_loop, clippy::only_used_in_recursion)]
    fn holistic_twig_agrees_with_naive_on_random_streams(
        seed in any::<u64>(),
        twig_size in 2usize..5,
    ) {
        use si_core::coding::NodeVal;
        use si_core::holistic::{eval_twig, Twig, TwigAxis, TwigNode};

        // Deterministic pseudo-random forest of interval-numbered nodes.
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Random twig.
        let mut nodes = vec![TwigNode { parent: None, axis: TwigAxis::Child }];
        for i in 1..twig_size {
            nodes.push(TwigNode {
                parent: Some((rnd() % i as u64) as usize),
                axis: if rnd() % 2 == 0 { TwigAxis::Child } else { TwigAxis::Descendant },
            });
        }
        let twig = Twig::new(nodes.clone());
        // Random trees (parent arrays), random label->twig-node streams.
        let mut all: Vec<(u32, NodeVal)> = Vec::new();
        for tid in 0..4u32 {
            let n = 3 + (rnd() % 10) as usize;
            let mut parent = vec![usize::MAX; n];
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
            for i in 1..n {
                parent[i] = (rnd() % i as u64) as usize;
                let p = parent[i];
                children[p].push(i);
            }
            let mut pre = vec![0u32; n];
            let mut post = vec![0u32; n];
            let mut level = vec![0u16; n];
            let mut prec = 0u32;
            let mut postc = 0u32;
            #[allow(clippy::too_many_arguments)]
            fn dfs(
                v: usize,
                children: &[Vec<usize>],
                pre: &mut [u32],
                post: &mut [u32],
                level: &mut [u16],
                prec: &mut u32,
                postc: &mut u32,
                depth: u16,
            ) {
                pre[v] = *prec;
                *prec += 1;
                level[v] = depth;
                for &c in &children[v] {
                    dfs(c, children, pre, post, level, prec, postc, depth + 1);
                }
                post[v] = *postc;
                *postc += 1;
            }
            dfs(0, &children, &mut pre, &mut post, &mut level, &mut prec, &mut postc, 0);
            for i in 0..n {
                all.push((tid, NodeVal { pre: pre[i], post: post[i], level: level[i] }));
            }
        }
        // Random subsets as the twig-node streams, sorted by (tid, pre).
        let mut streams: Vec<Vec<(u32, NodeVal)>> = Vec::new();
        for _ in 0..twig_size {
            let mut s: Vec<(u32, NodeVal)> =
                all.iter().filter(|_| rnd() % 3 != 0).copied().collect();
            s.sort_by_key(|(tid, v)| (*tid, v.pre));
            streams.push(s);
        }
        // Naive reference.
        fn satisfies(
            twig: &Twig,
            nodes: &[TwigNode],
            streams: &[Vec<(u32, NodeVal)>],
            q: usize,
            tid: u32,
            v: NodeVal,
        ) -> bool {
            (0..nodes.len())
                .filter(|&c| nodes[c].parent == Some(q))
                .all(|c| {
                    streams[c].iter().any(|&(ctid, cv)| {
                        ctid == tid
                            && match nodes[c].axis {
                                TwigAxis::Descendant => v.is_ancestor_of(&cv),
                                TwigAxis::Child => v.is_parent_of(&cv),
                            }
                            && satisfies(twig, nodes, streams, c, tid, cv)
                    })
                })
        }
        let mut want: Vec<(u32, u32)> = streams[0]
            .iter()
            .filter(|&&(tid, v)| satisfies(&twig, &nodes, &streams, 0, tid, v))
            .map(|&(tid, v)| (tid, v.pre))
            .collect();
        want.sort_unstable();
        want.dedup();
        let got: Vec<(u32, u32)> = eval_twig(&twig, &streams)
            .into_iter()
            .map(|(tid, v)| (tid, v.pre))
            .collect();
        prop_assert_eq!(got, want);
    }
}
