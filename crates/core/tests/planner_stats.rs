//! Statistics-subsystem tests: the stats segment round-trips through
//! every build path, pre-stats index files open and answer correctly
//! through the byte-length fallback, and the cost-based planner
//! produces bit-identical match sets to the byte-ordered heuristic and
//! the materializing oracle on a randomized corpus (join order and
//! tid-range pruning must never change results).

use std::collections::HashMap;

use si_core::build_ext::ExternalBuildConfig;
use si_core::coding::Posting;
use si_core::cover::decompose;
use si_core::{Coding, ExecContext, ExecMode, IndexOptions, PlannerMode, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_parsetree::{LabelInterner, ParseTree, TreeId};
use si_query::{parse_query, Query};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-plstats-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recounts one decoded posting list's statistics the slow way.
fn brute_stats(postings: &[Posting]) -> (u64, u64, TreeId, TreeId) {
    let mut distinct = 0u64;
    let mut last: Option<TreeId> = None;
    let mut first_tid = 0;
    let mut last_tid = 0;
    for p in postings {
        let tid = match p {
            Posting::Tid(tid) => *tid,
            Posting::Root { tid, .. } => *tid,
            Posting::Occurrence { tid, .. } => *tid,
        };
        if last != Some(tid) {
            distinct += 1;
        }
        if last.is_none() {
            first_tid = tid;
        }
        last = Some(tid);
        last_tid = tid;
    }
    (postings.len() as u64, distinct, first_tid, last_tid)
}

#[test]
fn stats_segment_matches_brute_force_recount_per_build_path() {
    let corpus = GeneratorConfig::default().with_seed(0xBEEF).generate(80);
    for coding in Coding::ALL {
        let dir_a = tmp_dir(&format!("mem-{coding:?}"));
        let dir_b = tmp_dir(&format!("par-{coding:?}"));
        let dir_c = tmp_dir(&format!("ext-{coding:?}"));
        let options = IndexOptions::new(3, coding);
        let built = [
            SubtreeIndex::build(&dir_a, corpus.trees(), corpus.interner(), options).unwrap(),
            SubtreeIndex::build_parallel(&dir_b, corpus.trees(), corpus.interner(), options, 3)
                .unwrap(),
            SubtreeIndex::build_external(
                &dir_c,
                corpus.trees(),
                corpus.interner(),
                options,
                ExternalBuildConfig {
                    run_budget_bytes: 1 << 12, // force several runs
                },
            )
            .unwrap(),
        ];
        for index in &built {
            assert!(index.has_key_stats(), "{coding}: segment written at build");
            for entry in index.iter_keys().unwrap() {
                let (key, bytes) = entry.unwrap();
                let stats = index.key_stats(&key).unwrap().expect("indexed key");
                assert!(stats.exact, "{coding}: segment stats are exact");
                let postings = index.postings(&key).unwrap().unwrap();
                let (count, distinct, first, last) = brute_stats(&postings);
                assert_eq!(stats.postings, count, "{coding}: posting count");
                assert_eq!(stats.distinct_tids, distinct, "{coding}: distinct tids");
                assert_eq!(stats.first_tid, first, "{coding}: first tid");
                assert_eq!(stats.last_tid, last, "{coding}: last tid");
                assert_eq!(stats.bytes, bytes.len() as u64, "{coding}: encoded bytes");
            }
        }
        for dir in [dir_a, dir_b, dir_c] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn stats_survive_reopen() {
    let corpus = GeneratorConfig::default().with_seed(0xF00D).generate(50);
    let dir = tmp_dir("reopen");
    let mut snapshot: HashMap<Vec<u8>, si_core::KeyStats> = HashMap::new();
    {
        let index = SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, Coding::RootSplit),
        )
        .unwrap();
        for entry in index.iter_keys().unwrap() {
            let (key, _) = entry.unwrap();
            snapshot.insert(key.clone(), index.key_stats(&key).unwrap().unwrap());
        }
    }
    let index = SubtreeIndex::open(&dir).unwrap();
    assert!(index.has_key_stats());
    for (key, want) in &snapshot {
        assert_eq!(index.key_stats(key).unwrap().as_ref(), Some(want));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Zeroes the stats-segment marker in `index.bt`'s meta page, turning a
/// fresh index into a faithful simulation of one written before the
/// segment existed (the old writer left zeroes there).
fn strip_stats_segment(dir: &std::path::Path) {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("index.bt"))
        .unwrap();
    f.seek(SeekFrom::Start(36)).unwrap();
    f.write_all(&[0u8; 20]).unwrap(); // marker (8) + head (4) + len (8)
}

#[test]
fn pre_stats_index_opens_and_answers_through_fallback() {
    let corpus = GeneratorConfig::default().with_seed(0x01D).generate(60);
    let queries = ["NP(NN)", "S(NP)(VP)", "S(NP(DT)(NN))(VP(VBZ))", "S(//NN)"];
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("old-{coding:?}"));
        let index = SubtreeIndex::build(
            &dir,
            corpus.trees(),
            corpus.interner(),
            IndexOptions::new(3, coding),
        )
        .unwrap();
        let mut interner = index.interner();
        let parsed: Vec<Query> = queries
            .iter()
            .map(|q| parse_query(q, &mut interner).unwrap())
            .collect();
        let expected: Vec<_> = parsed
            .iter()
            .map(|q| index.evaluate(q).unwrap().matches)
            .collect();
        let sample_key = decompose(&parsed[0], 3, coding).subtrees[0].key.clone();
        drop(index);

        strip_stats_segment(&dir);
        let index = SubtreeIndex::open(&dir).unwrap();
        assert!(!index.has_key_stats(), "{coding}: segment stripped");
        let est = index.key_stats(&sample_key).unwrap().expect("key indexed");
        assert!(!est.exact, "{coding}: fallback stats are estimates");
        assert_eq!(
            (est.first_tid, est.last_tid),
            (0, TreeId::MAX),
            "{coding}: fallback covers the full tid range (never prunes)"
        );
        assert_eq!(
            est.bytes,
            index.posting_len(&sample_key).unwrap().unwrap(),
            "{coding}: fallback carries the encoded length"
        );
        for (q, want) in parsed.iter().zip(&expected) {
            let got = index.evaluate(q).unwrap();
            assert_eq!(&got.matches, want, "{coding}: fallback answers match");
            assert!(!got.stats.range_pruned, "{coding}: estimates never prune");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn range_pruning_fires_and_preserves_emptiness() {
    // Two unique constructions in different trees: their conjunction is
    // empty, and with exact stats the planner proves it from disjoint
    // tid ranges alone.
    let mut li = LabelInterner::new();
    let srcs = [
        "(S (NP (QQA alpha) (QQB beta)) (VP (VBZ hums)))",
        "(S (NP (NN cat)) (VP (VBD sat)))",
        "(S (NP (DT a) (NN dog)) (VP (VBZ barks)))",
        "(S (NP (QQC gamma) (QQD delta)) (VP (VBZ sings)))",
    ];
    let trees: Vec<ParseTree> = srcs
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let text = "S(//NP(QQA)(QQB))(//NP(QQC)(QQD))";
    for coding in Coding::ALL {
        let dir = tmp_dir(&format!("prune-{coding:?}"));
        let index = SubtreeIndex::build(&dir, &trees, &li, IndexOptions::new(3, coding)).unwrap();
        let mut interner = index.interner();
        let q = parse_query(text, &mut interner).unwrap();
        let cost = index.evaluate(&q).unwrap();
        assert!(cost.matches.is_empty(), "{coding}: conjunction is empty");
        assert!(
            cost.stats.range_pruned,
            "{coding}: disjoint tid ranges prune before execution"
        );
        assert_eq!(
            cost.stats.postings_fetched, 0,
            "{coding}: no posting decoded on the pruned path"
        );
        let byte_ctx = ExecContext {
            planner: PlannerMode::ByteLen,
            ..Default::default()
        };
        let byte = index.evaluate_with(&q, &byte_ctx).unwrap();
        assert!(byte.matches.is_empty());
        assert!(!byte.stats.range_pruned, "byte mode never prunes");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The planner-ordering differential: on a randomized corpus, the
/// cost-based planner, the byte-ordered planner and the materializing
/// oracle must produce identical match sets for every query and coding.
#[test]
fn planner_modes_and_oracle_agree_on_randomized_corpus() {
    let corpus = GeneratorConfig::default().with_seed(0x5EED).generate(120);
    let queries = [
        "NP(NN)",
        "S(NP)(VP)",
        "S(NP(NN))(VP)",
        "S(NP(DT)(NN))(VP(VBZ))",
        "VP(//NN)",
        "S(//NP(//NN))(//VP)",
        "S(NP(NP)(PP))(VP)",
        "NP(NP(NN))(PP(IN)(NP))",
        "S(//DT)(//VBZ)",
        "S(NP(NNS))(VP(VBZ)(NP(NN)))",
    ];
    for coding in Coding::ALL {
        for mss in [2, 3] {
            let dir = tmp_dir(&format!("diff-{coding:?}-{mss}"));
            let mut index = SubtreeIndex::build(
                &dir,
                corpus.trees(),
                corpus.interner(),
                IndexOptions::new(mss, coding),
            )
            .unwrap();
            let mut interner = index.interner();
            for text in queries {
                let q = parse_query(text, &mut interner).unwrap();
                let cost = index.evaluate(&q).unwrap().matches;
                let byte_ctx = ExecContext {
                    planner: PlannerMode::ByteLen,
                    ..Default::default()
                };
                let byte = index.evaluate_with(&q, &byte_ctx).unwrap().matches;
                index.set_exec_mode(ExecMode::Materialized);
                let oracle = index.evaluate(&q).unwrap().matches;
                index.set_exec_mode(ExecMode::Streaming);
                assert_eq!(cost, byte, "{text} under {coding} mss={mss}: planner modes");
                assert_eq!(cost, oracle, "{text} under {coding} mss={mss}: vs oracle");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
