//! Differential and memory-bound tests for the borrow-based posting
//! pipeline (zero-copy `PostingFeed`).
//!
//! The refactor changed *how* postings flow (borrows out of a reusable
//! decode slot or a pinned cache block, copied into owned tuples only
//! when one survives its source) but must change *nothing* about what
//! any query returns. The randomized suite here drives the borrow-based
//! feed through every configuration axis — all 3 codings ×
//! streaming/materialized × both planner modes × monolith/sharded ×
//! cached/uncached — against the legacy owned path (the materializing
//! evaluator decodes postings into owned `Vec`s via `PostingIter`) and
//! the in-memory matcher ground truth.
//!
//! The memory-bound test pins the headline win: a warm interval-coded
//! scan serves its postings as borrows out of cached blocks, so its
//! `peak_posting_bytes` collapses to root-split levels instead of
//! paying a fresh `nodes` vector per posting per consumer.

use std::sync::Arc;

use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{
    BlockCache, BlockCacheConfig, Coding, ExecContext, ExecMode, IndexOptions, PlannerMode,
    SubtreeIndex,
};
use si_corpus::GeneratorConfig;
use si_parsetree::{LabelInterner, ParseTree, TreeId};
use si_query::{matcher::Matcher, parse_query, Query};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-zerocopy-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ground_truth(trees: &[ParseTree], query: &Query) -> Vec<(TreeId, u32)> {
    let mut out = Vec::new();
    for (tid, tree) in trees.iter().enumerate() {
        for root in Matcher::new(tree, query).roots() {
            out.push((tid as TreeId, root.0));
        }
    }
    out
}

/// The full configuration matrix: for each coding, the borrow-based
/// streaming path (plain, cached cold, cached warm, both planner
/// modes, sharded) must return byte-identical match sets to the owned
/// materializing evaluator and the matcher.
#[test]
fn borrowed_feed_matches_owned_path_across_matrix() {
    for round in 0u64..3 {
        let seed = 0xBEEF + round * 6151;
        let corpus = GeneratorConfig::default()
            .with_seed(seed)
            .generate(70 + round as usize * 30);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(seed + 1)
            .generate_into(20, &mut interner);
        let fb = si_corpus::fb_query_set(&corpus, &heldout, seed + 2);
        let mss = 2 + (round as usize % 2);
        for coding in Coding::ALL {
            let mono_dir = tmp_dir(&format!("m-{round}-{coding:?}").to_lowercase());
            let shard_dir = tmp_dir(&format!("s-{round}-{coding:?}").to_lowercase());
            let mut mono = SubtreeIndex::build(
                &mono_dir,
                corpus.trees(),
                &interner,
                IndexOptions::new(mss, coding),
            )
            .unwrap();
            let sharded = ShardedIndex::build(
                &shard_dir,
                corpus.trees(),
                &interner,
                IndexOptions::new(mss, coding),
                ShardedBuildConfig {
                    shards: 2,
                    workers: 2,
                    mode: ShardBuildMode::InMemory,
                },
            )
            .unwrap();
            let cache = Arc::new(BlockCache::new(BlockCacheConfig::with_budget(8 << 20)));
            for fbq in fb.iter().step_by(4) {
                let expect = ground_truth(corpus.trees(), &fbq.query);

                // Owned path: the materializing evaluator (decodes
                // every posting into owned Vecs via PostingIter).
                mono.set_exec_mode(ExecMode::Materialized);
                let owned = mono.evaluate(&fbq.query).unwrap();
                assert_eq!(owned.matches, expect, "owned oracle {coding} mss={mss}");
                mono.set_exec_mode(ExecMode::Streaming);

                // Borrow-based feed, every configuration.
                for planner in [PlannerMode::CostBased, PlannerMode::ByteLen] {
                    let plain = ExecContext {
                        planner,
                        ..Default::default()
                    };
                    let got = mono.evaluate_with(&fbq.query, &plain).unwrap();
                    assert_eq!(
                        got.matches, expect,
                        "streaming/{planner:?} {coding} mss={mss}"
                    );
                }
                // Cached: first run decodes + warms (borrows on later
                // blocks of hot keys), second run borrows throughout.
                let cached = ExecContext {
                    cache: Some(cache.clone()),
                    ..Default::default()
                };
                let cold = mono.evaluate_with(&fbq.query, &cached).unwrap();
                assert_eq!(cold.matches, expect, "cached cold {coding} mss={mss}");
                let warm = mono.evaluate_with(&fbq.query, &cached).unwrap();
                assert_eq!(warm.matches, expect, "cached warm {coding} mss={mss}");

                // Sharded scatter-gather over the same borrow-based feed.
                let sh = sharded.evaluate(&fbq.query).unwrap();
                assert_eq!(sh.matches, expect, "sharded {coding} mss={mss}");

                // Disabling the sort-free preference must not change
                // results either (it only rearranges join order).
                let no_pref = ExecContext {
                    root_pref_factor: 1.0,
                    ..Default::default()
                };
                let got = mono.evaluate_with(&fbq.query, &no_pref).unwrap();
                assert_eq!(got.matches, expect, "no-pref {coding} mss={mss}");
            }
            std::fs::remove_dir_all(&mono_dir).ok();
            std::fs::remove_dir_all(&shard_dir).ok();
        }
    }
}

/// Warm interval-coded scans must stop paying per-posting `nodes`
/// allocations: with every block a cache hit, the scan's resident
/// footprint collapses to root-split levels (pinned blocks are the
/// cache's bytes, not the scan's), and the borrow counter proves the
/// zero-copy path actually served the postings.
#[test]
fn warm_interval_cache_hits_drop_peak_to_root_split_levels() {
    let mut li = LabelInterner::new();
    // A corpus where the queried keys carry many interval postings.
    let mut srcs: Vec<String> = Vec::new();
    for i in 0..600 {
        let nps: String = (0..4)
            .map(|j| format!("(NP (DT d{i}) (NN w{i}x{j}))"))
            .collect();
        srcs.push(format!("(S {nps} (VP (VBZ v{})))", i % 7));
    }
    let trees: Vec<ParseTree> = srcs
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let mut qi = li.clone();
    let query = parse_query("NP(DT)(NN)", &mut qi).unwrap();

    let run = |coding: Coding| -> (si_core::eval::EvalStats, si_core::eval::EvalStats) {
        let dir = tmp_dir(&format!("warm-{coding:?}").to_lowercase());
        let index = SubtreeIndex::build(&dir, &trees, &qi, IndexOptions::new(3, coding)).unwrap();
        let cache = Arc::new(BlockCache::new(BlockCacheConfig::with_budget(32 << 20)));
        let ctx = ExecContext {
            cache: Some(cache),
            ..Default::default()
        };
        let cold = index.evaluate_with(&query, &ctx).unwrap();
        let warm = index.evaluate_with(&query, &ctx).unwrap();
        assert_eq!(cold.matches, warm.matches, "{coding}: warm run must agree");
        assert!(!warm.matches.is_empty(), "{coding}: query must match");
        std::fs::remove_dir_all(&dir).ok();
        (cold.stats, warm.stats)
    };

    let (iv_cold, iv_warm) = run(Coding::SubtreeInterval);
    let (_, rs_warm) = run(Coding::RootSplit);

    // Cold: the scan decodes blocks itself and owns their bytes.
    assert!(
        iv_cold.peak_posting_bytes > 4 * 1024,
        "cold interval scan too small to be meaningful: {}",
        iv_cold.peak_posting_bytes
    );
    assert_eq!(iv_warm.cache_misses, 0, "warm run must be all hits");
    assert!(
        iv_warm.postings_borrowed >= iv_warm.postings_fetched as u64,
        "warm postings must be served as borrows: {} borrowed / {} fetched",
        iv_warm.postings_borrowed,
        iv_warm.postings_fetched
    );
    // Warm: pinned hit blocks are charged to the cache, so the interval
    // scan's own footprint drops by an integer factor, down to the same
    // level a root-split scan pays.
    assert!(
        (iv_warm.peak_posting_bytes as f64) < 0.25 * iv_cold.peak_posting_bytes as f64,
        "warm interval peak {} must be far below cold peak {}",
        iv_warm.peak_posting_bytes,
        iv_cold.peak_posting_bytes
    );
    assert!(
        iv_warm.peak_posting_bytes <= rs_warm.peak_posting_bytes + 1024,
        "warm interval peak {} must reach root-split levels ({})",
        iv_warm.peak_posting_bytes,
        rs_warm.peak_posting_bytes
    );
}

/// The sort-free plan rule must fire on real workloads: across a seeded
/// FB query set under the interval coding (the only coding that ever
/// needs order enforcers), a healthy fraction of queries report avoided
/// sort exchanges, and turning the preference off still returns the
/// same matches.
#[test]
fn sort_free_plans_fire_on_interval_workload() {
    let corpus = GeneratorConfig::default().with_seed(0x50F7).generate(150);
    let mut interner = corpus.interner().clone();
    let heldout = GeneratorConfig::default()
        .with_seed(0x50F8)
        .generate_into(30, &mut interner);
    let fb = si_corpus::fb_query_set(&corpus, &heldout, 0x50F9);
    let dir = tmp_dir("sortfree");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        &interner,
        IndexOptions::new(3, Coding::SubtreeInterval),
    )
    .unwrap();
    let mut total_avoided = 0usize;
    for fbq in &fb {
        let expect = ground_truth(corpus.trees(), &fbq.query);
        let r = index.evaluate(&fbq.query).unwrap();
        assert_eq!(r.matches, expect, "class {} size {}", fbq.class, fbq.size);
        total_avoided += r.stats.sort_exchanges_avoided;
    }
    assert!(
        total_avoided > 0,
        "the interval workload must avoid at least one sort exchange"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `postings_borrowed` counts only zero-copy cache-hit serves: zero
/// without a cache, zero on a fully cold cache, and equal to the warm
/// run's posting traffic once every block hits.
#[test]
fn borrow_counter_tracks_cache_hits_exactly() {
    let corpus = GeneratorConfig::default().with_seed(0xB0B).generate(80);
    let mut interner = corpus.interner().clone();
    let query = parse_query("NP(DT)(NN)", &mut interner).unwrap();
    let dir = tmp_dir("borrowctr");
    let index = SubtreeIndex::build(
        &dir,
        corpus.trees(),
        &interner,
        IndexOptions::new(3, Coding::SubtreeInterval),
    )
    .unwrap();

    let plain = index.evaluate(&query).unwrap();
    assert_eq!(plain.stats.postings_borrowed, 0, "no cache, no borrows");

    let cache = Arc::new(BlockCache::new(BlockCacheConfig::with_budget(8 << 20)));
    let ctx = ExecContext {
        cache: Some(cache),
        ..Default::default()
    };
    let cold = index.evaluate_with(&query, &ctx).unwrap();
    let warm = index.evaluate_with(&query, &ctx).unwrap();
    assert_eq!(cold.matches, warm.matches);
    assert_eq!(
        cold.stats.postings_borrowed, 0,
        "a cold cache serves no borrowed postings"
    );
    assert!(warm.stats.cache_hits > 0 && warm.stats.cache_misses == 0);
    assert_eq!(
        warm.stats.postings_borrowed, warm.stats.postings_fetched as u64,
        "every warm posting is a borrow"
    );
    std::fs::remove_dir_all(&dir).ok();
}
