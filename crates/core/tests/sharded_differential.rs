//! Sharded-vs-monolith differential suite: a tid-range sharded index
//! must return **byte-identical** match sets to a monolithic index over
//! the same corpus, across shard counts, codings, executors and planner
//! modes — and incremental ingest must land in the same place as a
//! from-scratch build.

use si_core::sharded::{ShardBuildMode, ShardedBuildConfig, ShardedIndex};
use si_core::{AnyIndex, Coding, ExecMode, IndexOptions, PlannerMode, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_parsetree::{LabelInterner, ParseTree, TreeId};
use si_query::{matcher::Matcher, parse_query, Query};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "si-shard-{name}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ground_truth(trees: &[ParseTree], query: &Query) -> Vec<(TreeId, u32)> {
    let mut out = Vec::new();
    for (tid, tree) in trees.iter().enumerate() {
        for root in Matcher::new(tree, query).roots() {
            out.push((tid as TreeId, root.0));
        }
    }
    out
}

/// Randomized differential: same corpus, N ∈ {1, 2, 4} shards × all
/// three codings × both executors — identical match sets, and the
/// in-memory matcher as independent ground truth.
#[test]
fn sharded_matches_monolith_across_codings_and_executors() {
    for round in 0u64..2 {
        let seed = 0x5AAD + round * 7919;
        let corpus = GeneratorConfig::default()
            .with_seed(seed)
            .generate(70 + round as usize * 40);
        let mut interner = corpus.interner().clone();
        let heldout = GeneratorConfig::default()
            .with_seed(seed + 1)
            .generate_into(20, &mut interner);
        let fb = si_corpus::fb_query_set(&corpus, &heldout, seed + 2);
        let queries: Vec<&Query> = fb.iter().step_by(5).map(|f| &f.query).collect();
        let mss = 2 + (round as usize % 2);
        for coding in Coding::ALL {
            let options = IndexOptions::new(mss, coding);
            let mono_dir = tmp_dir(&format!("mono-{round}-{coding:?}").to_lowercase());
            let mono = SubtreeIndex::build(&mono_dir, corpus.trees(), &interner, options).unwrap();
            for shards in [1usize, 2, 4] {
                let dir = tmp_dir(&format!("sh{shards}-{round}-{coding:?}").to_lowercase());
                let mut sharded = ShardedIndex::build(
                    &dir,
                    corpus.trees(),
                    &interner,
                    options,
                    ShardedBuildConfig {
                        shards,
                        workers: 2,
                        mode: ShardBuildMode::InMemory,
                    },
                )
                .unwrap();
                assert_eq!(sharded.shards().len(), shards.min(corpus.trees().len()));
                assert_eq!(sharded.num_trees() as usize, corpus.trees().len());
                for q in &queries {
                    let expect = mono.evaluate(q).unwrap();
                    for exec in [ExecMode::Streaming, ExecMode::Materialized] {
                        sharded.set_exec_mode(exec);
                        let got = sharded.evaluate(q).unwrap();
                        assert_eq!(
                            got.matches, expect.matches,
                            "{shards} shards, {coding:?}, {exec:?}, round {round}"
                        );
                        assert_eq!(got.stats.shards, shards.min(corpus.trees().len()));
                        assert!(
                            got.stats.shards_skipped <= got.stats.shards,
                            "skip count within bounds"
                        );
                    }
                    // Independent ground truth.
                    assert_eq!(
                        expect.matches,
                        ground_truth(corpus.trees(), q),
                        "monolith vs matcher, {coding:?}"
                    );
                }
                std::fs::remove_dir_all(&dir).ok();
            }
            std::fs::remove_dir_all(&mono_dir).ok();
        }
    }
}

/// Rebuilding a sharded index over an existing sharded directory tears
/// the old layout down first: the stale manifest can never pair with
/// partially overwritten shard dirs, and shard dirs the new layout
/// does not use are gone. A stale *monolithic* index in the directory
/// is removed too (it would shadow a crashed sharded build).
#[test]
fn sharded_rebuild_replaces_the_old_layout() {
    let corpus_a = GeneratorConfig::default().with_seed(0xD0).generate(80);
    let corpus_b = GeneratorConfig::default().with_seed(0xD1).generate(40);
    let dir = tmp_dir("rebuild");
    let options = IndexOptions::new(3, Coding::RootSplit);
    let mk = |shards| ShardedBuildConfig {
        shards,
        workers: 2,
        mode: ShardBuildMode::InMemory,
    };
    SubtreeIndex::build(&dir, corpus_b.trees(), corpus_b.interner(), options).unwrap();
    ShardedIndex::build(&dir, corpus_a.trees(), corpus_a.interner(), options, mk(8)).unwrap();
    assert!(dir.join("shard-0007").is_dir());
    assert!(
        !dir.join("index.bt").exists() && !dir.join("corpus").exists(),
        "stale monolithic index must be torn down by the sharded build"
    );
    let rebuilt =
        ShardedIndex::build(&dir, corpus_b.trees(), corpus_b.interner(), options, mk(2)).unwrap();
    assert_eq!(rebuilt.shards().len(), 2);
    assert_eq!(rebuilt.num_trees() as usize, corpus_b.trees().len());
    // Old higher-id shard directories are gone, not stale garbage.
    assert!(!dir.join("shard-0002").exists());
    assert!(!dir.join("shard-0007").exists());
    let reopened = ShardedIndex::open(&dir).unwrap();
    assert_eq!(reopened.num_trees() as usize, corpus_b.trees().len());
    let mut qi = reopened.interner();
    let q = parse_query("NP(NN)", &mut qi).unwrap();
    assert_eq!(
        reopened.evaluate(&q).unwrap().matches,
        ground_truth(corpus_b.trees(), &q),
        "answers come from the new corpus only"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Both planner modes agree through the sharded path (ByteLen disables
/// range-based shard skipping, so this exercises the skip/no-skip pair).
#[test]
fn planner_modes_agree_on_sharded_index() {
    let corpus = GeneratorConfig::default().with_seed(0xBEEF).generate(90);
    let mut qi = corpus.interner().clone();
    let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)", "S(NP(DT)(NN))(VP)"]
        .iter()
        .map(|s| parse_query(s, &mut qi).unwrap())
        .collect();
    let dir = tmp_dir("planner");
    let sharded = ShardedIndex::build(
        &dir,
        corpus.trees(),
        &qi,
        IndexOptions::new(3, Coding::RootSplit),
        ShardedBuildConfig {
            shards: 3,
            workers: 2,
            mode: ShardBuildMode::Parallel(2),
        },
    )
    .unwrap();
    for q in &queries {
        let cost = sharded
            .evaluate_with_planner(q, PlannerMode::CostBased)
            .unwrap();
        let bytes = sharded
            .evaluate_with_planner(q, PlannerMode::ByteLen)
            .unwrap();
        assert_eq!(cost.matches, bytes.matches);
        assert_eq!(cost.matches, ground_truth(corpus.trees(), q));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A query whose cover keys exist only in a slice of the corpus must
/// skip the shards that cannot contain it.
#[test]
fn shard_skip_prunes_shards_missing_cover_keys() {
    let mut li = LabelInterner::new();
    let mut srcs: Vec<String> = Vec::new();
    // 30 filler trees, then 10 carrying a rare pattern, then 30 filler:
    // 4 shards of 17-18 trees put the rare key in the middle shards only.
    for i in 0..30 {
        srcs.push(format!("(S (NP (NN w{i})) (VP (VBZ v{i})))"));
    }
    for i in 0..10 {
        srcs.push(format!("(S (FRAG (NP (NN rare{i}))) (VP (VBZ is)))"));
    }
    for i in 30..60 {
        srcs.push(format!("(S (NP (NN w{i})) (VP (VBZ v{i})))"));
    }
    let trees: Vec<ParseTree> = srcs
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let dir = tmp_dir("skip");
    let sharded = ShardedIndex::build(
        &dir,
        &trees,
        &li,
        IndexOptions::new(2, Coding::RootSplit),
        ShardedBuildConfig {
            shards: 4,
            workers: 2,
            mode: ShardBuildMode::InMemory,
        },
    )
    .unwrap();
    let mut qi = li.clone();
    let q = parse_query("FRAG(NP(NN))", &mut qi).unwrap();
    let got = sharded.evaluate(&q).unwrap();
    assert_eq!(got.matches, ground_truth(&trees, &q));
    assert!(!got.matches.is_empty());
    assert!(
        got.stats.shards_skipped >= 2,
        "FRAG lives in the middle slice only; got {} skips of {} shards",
        got.stats.shards_skipped,
        got.stats.shards
    );
    // A query matching nowhere skips everything (missing key is exact
    // information regardless of planner mode).
    let nowhere = parse_query("FRAG(VP)", &mut qi).unwrap();
    let got = sharded.evaluate(&nowhere).unwrap();
    assert!(got.matches.is_empty());
    assert_eq!(got.stats.shards_skipped, got.stats.shards);
    std::fs::remove_dir_all(&dir).ok();
}

/// Ingest: build over a prefix, ingest the rest, and the result must
/// answer exactly like a monolith over the full corpus — without
/// touching a byte of the pre-existing shard files.
#[test]
fn ingest_then_query_matches_full_rebuild() {
    let corpus = GeneratorConfig::default().with_seed(0x1A57).generate(100);
    let trees = corpus.trees();
    let (old, new) = trees.split_at(70);
    for coding in Coding::ALL {
        let options = IndexOptions::new(3, coding);
        let dir = tmp_dir(&format!("ingest-{coding:?}").to_lowercase());
        let mut sharded = ShardedIndex::build(
            &dir,
            old,
            corpus.interner(),
            options,
            ShardedBuildConfig {
                shards: 2,
                workers: 2,
                mode: ShardBuildMode::InMemory,
            },
        )
        .unwrap();

        // Snapshot every pre-ingest shard file.
        let snapshot = |dir: &std::path::Path| -> Vec<(std::path::PathBuf, Vec<u8>)> {
            let mut files = Vec::new();
            let mut stack = vec![dir.to_path_buf()];
            while let Some(d) = stack.pop() {
                for e in std::fs::read_dir(&d).unwrap() {
                    let p = e.unwrap().path();
                    if p.is_dir() {
                        stack.push(p);
                    } else if !p.ends_with("MANIFEST.si") {
                        files.push((p.clone(), std::fs::read(&p).unwrap()));
                    }
                }
            }
            files.sort();
            files
        };
        let before = snapshot(&dir);

        let entry = sharded.ingest(new, corpus.interner()).unwrap();
        assert_eq!(entry.base as usize, old.len());
        assert_eq!(entry.len as usize, new.len());
        assert_eq!(sharded.num_trees() as usize, trees.len());
        // The ingested shard carries a stats segment like any built one.
        assert!(sharded.shards().last().unwrap().has_key_stats());

        // Every pre-existing file is byte-identical (only MANIFEST.si
        // changed, atomically).
        for (path, bytes) in &before {
            assert_eq!(
                &std::fs::read(path).unwrap(),
                bytes,
                "ingest touched {path:?}"
            );
        }

        // Query equivalence against a from-scratch monolith, both live
        // and after reopen.
        let mono_dir = tmp_dir(&format!("ingest-mono-{coding:?}").to_lowercase());
        let mono = SubtreeIndex::build(&mono_dir, trees, corpus.interner(), options).unwrap();
        let mut qi = sharded.interner();
        let queries: Vec<Query> = ["NP(DT)(NN)", "S(NP)(VP)", "VP(//NN)", "NN"]
            .iter()
            .map(|s| parse_query(s, &mut qi).unwrap())
            .collect();
        let reopened = ShardedIndex::open(&dir).unwrap();
        assert_eq!(reopened.shards().len(), 3);
        for q in &queries {
            let expect = mono.evaluate(q).unwrap().matches;
            assert_eq!(sharded.evaluate(q).unwrap().matches, expect, "{coding:?}");
            assert_eq!(
                reopened.evaluate(q).unwrap().matches,
                expect,
                "reopened {coding:?}"
            );
            assert_eq!(expect, ground_truth(trees, q));
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&mono_dir).ok();
    }
}

/// Ingest can introduce previously unseen labels; queries over both old
/// and new vocabulary answer correctly through the extended interner.
#[test]
fn ingest_extends_the_interner() {
    let mut li = LabelInterner::new();
    let old: Vec<ParseTree> = ["(S (NP (NN dog)) (VP (VBZ barks)))"]
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut li).unwrap())
        .collect();
    let dir = tmp_dir("newlabels");
    let mut sharded = ShardedIndex::build(
        &dir,
        &old,
        &li,
        IndexOptions::new(2, Coding::RootSplit),
        ShardedBuildConfig {
            shards: 1,
            workers: 1,
            mode: ShardBuildMode::InMemory,
        },
    )
    .unwrap();
    // New corpus brings the unseen WHNP/WP labels.
    let mut extended = sharded.interner();
    let new: Vec<ParseTree> = ["(SBARQ (WHNP (WP who)) (SQ (VBZ barks)))"]
        .iter()
        .map(|s| si_parsetree::ptb::parse(s, &mut extended).unwrap())
        .collect();
    sharded.ingest(&new, &extended).unwrap();
    let mut qi = sharded.interner();
    let q_old = parse_query("NP(NN)", &mut qi).unwrap();
    let q_new = parse_query("WHNP(WP)", &mut qi).unwrap();
    assert_eq!(sharded.evaluate(&q_old).unwrap().matches, vec![(0, 1)]);
    assert_eq!(sharded.evaluate(&q_new).unwrap().matches, vec![(1, 1)]);
    // An interner that does not extend the index's is rejected.
    let fresh = LabelInterner::new();
    assert!(sharded.ingest(&new, &fresh).is_err());
    // Zero-tree ingest is rejected.
    assert!(sharded.ingest(&[], &extended).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// `AnyIndex` opens both layouts and answers identically.
#[test]
fn any_index_opens_both_layouts() {
    let corpus = GeneratorConfig::default().with_seed(0xA11).generate(50);
    let mono_dir = tmp_dir("any-mono");
    let shard_dir = tmp_dir("any-shard");
    let options = IndexOptions::new(3, Coding::RootSplit);
    SubtreeIndex::build(&mono_dir, corpus.trees(), corpus.interner(), options).unwrap();
    ShardedIndex::build(
        &shard_dir,
        corpus.trees(),
        corpus.interner(),
        options,
        ShardedBuildConfig {
            shards: 2,
            workers: 2,
            mode: ShardBuildMode::InMemory,
        },
    )
    .unwrap();
    let mono = AnyIndex::open(&mono_dir).unwrap();
    let sharded = AnyIndex::open(&shard_dir).unwrap();
    assert!(matches!(mono, AnyIndex::Mono(_)));
    assert!(matches!(sharded, AnyIndex::Sharded(_)));
    assert_eq!(mono.num_shards(), 1);
    assert_eq!(sharded.num_shards(), 2);
    let mut qi = mono.interner();
    let q = parse_query("S(NP)(VP)", &mut qi).unwrap();
    let ctx = si_core::ExecContext::default();
    let a = mono.evaluate_with(&q, &ctx).unwrap();
    let b = sharded.evaluate_with(&q, &ctx).unwrap();
    assert_eq!(a.matches, b.matches);
    // Matching trees are retrievable by global tid from both layouts.
    if let Some(&(tid, _)) = a.matches.first() {
        let ta = mono.tree(tid).unwrap();
        let tb = sharded.tree(tid).unwrap();
        assert_eq!(ta.len(), tb.len());
    }
    std::fs::remove_dir_all(&mono_dir).ok();
    std::fs::remove_dir_all(&shard_dir).ok();
}
