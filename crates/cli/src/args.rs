//! Tiny flag parser (`--name value` pairs plus positionals); no external
//! dependencies, fully tested.

use std::collections::HashMap;

/// Parsed command line: flag map plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// Errors from parsing or typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--flag` appeared without a value.
    MissingValue(String),
    /// A required flag was absent.
    Required(String),
    /// A value failed to parse.
    Invalid(String, String),
    /// A flag appeared twice.
    Duplicate(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
            ArgError::Invalid(flag, v) => write!(f, "--{flag}: cannot parse {v:?}"),
            ArgError::Duplicate(flag) => write!(f, "--{flag} given twice"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `--name value` pairs; everything else is positional.
    /// (The CLI dispatcher uses [`Args::parse_bools`]; this stays as the
    /// no-boolean-flags entry point.)
    #[allow(dead_code)]
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        Self::parse_bools(argv, &[])
    }

    /// [`Args::parse`] with a set of boolean flags that take no value
    /// (`--verbose`); they parse as `"true"`.
    pub fn parse_bools(argv: &[String], bool_flags: &[&str]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let (value, step) = if bool_flags.contains(&name) {
                    ("true".to_owned(), 1)
                } else {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue(name.to_owned()))?;
                    (value.clone(), 2)
                };
                if out.flags.insert(name.to_owned(), value).is_some() {
                    return Err(ArgError::Duplicate(name.to_owned()));
                }
                i += step;
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError::Required(name.to_owned()))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::Invalid(name.to_owned(), v.clone())),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv(&["--mss", "3", "QUERY", "--index", "./idx"])).unwrap();
        assert_eq!(a.required("mss").unwrap(), "3");
        assert_eq!(a.required("index").unwrap(), "./idx");
        assert_eq!(a.positional(), &["QUERY".to_owned()]);
    }

    #[test]
    fn typed_access() {
        let a = Args::parse(&argv(&["--sentences", "500"])).unwrap();
        assert_eq!(a.get_or("sentences", 10usize).unwrap(), 500);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(matches!(
            a.get_or::<usize>("sentences", 0).map(|_| ()),
            Ok(())
        ));
    }

    #[test]
    fn errors() {
        assert_eq!(
            Args::parse(&argv(&["--mss"])).unwrap_err(),
            ArgError::MissingValue("mss".into())
        );
        assert_eq!(
            Args::parse(&argv(&["--a", "1", "--a", "2"])).unwrap_err(),
            ArgError::Duplicate("a".into())
        );
        let a = Args::parse(&argv(&["--n", "abc"])).unwrap();
        assert!(matches!(
            a.get_or::<u32>("n", 0),
            Err(ArgError::Invalid(_, _))
        ));
        assert!(matches!(a.required("x"), Err(ArgError::Required(_))));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a =
            Args::parse_bools(&argv(&["--verbose", "QUERY", "--show", "3"]), &["verbose"]).unwrap();
        assert!(a.get_or("verbose", false).unwrap());
        assert_eq!(a.get_or("show", 0usize).unwrap(), 3);
        assert_eq!(a.positional(), &["QUERY".to_owned()]);
        // Trailing boolean flag is fine.
        let a = Args::parse_bools(&argv(&["Q", "--verbose"]), &["verbose"]).unwrap();
        assert!(a.get_or("verbose", false).unwrap());
        // Non-listed flags still require a value.
        assert!(matches!(
            Args::parse_bools(&argv(&["--show"]), &["verbose"]),
            Err(ArgError::MissingValue(_))
        ));
    }

    #[test]
    fn display_messages() {
        assert!(ArgError::Required("idx".into())
            .to_string()
            .contains("--idx"));
        assert!(ArgError::Invalid("n".into(), "x".into())
            .to_string()
            .contains("parse"));
    }
}
