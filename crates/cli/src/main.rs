//! `si` — the Subtree Index command line.
//!
//! ```text
//! si generate  --sentences 10000 --seed 7 --out corpus.ptb
//! si build     --input corpus.ptb --index ./idx --mss 3 --coding root-split
//! si query     --index ./idx "S(NP(NNS))(VP(VBZ)(NP))" --show 3
//! si stats     --index ./idx
//! si decompose --mss 3 --coding root-split "S(NP(DT)(NN))(VP(VBZ))"
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
