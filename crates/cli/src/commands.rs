//! Subcommand implementations.

use std::collections::BTreeMap;
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use si_core::build_ext::ExternalBuildConfig;
use si_core::cover::decompose;
use si_core::plan::{estimated_cardinality, plan_structural, PlannerMode};
use si_core::sharded::{
    merge_shard_stats, shard_provably_empty, ShardBuildMode, ShardedBuildConfig, ShardedIndex,
};
use si_core::stats::intersect_tid_ranges;
use si_core::{AnyIndex, Coding, EvalStats, ExecMode, IndexOptions, KeyStats, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_obs::{json_escape, Json, MetricsSnapshot, Stage, Timings, TimingsSnapshot};
use si_parsetree::{ptb, LabelInterner};
use si_query::{parse_query, write_query};

use crate::args::Args;

type AnyError = Box<dyn Error>;

const USAGE: &str = "\
si — Subtree Index over syntactically annotated trees

USAGE:
  si generate  --sentences N [--seed S] [--out FILE]        write a synthetic PTB corpus
  si build     --input FILE --index DIR [--mss 3]
               [--coding root-split|filter|interval]
               [--external true]
               [--shards N] [--workers W]                   build an index from PTB text;
                                                            --shards > 1 makes a tid-range
                                                            sharded index built in parallel
  si ingest    --input FILE --index DIR                     append new documents to a
                                                            sharded index as a fresh shard
                                                            (existing shards untouched)
  si query     --index DIR QUERY [--show N] [--verbose]
               [--exec streaming|materialized]
               [--planner cost|bytes]
               [--cache-mb N] [--sort-pref 4.0]
               [--prefetch true|false]
               [--explain-analyze] [--trace-json FILE]      evaluate a tree query
                                                            (--sort-pref: prefer sort-free
                                                            root-slot plans when stream
                                                            estimates are within the factor;
                                                            1.0 disables; --explain-analyze:
                                                            per-stage times + executed
                                                            operator tree; --trace-json:
                                                            append one span-tree JSON line)
  si batch     --index DIR --queries FILE [--threads N]
               [--cache-mb 64] [--result-cache-mb 32]
               [--batch-size 64] [--prefetch true|false]
               [--trace-json FILE]
               [--stats-interval SECS] [--metrics-json FILE]
               [--slow-query-ms N] [--slow-log FILE]        run a query file concurrently
                                                            (--result-cache-mb: byte budget
                                                            for cached match sets, epoch-
                                                            invalidated on ingest; 0 = off)
  si serve     --index DIR [--threads N] [--cache-mb 64]
               [--result-cache-mb 32] [--batch-size 64]
               [--prefetch true|false] [--trace-json FILE]
               [--stats-interval SECS] [--metrics-json FILE]
               [--slow-query-ms N] [--slow-log FILE]        serve queries from stdin, batched
                                                            (--stats-interval: one JSON
                                                            metrics-snapshot line per tick,
                                                            to --metrics-json or stderr;
                                                            --slow-query-ms: append span
                                                            trees of threshold-breaching
                                                            queries to --slow-log or stderr)
  si report    FILE... [--top 5]                            aggregate trace-json / slow-log /
                                                            metrics-json lines offline: stage
                                                            breakdown, top-N slowest queries
                                                            with their dominant operator, and
                                                            cache/seek efficiency summaries
  si scan      --input FILE QUERY [--show N]                TGrep2 mode: match without an index
  si extract   --input FILE [--mss 3] [--top 20]            most frequent subtree keys
  si stats     --index DIR [KEY]                            index statistics; with a
                                                            KEY (query syntax), per-key
                                                            planner statistics
  si decompose [--mss 3] [--coding root-split] QUERY        show the query's cover

Query syntax: LABEL('(' [//] node ')')*, e.g. S(NP(NNS))(VP(//NN))";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["verbose", "explain-analyze"];

/// Dispatches a full argv (without the program name).
pub fn run(argv: &[String]) -> Result<(), AnyError> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse_bools(rest, BOOL_FLAGS)?;
    match cmd.as_str() {
        "generate" => generate(&args),
        "build" => build(&args),
        "ingest" => ingest(&args),
        "query" => query(&args),
        "batch" => batch(&args),
        "serve" => serve(
            &args,
            &mut std::io::stdin().lock(),
            &mut std::io::stdout().lock(),
        ),
        "scan" => scan(&args),
        "extract" => extract(&args),
        "stats" => stats(&args),
        "report" => report(&args, &mut std::io::stdout().lock()),
        "decompose" => decompose_cmd(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `si help`").into()),
    }
}

fn parse_exec(name: Option<&str>) -> Result<ExecMode, AnyError> {
    match name.unwrap_or("streaming") {
        "streaming" | "s" => Ok(ExecMode::Streaming),
        "materialized" | "m" | "legacy" => Ok(ExecMode::Materialized),
        other => Err(format!("unknown executor {other:?} (streaming | materialized)").into()),
    }
}

fn parse_planner(name: Option<&str>) -> Result<PlannerMode, AnyError> {
    match name.unwrap_or("cost") {
        "cost" | "cost-based" | "c" => Ok(PlannerMode::CostBased),
        "bytes" | "byte-len" | "b" => Ok(PlannerMode::ByteLen),
        other => Err(format!("unknown planner {other:?} (cost | bytes)").into()),
    }
}

fn parse_coding(name: Option<&str>) -> Result<Coding, AnyError> {
    match name.unwrap_or("root-split") {
        "root-split" | "rs" => Ok(Coding::RootSplit),
        "filter" | "filter-based" | "fb" => Ok(Coding::FilterBased),
        "interval" | "subtree-interval" | "si" => Ok(Coding::SubtreeInterval),
        other => Err(format!("unknown coding {other:?} (root-split | filter | interval)").into()),
    }
}

fn generate(args: &Args) -> Result<(), AnyError> {
    let sentences: usize = args.get_or("sentences", 1_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let corpus = GeneratorConfig::default()
        .with_seed(seed)
        .generate(sentences);
    let mut out: Box<dyn Write> = match args.get("out") {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    for tree in corpus.trees() {
        writeln!(out, "{}", ptb::write(tree, corpus.interner()))?;
    }
    out.flush()?;
    eprintln!("wrote {sentences} sentences (seed {seed})");
    Ok(())
}

fn build(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let index_dir = args.required("index")?;
    let mss: usize = args.get_or("mss", 3)?;
    let coding = parse_coding(args.get("coding"))?;
    let external: bool = args.get_or("external", false)?;
    let shards: usize = args.get_or("shards", 1)?;
    let defaults = ShardedBuildConfig::default();
    let workers: usize = args.get_or("workers", defaults.workers)?;

    let text = std::fs::read_to_string(input)?;
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    eprintln!("parsed {} trees, {} labels", trees.len(), interner.len());

    let options = IndexOptions::new(mss, coding);
    if shards > 1 {
        let started = std::time::Instant::now();
        let sharded = ShardedIndex::build(
            Path::new(index_dir),
            &trees,
            &interner,
            options,
            ShardedBuildConfig {
                shards,
                workers,
                mode: if external {
                    ShardBuildMode::External
                } else {
                    ShardBuildMode::InMemory
                },
            },
        )?;
        eprintln!(
            "built {} shards on {} workers in {:.2} s wall",
            sharded.shards().len(),
            workers.clamp(1, sharded.shards().len()),
            started.elapsed().as_secs_f64()
        );
        print_stats_any(&AnyIndex::Sharded(sharded));
        return Ok(());
    }
    // A stale MANIFEST.si would shadow the fresh monolithic index
    // (readers dispatch on its presence), so a previous sharded layout
    // in this directory is torn down first.
    si_core::sharded::remove_sharded_layout(Path::new(index_dir))?;
    let index = if external {
        SubtreeIndex::build_external(
            Path::new(index_dir),
            &trees,
            &interner,
            options,
            ExternalBuildConfig::default(),
        )?
    } else {
        SubtreeIndex::build(Path::new(index_dir), &trees, &interner, options)?
    };
    print_stats(&index);
    Ok(())
}

/// Appends the documents of `--input` to a sharded index as one fresh
/// shard; only `MANIFEST.si` is rewritten, existing shard files stay
/// untouched. The new corpus is parsed against the index's interner so
/// existing label ids keep their meaning (new labels extend it).
fn ingest(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let index_dir = args.required("index")?;
    let dir = Path::new(index_dir);
    if !ShardedIndex::is_sharded(dir) {
        return Err(format!(
            "{index_dir} is not a sharded index; rebuild it with `si build --shards N` \
             to enable incremental ingest"
        )
        .into());
    }
    let mut sharded = ShardedIndex::open(dir)?;
    let mut interner = sharded.interner();
    let text = std::fs::read_to_string(input)?;
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    if trees.is_empty() {
        return Err("ingest: input holds no trees".into());
    }
    let started = std::time::Instant::now();
    let entry = sharded.ingest(&trees, &interner)?;
    eprintln!(
        "ingested {} trees as {} (global tids {}..={}) in {:.2} s; {} shards total",
        trees.len(),
        entry.dir_name(),
        entry.first_tid(),
        entry.last_tid(),
        started.elapsed().as_secs_f64(),
        sharded.shards().len()
    );
    Ok(())
}

/// `--prefetch BOOL` (default on): the process-wide overlapped-I/O
/// switch ([`si_storage::set_prefetch_enabled`]). When off, every hint
/// site degrades to one atomic load — the prefetch bench's disabled-
/// overhead gate measures exactly this path.
fn apply_prefetch_flag(args: &Args) -> Result<(), AnyError> {
    si_storage::set_prefetch_enabled(args.get_or("prefetch", true)?);
    Ok(())
}

fn query(args: &Args) -> Result<(), AnyError> {
    let index_dir = args.required("index")?;
    let show: usize = args.get_or("show", 0)?;
    apply_prefetch_flag(args)?;
    let verbose: bool = args.get_or("verbose", false)?;
    let explain_analyze: bool = args.get_or("explain-analyze", false)?;
    let trace = trace_sink(args)?;
    let cache_mb: usize = args.get_or("cache-mb", 0)?;
    let [query_text] = args.positional() else {
        return Err("query: expected exactly one QUERY argument".into());
    };
    let exec = parse_exec(args.get("exec"))?;
    let planner = parse_planner(args.get("planner"))?;
    let mut index = AnyIndex::open(Path::new(index_dir))?;
    index.set_exec_mode(exec);
    let mut interner = index.interner();
    let timings = (explain_analyze || trace.is_some()).then(|| Timings::new(true));
    let query = {
        let _span = timings.as_ref().map(|t| t.span(Stage::Parse));
        parse_query(query_text, &mut interner)?
    };
    // The block cache applies to the monolithic path only: shards store
    // the same canonical keys over different posting lists, so a single
    // cache must never span shards (the sharded service keeps one per
    // shard instead).
    if cache_mb > 0 && matches!(index, AnyIndex::Sharded(_)) {
        eprintln!(
            "warning: --cache-mb is ignored on a sharded index \
             (per-shard caches live in `si batch` / `si serve`)"
        );
    }
    let cache = (cache_mb > 0 && matches!(index, AnyIndex::Mono(_))).then(|| {
        std::sync::Arc::new(si_core::BlockCache::new(
            si_core::BlockCacheConfig::with_budget(cache_mb << 20),
        ))
    });
    let sort_pref: f64 = args.get_or("sort-pref", si_core::plan::DEFAULT_ROOT_PREF_FACTOR)?;
    let ctx = si_core::ExecContext {
        cache,
        planner,
        root_pref_factor: sort_pref,
        timings: timings.as_ref(),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let result = index.evaluate_with(&query, &ctx)?;
    let elapsed = started.elapsed();
    println!(
        "{} matches in {:.3} ms  ({} executor, {} covers, {} joins, {} postings fetched, {} peak posting bytes{})",
        result.len(),
        elapsed.as_secs_f64() * 1e3,
        exec.name(),
        result.stats.covers,
        result.stats.joins,
        result.stats.postings_fetched,
        result.stats.peak_posting_bytes,
        if result.stats.used_validation {
            ", post-validated"
        } else {
            ""
        }
    );
    if verbose {
        match &index {
            AnyIndex::Mono(mono) => print_plan_debug(mono, &query, &interner, planner)?,
            AnyIndex::Sharded(sharded) => print_shard_debug(sharded, &query, &interner, planner)?,
        }
        let cache_note = if cache_mb > 0 && matches!(index, AnyIndex::Mono(_)) {
            format!("{cache_mb} MiB budget")
        } else if matches!(index, AnyIndex::Sharded(_)) {
            "per-shard caches live in `si batch` / `si serve`".to_owned()
        } else {
            "disabled; pass --cache-mb N".to_owned()
        };
        print!("{}", render_eval_stats(&result.stats, &cache_note));
    }
    if let Some(t) = &timings {
        let snap = t.snapshot();
        let total_ns = elapsed.as_nanos() as u64;
        if explain_analyze {
            let options = index.options();
            let cover = decompose(&query, options.mss, options.coding);
            let covers: Vec<String> = cover
                .subtrees
                .iter()
                .map(|st| render_key(&st.key, &interner))
                .collect();
            print_explain_analyze(&snap, total_ns, &covers);
        }
        if let Some(sink) = &trace {
            sink.write_line(&trace_line(
                query_text,
                result.len(),
                total_ns,
                &result.stats,
                &snap,
            ))?;
        }
    }
    for &(tid, pre) in result.matches.iter().take(show) {
        let tree = index.tree(tid)?;
        println!(
            "  tree {tid} @ node {pre}: {}",
            ptb::write(&tree, &interner)
        );
    }
    Ok(())
}

/// Parses the service flags shared by `si batch` and `si serve`.
/// `--trace-json` and `--slow-query-ms` both turn per-query span
/// collection on — that is the only way the service's outcomes carry
/// snapshots to write out.
fn service_config(args: &Args) -> Result<si_service::ServiceConfig, AnyError> {
    let defaults = si_service::ServiceConfig::default();
    let cache_mb: usize = args.get_or("cache-mb", 64)?;
    Ok(si_service::ServiceConfig {
        threads: args.get_or("threads", defaults.threads)?,
        cache: si_core::BlockCacheConfig::with_budget(cache_mb << 20),
        batch_size: args.get_or("batch-size", defaults.batch_size)?,
        collect_timings: args.get("trace-json").is_some() || args.get("slow-query-ms").is_some(),
        // The result cache defaults ON for the service commands (the
        // library default is off); `--result-cache-mb 0` disables it.
        result_cache_mb: args.get_or("result-cache-mb", 32)?,
        ..defaults
    })
}

/// A shared, line-atomic JSON-lines sink: every record is assembled in
/// full and written (with its newline) in a single `write_all`, so the
/// concurrent writers of serve mode — per-batch trace/slow records and
/// the periodic stats ticker — never interleave mid-line. This is the
/// one appender behind `--trace-json`, `--slow-log` and
/// `--metrics-json` for `si query`, `si batch` and `si serve` alike.
struct LineSink(Mutex<Box<dyn Write + Send>>);

impl LineSink {
    /// Appends to `path`, creating it if needed.
    fn file(path: &str) -> Result<Self, AnyError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self(Mutex::new(Box::new(file))))
    }

    /// Writes lines to stderr (the default telemetry destination, so
    /// stdout stays pure query results).
    fn stderr() -> Self {
        Self(Mutex::new(Box::new(std::io::stderr())))
    }

    /// Writes one complete record line atomically.
    fn write_line(&self, line: &str) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut w = self.0.lock().unwrap_or_else(|e| e.into_inner());
        w.write_all(&buf)?;
        w.flush()
    }
}

/// Opens the `--trace-json` sink in append mode, if requested.
fn trace_sink(args: &Args) -> Result<Option<LineSink>, AnyError> {
    Ok(match args.get("trace-json") {
        Some(path) => Some(LineSink::file(path)?),
        None => None,
    })
}

/// `--slow-query-ms`: latency threshold plus the sink breaching
/// queries' span trees append to (`--slow-log FILE`, stderr otherwise).
struct SlowLog {
    threshold_ms: f64,
    sink: LineSink,
}

fn slow_log(args: &Args) -> Result<Option<SlowLog>, AnyError> {
    let Some(raw) = args.get("slow-query-ms") else {
        return Ok(None);
    };
    let threshold_ms: f64 = raw
        .parse()
        .map_err(|_| format!("--slow-query-ms: cannot parse {raw:?}"))?;
    let sink = match args.get("slow-log") {
        Some(path) => LineSink::file(path)?,
        None => LineSink::stderr(),
    };
    Ok(Some(SlowLog { threshold_ms, sink }))
}

/// One slow-query-log record: the regular trace line tagged with
/// `"type":"slow"` and the threshold it breached, so mixed files still
/// classify unambiguously in `si report`.
fn slow_line(
    threshold_ms: f64,
    query_text: &str,
    matches: usize,
    total_ns: u64,
    stats: &EvalStats,
    snap: &TimingsSnapshot,
) -> String {
    let body = trace_line(query_text, matches, total_ns, stats, snap);
    format!(
        "{{\"type\":\"slow\",\"threshold_ms\":{threshold_ms},{}",
        &body[1..]
    )
}

/// Appends `{"name":value,...}` from name/number pairs.
fn write_num_obj<'a, V: std::fmt::Display>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a str, V)>,
) {
    use std::fmt::Write as _;
    out.push('{');
    for (i, (name, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(name));
    }
    out.push('}');
}

/// Ticker bookkeeping shared between the periodic thread and the final
/// at-exit tick: the tick ordinal and the previous cumulative snapshot
/// the next delta subtracts against.
struct TickState(Mutex<(u64, MetricsSnapshot)>);

/// Emits one `{"type":"metrics",...}` line: full cumulative counters,
/// the delta since the previous tick, gauge levels, and the two latency
/// views (windowed quantiles over just this interval, drained here, and
/// the cumulative distribution).
fn emit_metrics_tick(
    service: &si_service::AnyQueryService,
    sink: &LineSink,
    state: &TickState,
    interval_secs: u64,
) {
    let snap = service.sync_metrics();
    let window = service.metrics().latency().reset_window();
    let total = snap
        .histograms
        .get("service.latency_ns")
        .copied()
        .unwrap_or_default();
    let mut st = state.0.lock().unwrap_or_else(|e| e.into_inner());
    st.0 += 1;
    let delta = snap.counter_delta_since(&st.1);
    let mut line = format!(
        "{{\"type\":\"metrics\",\"tick\":{},\"interval_secs\":{interval_secs},\"counters\":",
        st.0
    );
    write_num_obj(
        &mut line,
        snap.counters.iter().map(|(k, &v)| (k.as_str(), v)),
    );
    line.push_str(",\"delta\":");
    write_num_obj(&mut line, delta.iter().map(|(k, &v)| (k.as_str(), v)));
    line.push_str(",\"gauges\":");
    write_num_obj(&mut line, snap.gauges.iter().map(|(k, &v)| (k.as_str(), v)));
    line.push_str(",\"latency_window\":");
    window.write_json(&mut line);
    line.push_str(",\"latency_total\":");
    total.write_json(&mut line);
    line.push('}');
    st.1 = snap;
    drop(st);
    let _ = sink.write_line(&line);
}

/// Runs `body` with the periodic metrics ticker alive around it, then
/// emits one final snapshot after `body` returns — so even a run
/// shorter than one interval produces at least one metrics line (and
/// CI can assert on the schema deterministically).
fn with_stats_ticker<T>(
    service: &si_service::AnyQueryService,
    interval_secs: u64,
    sink: Option<&LineSink>,
    body: impl FnOnce() -> Result<T, AnyError>,
) -> Result<T, AnyError> {
    let (Some(sink), true) = (sink, interval_secs > 0) else {
        return body();
    };
    let state = TickState(Mutex::new((0, service.metrics().registry().snapshot())));
    std::thread::scope(|scope| {
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let state_ref = &state;
        let ticker = scope.spawn(move || {
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) =
                stop_rx.recv_timeout(std::time::Duration::from_secs(interval_secs))
            {
                emit_metrics_tick(service, sink, state_ref, interval_secs);
            }
        });
        let result = body();
        drop(stop_tx);
        let _ = ticker.join();
        emit_metrics_tick(service, sink, &state, interval_secs);
        result
    })
}

/// The `--metrics-json` sink (stderr when the flag is absent); only
/// built when `--stats-interval` actually enables the ticker.
fn metrics_sink(args: &Args) -> Result<Option<LineSink>, AnyError> {
    if args.get_or("stats-interval", 0u64)? == 0 {
        return Ok(None);
    }
    Ok(Some(match args.get("metrics-json") {
        Some(path) => LineSink::file(path)?,
        None => LineSink::stderr(),
    }))
}

/// Runs every query of `--queries FILE` (one per line; blank lines and
/// `#` comments skipped) through the concurrent query service and
/// prints per-query match counts plus a throughput summary.
fn batch(args: &Args) -> Result<(), AnyError> {
    let index_dir = args.required("index")?;
    let queries_file = args.required("queries")?;
    apply_prefetch_flag(args)?;
    let config = service_config(args)?;
    let service = si_service::AnyQueryService::open(Path::new(index_dir), config)?;
    let text = std::fs::read_to_string(queries_file)?;
    let lines: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect();
    let trace = trace_sink(args)?;
    let slow = slow_log(args)?;
    let stats_interval: u64 = args.get_or("stats-interval", 0)?;
    let msink = metrics_sink(args)?;
    let mut out = std::io::stdout().lock();
    let summary = with_stats_ticker(&service, stats_interval, msink.as_ref(), || {
        run_service_batches(&service, &lines, &mut out, trace.as_ref(), slow.as_ref())
    })?;
    print_service_summary(&service, &summary, config.threads);
    Ok(())
}

/// Long-running mode: reads queries line by line from `input`, groups
/// them into batches of `--batch-size`, and evaluates each batch
/// concurrently with shared scans. Runs until end of input.
fn serve(
    args: &Args,
    input: &mut dyn std::io::BufRead,
    out: &mut dyn Write,
) -> Result<(), AnyError> {
    let index_dir = args.required("index")?;
    apply_prefetch_flag(args)?;
    let config = service_config(args)?;
    let service = si_service::AnyQueryService::open(Path::new(index_dir), config)?;
    let trace = trace_sink(args)?;
    let slow = slow_log(args)?;
    let stats_interval: u64 = args.get_or("stats-interval", 0)?;
    let msink = metrics_sink(args)?;
    print_serve_banner(args, index_dir, &service, &config, stats_interval, &slow)?;
    let total = with_stats_ticker(&service, stats_interval, msink.as_ref(), || {
        let mut total = ServiceSummary::default();
        let mut pending: Vec<String> = Vec::new();
        loop {
            let mut line = String::new();
            let eof = input.read_line(&mut line)? == 0;
            if !eof {
                let line = line.trim();
                if !line.is_empty() && !line.starts_with('#') {
                    pending.push(line.to_owned());
                }
            }
            if pending.len() >= service.batch_size() || (eof && !pending.is_empty()) {
                let batch: Vec<String> = std::mem::take(&mut pending);
                let summary =
                    run_service_batches(&service, &batch, out, trace.as_ref(), slow.as_ref())?;
                total.absorb(&summary);
                out.flush()?;
            }
            if eof {
                break;
            }
        }
        Ok(total)
    })?;
    print_service_summary(&service, &total, config.threads);
    Ok(())
}

/// The `si serve` startup banner: what is being served and through
/// which machinery — index layout, read path (mmap vs buffered pager),
/// cache configuration and any telemetry sinks — so a long-running
/// process's log records how it was actually configured.
fn print_serve_banner(
    args: &Args,
    index_dir: &str,
    service: &si_service::AnyQueryService,
    config: &si_service::ServiceConfig,
    stats_interval: u64,
    slow: &Option<SlowLog>,
) -> Result<(), AnyError> {
    let layout = match service {
        si_service::AnyQueryService::Mono(_) => "monolithic",
        si_service::AnyQueryService::Sharded(_) => "sharded",
    };
    let cache_mb: usize = args.get_or("cache-mb", 64)?;
    eprintln!("serving    {index_dir} ({layout} index)");
    eprintln!("read path  {}", service.read_path());
    let result_cache = match service.result_cache_mb() {
        0 => "off".to_owned(),
        mb => format!("{mb} MiB (epoch-invalidated)"),
    };
    eprintln!(
        "config     {} threads, batch size {}, block cache {cache_mb} MiB, result cache {result_cache}",
        config.threads,
        service.batch_size(),
    );
    if stats_interval > 0 {
        eprintln!(
            "telemetry  metrics snapshot every {stats_interval} s -> {}",
            args.get("metrics-json").unwrap_or("stderr")
        );
    }
    if let Some(s) = slow {
        eprintln!(
            "telemetry  slow-query log (>= {} ms) -> {}",
            s.threshold_ms,
            args.get("slow-log").unwrap_or("stderr")
        );
    }
    Ok(())
}

/// Accumulated service-run figures across batches.
#[derive(Debug, Default)]
struct ServiceSummary {
    queries: usize,
    matches: usize,
    wall_seconds: f64,
    latency_seconds: f64,
    shared_keys: usize,
    /// Every query's `EvalStats` folded together, rendered by the same
    /// helper as `si query --verbose`.
    stats: EvalStats,
}

impl ServiceSummary {
    fn absorb(&mut self, other: &ServiceSummary) {
        self.queries += other.queries;
        self.matches += other.matches;
        self.wall_seconds += other.wall_seconds;
        self.latency_seconds += other.latency_seconds;
        self.shared_keys += other.shared_keys;
        absorb_stats(&mut self.stats, &other.stats);
    }
}

/// Folds one query's (or batch aggregate's) counters into a summary:
/// `merge_shard_stats` handles every counter field exhaustively, and
/// the caller-set fields it deliberately skips accumulate here.
fn absorb_stats(agg: &mut EvalStats, s: &EvalStats) {
    merge_shard_stats(agg, s);
    agg.covers += s.covers;
    agg.shards = agg.shards.max(s.shards);
    agg.shards_skipped += s.shards_skipped;
}

/// Parses `lines` against the service's index, evaluates them in
/// batch-size groups, and writes one result line per query. A line
/// that fails to parse gets an error line and the rest of the batch
/// proceeds — a long-running `si serve` must survive client typos.
fn run_service_batches(
    service: &si_service::AnyQueryService,
    lines: &[String],
    out: &mut dyn Write,
    trace: Option<&LineSink>,
    slow: Option<&SlowLog>,
) -> Result<ServiceSummary, AnyError> {
    let mut interner = service.interner();
    let mut summary = ServiceSummary::default();
    for chunk in lines.chunks(service.batch_size().max(1)) {
        let mut queries = Vec::with_capacity(chunk.len());
        let mut parsed: Vec<Result<usize, String>> = Vec::with_capacity(chunk.len());
        for text in chunk {
            match parse_query(text, &mut interner) {
                Ok(q) => {
                    parsed.push(Ok(queries.len()));
                    queries.push(q);
                }
                Err(e) => parsed.push(Err(e.to_string())),
            }
        }
        let report = service.run_batch(&queries)?;
        for (text, slot) in chunk.iter().zip(&parsed) {
            match slot {
                Ok(i) => {
                    let outcome = &report.outcomes[*i];
                    writeln!(
                        out,
                        "{}\t{} matches\t{:.3} ms",
                        text,
                        outcome.result.len(),
                        outcome.seconds * 1e3
                    )?;
                    summary.matches += outcome.result.len();
                    summary.latency_seconds += outcome.seconds;
                    absorb_stats(&mut summary.stats, &outcome.result.stats);
                    if let Some(snap) = outcome.timings.as_ref() {
                        let total_ns = (outcome.seconds * 1e9) as u64;
                        if let Some(trace) = trace {
                            trace.write_line(&trace_line(
                                text,
                                outcome.result.len(),
                                total_ns,
                                &outcome.result.stats,
                                snap,
                            ))?;
                        }
                        if let Some(slow) = slow {
                            if outcome.seconds * 1e3 >= slow.threshold_ms {
                                slow.sink.write_line(&slow_line(
                                    slow.threshold_ms,
                                    text,
                                    outcome.result.len(),
                                    total_ns,
                                    &outcome.result.stats,
                                    snap,
                                ))?;
                            }
                        }
                    }
                }
                Err(e) => writeln!(out, "{text}\terror: {e}")?,
            }
        }
        summary.queries += report.outcomes.len();
        summary.wall_seconds += report.wall_seconds;
        summary.shared_keys += report.shared_keys;
    }
    Ok(summary)
}

fn print_service_summary(
    service: &si_service::AnyQueryService,
    summary: &ServiceSummary,
    threads: usize,
) {
    let cache = service.cache_stats();
    let pool = service.pool_stats();
    eprintln!(
        "{} queries in {:.3} s ({:.0} QPS, {threads} threads), {} matches, \
         mean latency {:.3} ms, {} shared scans",
        summary.queries,
        summary.wall_seconds,
        if summary.wall_seconds > 0.0 {
            summary.queries as f64 / summary.wall_seconds
        } else {
            0.0
        },
        summary.matches,
        if summary.queries > 0 {
            summary.latency_seconds * 1e3 / summary.queries as f64
        } else {
            0.0
        },
        summary.shared_keys,
    );
    let lat = service.latency_summary();
    if lat.count > 0 {
        eprintln!(
            "latency     p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms \
             ({} queries, cumulative)",
            lat.p50 as f64 / 1e6,
            lat.p90 as f64 / 1e6,
            lat.p99 as f64 / 1e6,
            lat.p999 as f64 / 1e6,
            lat.count,
        );
    }
    eprintln!(
        "block cache: {:.1}% hits ({} hits / {} misses, {} evictions, peak {} KiB)",
        cache.hit_rate() * 100.0,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.peak_bytes >> 10,
    );
    if let Some(results) = service.result_cache_stats() {
        eprintln!(
            "result cache: {:.1}% hits ({} hits / {} misses, {} negative, \
             {} evictions, {} KiB resident)",
            results.hit_rate() * 100.0,
            results.hits,
            results.misses,
            results.negative_hits,
            results.evictions,
            results.current_bytes >> 10,
        );
    }
    eprintln!(
        "tuple pool:  {} hits / {} misses, {} insertions, {} evictions, \
         {} KiB resident (peak {} KiB)",
        pool.hits,
        pool.misses,
        pool.insertions,
        pool.evictions,
        pool.current_bytes >> 10,
        pool.peak_bytes >> 10,
    );
    eprint!(
        "{}",
        render_eval_stats(&summary.stats, "summed per-query counters")
    );
}

/// The one formatting path for an `EvalStats` counter block, shared by
/// `si query --verbose` and the `si batch` / `si serve` summaries.
/// `cache_note` qualifies the block-cache counters (budget for a
/// single query, aggregation note for a service summary).
fn render_eval_stats(s: &EvalStats, cache_note: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if s.shards > 0 {
        let _ = writeln!(
            out,
            "shards      {} shard evaluations, {} skipped from per-shard statistics",
            (s.shards as u64).saturating_sub(s.shards_skipped as u64),
            s.shards_skipped
        );
    }
    if s.range_pruned {
        let _ = writeln!(
            out,
            "planner     result proven empty from disjoint tid ranges; no list opened"
        );
    }
    let _ = writeln!(
        out,
        "pager       {} hits, {} misses, {} evictions",
        s.pager_hits, s.pager_misses, s.pager_evictions
    );
    let _ = writeln!(
        out,
        "block cache {} hits, {} misses ({cache_note})",
        s.cache_hits, s.cache_misses
    );
    let _ = writeln!(
        out,
        "zero-copy   {} postings borrowed from cached blocks, {} sort exchanges avoided",
        s.postings_borrowed, s.sort_exchanges_avoided
    );
    let _ = writeln!(
        out,
        "seeks       {} restart-point seeks, {} postings skipped undecoded",
        s.seeks, s.postings_skipped
    );
    let _ = writeln!(
        out,
        "prefetch    {} hints issued, {} prefetched pages consumed",
        s.prefetch_hints, s.prefetch_useful
    );
    let _ = writeln!(
        out,
        "results     {} whole-query hits ({} negative), {} misses, {} shard partials reused",
        s.result_hits, s.negative_hits, s.result_misses, s.partial_reuses
    );
    out
}

fn fmt_ns(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

/// `si query --explain-analyze`: the stage-time table followed by the
/// executed operator tree, each node annotated with rows out, posting
/// counters, seeks and elapsed time. `covers` are the rendered cover
/// keys, indexed by the operators' cover slots.
fn print_explain_analyze(snap: &TimingsSnapshot, total_ns: u64, covers: &[String]) {
    let attributed = snap.stage_total();
    println!("stage times (measured total {}):", fmt_ns(total_ns));
    let pct = |ns: u64| {
        if total_ns > 0 {
            ns as f64 * 100.0 / total_ns as f64
        } else {
            0.0
        }
    };
    for stage in Stage::ALL {
        let ns = snap.stage(stage);
        if ns == 0 {
            continue;
        }
        println!(
            "  {:<13} {:>12}  {:>5.1}%",
            stage.name(),
            fmt_ns(ns),
            pct(ns)
        );
    }
    println!(
        "  {:<13} {:>12}  {:>5.1}% of measured wall",
        "attributed",
        fmt_ns(attributed),
        pct(attributed)
    );
    println!("operators:");
    for r in snap.roots() {
        print_op(snap, r, covers, 1);
    }
}

/// One operator line of the EXPLAIN ANALYZE tree, then its children
/// indented below it.
fn print_op(snap: &TimingsSnapshot, id: usize, covers: &[String], depth: usize) {
    let op = &snap.ops[id];
    let mut line = format!("{}{}", "  ".repeat(depth), op.label);
    if let Some(key) = op.cover.and_then(|c| covers.get(c)) {
        line.push_str(&format!(" [{key}]"));
    }
    line.push_str(&format!("  rows={} time={}", op.rows, fmt_ns(op.nanos)));
    if op.postings_fetched > 0 || op.postings_borrowed > 0 {
        line.push_str(&format!(
            " fetched={} borrowed={}",
            op.postings_fetched, op.postings_borrowed
        ));
    }
    if op.seeks > 0 || op.postings_skipped > 0 {
        line.push_str(&format!(
            " seeks={} skipped={}",
            op.seeks, op.postings_skipped
        ));
    }
    println!("{line}");
    for &c in &op.children {
        print_op(snap, c, covers, depth + 1);
    }
}

/// One single-line JSON trace record (`--trace-json`): query text,
/// match count, measured total nanoseconds, the result-cache counters,
/// the prefetch counters, then the snapshot's own `stages` / `ops`
/// fields spliced in.
fn trace_line(
    query_text: &str,
    matches: usize,
    total_ns: u64,
    stats: &EvalStats,
    snap: &TimingsSnapshot,
) -> String {
    let mut frag = String::new();
    snap.write_json(&mut frag);
    format!(
        "{{\"query\":\"{}\",\"matches\":{matches},\"total_ns\":{total_ns},\
         \"cache\":{{\"result_hits\":{},\"result_misses\":{},\
         \"partial_reuses\":{},\"negative_hits\":{}}},\
         \"prefetch\":{{\"hints\":{},\"useful\":{}}},{}",
        json_escape(query_text),
        stats.result_hits,
        stats.result_misses,
        stats.partial_reuses,
        stats.negative_hits,
        stats.prefetch_hints,
        stats.prefetch_useful,
        &frag[1..]
    )
}

/// TGrep2 / CorpusSearch mode: load the whole corpus and scan it with
/// the in-memory matcher — the baseline workflow the Subtree Index
/// replaces (§2 of the paper). Useful for one-off queries and as a
/// sanity check against `si query`.
fn scan(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let show: usize = args.get_or("show", 0)?;
    let [query_text] = args.positional() else {
        return Err("scan: expected exactly one QUERY argument".into());
    };
    let text = std::fs::read_to_string(input)?;
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    let query = parse_query(query_text, &mut interner)?;
    let started = std::time::Instant::now();
    let mut total = 0usize;
    let mut shown = 0usize;
    for (tid, tree) in trees.iter().enumerate() {
        let roots = si_query::match_roots(tree, &query);
        total += roots.len();
        if !roots.is_empty() && shown < show {
            println!("  tree {tid}: {}", ptb::write(tree, &interner));
            shown += 1;
        }
    }
    println!(
        "{} matches across {} trees in {:.3} ms (full scan)",
        total,
        trees.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// Dumps the most frequent subtree keys of a corpus — the raw material
/// of Figures 2–4 and of the frequency-based baseline's cutoff.
fn extract(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let mss: usize = args.get_or("mss", 3)?;
    let top: usize = args.get_or("top", 20)?;
    let text = std::fs::read_to_string(input)?;
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    let mut counts: std::collections::HashMap<Vec<u8>, u64> = std::collections::HashMap::new();
    for tree in &trees {
        si_core::extract::for_each_subtree(tree, mss, |sub| {
            *counts.entry(sub.key.clone()).or_insert(0) += 1;
        });
    }
    let total: u64 = counts.values().sum();
    println!(
        "{} unique subtree keys, {} occurrences (mss = {mss}, {} trees)",
        counts.len(),
        total,
        trees.len()
    );
    let mut ranked: Vec<(&Vec<u8>, &u64)> = counts.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (key, count) in ranked.into_iter().take(top) {
        println!("  {count:>8}  {}", render_key(key, &interner));
    }
    Ok(())
}

/// Renders a canonical key in query syntax.
fn render_key(key: &[u8], interner: &LabelInterner) -> String {
    fn go(t: &si_core::canonical::CanonTree, interner: &LabelInterner, out: &mut String) {
        out.push_str(interner.resolve(si_parsetree::Label(t.label)));
        for c in &t.children {
            out.push('(');
            go(c, interner, out);
            out.push(')');
        }
    }
    match si_core::canonical::decode_key(key) {
        Some(shape) => {
            let mut out = String::new();
            go(&shape, interner, &mut out);
            out
        }
        None => format!("<malformed key {key:02x?}>"),
    }
}

/// One `si stats` / `--verbose` line for a cover key's statistics.
fn key_stats_line(rendered: &str, stats: Option<&KeyStats>) -> String {
    match stats {
        None => format!("  {rendered}: not indexed (query has no matches)"),
        Some(s) => {
            let mut line = format!(
                "  {rendered}: {} postings, {} distinct trees, tids [{}, {}], \
                 {:.2} postings/tree, {} bytes{}",
                s.postings,
                s.distinct_tids,
                s.first_tid,
                s.last_tid,
                s.mean_postings_per_tid(),
                s.bytes,
                if s.exact { "" } else { " (estimated)" }
            );
            // Per-key tid histogram (stats segment v2): how the key's
            // occurrences spread across its [first, last] range — what
            // the planner's range-overlap refinement reads.
            if s.has_hist() {
                let buckets: Vec<String> = s.tid_hist.iter().map(u32::to_string).collect();
                line.push_str(&format!("\n      tid histogram [{}]", buckets.join(" ")));
            }
            line
        }
    }
}

/// `si query --verbose`: recomputes the cover, per-key statistics and
/// (for structural codings) the join order the planner chose, so
/// planner decisions are debuggable straight from the CLI.
fn print_plan_debug(
    index: &SubtreeIndex,
    query: &si_query::Query,
    interner: &LabelInterner,
    mode: PlannerMode,
) -> Result<(), AnyError> {
    let options = index.options();
    let cover = decompose(query, options.mss, options.coding);
    println!(
        "planner     {} ({})",
        mode.name(),
        if index.has_key_stats() {
            "exact stats segment"
        } else {
            "pre-stats index: estimates from encoded lengths"
        }
    );
    let mut all: Vec<Option<KeyStats>> = Vec::with_capacity(cover.subtrees.len());
    for st in &cover.subtrees {
        let s = index.key_stats(&st.key)?;
        println!(
            "{}",
            key_stats_line(&render_key(&st.key, interner), s.as_ref())
        );
        all.push(s);
    }
    if all.iter().any(|s| s.is_none()) {
        return Ok(());
    }
    let stats: Vec<KeyStats> = all.into_iter().map(|s| s.unwrap()).collect();
    // Range seeding and pruning happen only under the cost-based mode;
    // a byte-ordered run executes unseeded, so don't claim otherwise.
    let cost = mode == PlannerMode::CostBased;
    let Some(common) = intersect_tid_ranges(&stats) else {
        println!(
            "join order  {}",
            if cost {
                "(none: tid ranges disjoint, result provably empty)"
            } else {
                "(tid ranges disjoint, but byte-ordered mode executes anyway)"
            }
        );
        return Ok(());
    };
    if options.coding == Coding::FilterBased {
        if cost {
            println!(
                "join order  leapfrog tid intersection over {} streams, seeded to tids [{}, {}]",
                cover.subtrees.len(),
                common.0,
                common.1
            );
        } else {
            println!(
                "join order  leapfrog tid intersection over {} streams (unseeded)",
                cover.subtrees.len()
            );
        }
        return Ok(());
    }
    let plan = plan_structural(query, &cover, options.coding, &stats, mode);
    let mut order = format!("[{}]", render_key(&cover.subtrees[plan.base].key, interner));
    for step in &plan.steps {
        let join = match step.driving {
            Some((kind, _, _)) => format!("{kind:?}"),
            None => "TidCross".to_owned(),
        };
        let sort = match (step.sort_left, step.sort_right) {
            (None, None) => String::new(),
            (l, r) => format!(
                ", sort {}",
                match (l, r) {
                    (Some(_), Some(_)) => "both",
                    (Some(_), None) => "left",
                    _ => "right",
                }
            ),
        };
        order.push_str(&format!(
            " -{join}{sort}-> {}",
            render_key(&cover.subtrees[step.cover].key, interner)
        ));
    }
    println!("join order  {order}");
    if mode == PlannerMode::CostBased {
        let est: Vec<String> = cover
            .subtrees
            .iter()
            .zip(&stats)
            .map(|(st, s)| {
                format!(
                    "{}≈{:.0}",
                    render_key(&st.key, interner),
                    estimated_cardinality(s, &st.key, options.coding, common)
                )
            })
            .collect();
        println!("est cards   {}", est.join("  "));
    }
    Ok(())
}

/// `si query --verbose` on a sharded index: aggregated per-key
/// statistics plus every shard's skip verdict — which shards the
/// scatter-gather will consult and which its statistics already prove
/// empty.
fn print_shard_debug(
    sharded: &ShardedIndex,
    query: &si_query::Query,
    interner: &LabelInterner,
    mode: PlannerMode,
) -> Result<(), AnyError> {
    let options = sharded.options();
    let cover = decompose(query, options.mss, options.coding);
    println!(
        "planner     {} over {} shards (per-shard stats segments; key stats below aggregated)",
        mode.name(),
        sharded.shards().len()
    );
    for st in &cover.subtrees {
        let s = sharded.key_stats(&st.key)?;
        println!(
            "{}",
            key_stats_line(&render_key(&st.key, interner), s.as_ref())
        );
    }
    for (entry, shard) in sharded.manifest().shards.iter().zip(sharded.shards()) {
        let skip = shard_provably_empty(shard, &cover.subtrees, mode)?;
        println!(
            "  {}  tids [{}, {}]  {}",
            entry.dir_name(),
            entry.first_tid(),
            entry.last_tid(),
            if skip {
                "skip (provably empty from shard statistics)"
            } else {
                "evaluate"
            }
        );
    }
    Ok(())
}

fn stats(args: &Args) -> Result<(), AnyError> {
    let index_dir = args.required("index")?;
    let index = AnyIndex::open(Path::new(index_dir))?;
    match args.positional() {
        [] => {
            print_stats_any(&index);
            match &index {
                AnyIndex::Mono(mono) => {
                    println!(
                        "key stats  {}",
                        if mono.has_key_stats() {
                            "persistent segment (exact)"
                        } else {
                            "absent (pre-stats index; planner estimates from lengths)"
                        }
                    );
                    println!(
                        "skip index {}",
                        if mono.has_skip_headers() {
                            "restart-point headers on posting lists (seekable)"
                        } else {
                            "absent (pre-skip index; scans decode linearly)"
                        }
                    );
                    println!(
                        "read path  {}",
                        if mono.is_mapped() {
                            "mmap (read-only page images served from the mapping)"
                        } else {
                            "buffered pager"
                        }
                    );
                }
                AnyIndex::Sharded(_) => {
                    println!("key stats  per-shard segments, aggregated on lookup")
                }
            }
        }
        [key_text] => {
            // The KEY is query syntax; its cover under the index's own
            // mss/coding yields the canonical keys to look up — for a
            // subtree of size <= mss that is exactly one key. On a
            // sharded index the per-shard records aggregate: counts and
            // bytes sum, the tid range spans the covering shards.
            let mut interner = index.interner();
            let query = parse_query(key_text, &mut interner)?;
            let cover = decompose(&query, index.options().mss, index.options().coding);
            for st in &cover.subtrees {
                let s = index.key_stats(&st.key)?;
                println!(
                    "{}",
                    key_stats_line(&render_key(&st.key, &interner), s.as_ref())
                );
            }
        }
        _ => return Err("stats: expected at most one KEY argument".into()),
    }
    Ok(())
}

/// One query record as `si report` keeps it: trace-json and slow-log
/// lines both reduce to this.
#[derive(Default)]
struct ReportQuery {
    query: String,
    matches: u64,
    total_ns: u64,
    slow: bool,
    /// Operator with the largest *self* time (nanos minus the sum of
    /// its children's), and that self time.
    dominant: Option<(String, u64)>,
    result_hits: u64,
    result_misses: u64,
    partial_reuses: u64,
    negative_hits: u64,
    prefetch_hints: u64,
    prefetch_useful: u64,
}

/// The dominant operator of a trace record's `ops` forest: largest
/// self-time (a node's nanoseconds minus its children's — inclusive
/// times would always elect the root). The synthetic `shard-N` group
/// nodes `absorb` adds have zero self time, so they never win.
fn dominant_op(ops: &[Json]) -> Option<(String, u64)> {
    let nanos: Vec<u64> = ops
        .iter()
        .map(|op| op.get("nanos").and_then(Json::as_u64).unwrap_or(0))
        .collect();
    let mut best: Option<(String, u64)> = None;
    for (i, op) in ops.iter().enumerate() {
        let child_ns: u64 = op
            .get("children")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_u64)
            .filter_map(|c| nanos.get(c as usize))
            .sum();
        let self_ns = nanos[i].saturating_sub(child_ns);
        let label = op.get("label").and_then(Json::as_str).unwrap_or("?");
        if best.as_ref().is_none_or(|(_, b)| self_ns > *b) {
            best = Some((label.to_owned(), self_ns));
        }
    }
    best
}

/// `si report FILE...`: offline aggregation over the JSON-lines
/// telemetry the serve/batch/query commands emit. Lines classify by
/// shape — `"stages"` marks a per-query trace or slow record,
/// `"counters"` a metrics snapshot — so trace files, slow logs and
/// metrics files mix freely on one command line.
fn report(args: &Args, out: &mut dyn Write) -> Result<(), AnyError> {
    let top: usize = args.get_or("top", 5)?;
    let files = args.positional();
    if files.is_empty() {
        return Err(
            "report: expected one or more FILE arguments (trace-json / slow-log / metrics-json \
             lines)"
                .into(),
        );
    }

    let mut queries: Vec<ReportQuery> = Vec::new();
    let mut stage_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut metrics_lines = 0usize;
    let mut last_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut skipped = 0usize;
    for path in files {
        let text = std::fs::read_to_string(path)?;
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let Ok(v) = Json::parse(line) else {
                skipped += 1;
                continue;
            };
            if let Some(stages) = v.get("stages") {
                let mut rec = ReportQuery {
                    query: v
                        .get("query")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    matches: v.get("matches").and_then(Json::as_u64).unwrap_or(0),
                    total_ns: v.get("total_ns").and_then(Json::as_u64).unwrap_or(0),
                    slow: v.get("type").and_then(Json::as_str) == Some("slow"),
                    ..ReportQuery::default()
                };
                for (name, ns) in stages.as_obj().unwrap_or(&[]) {
                    *stage_ns.entry(name.clone()).or_insert(0) += ns.as_u64().unwrap_or(0);
                }
                if let Some(cache) = v.get("cache") {
                    let n = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap_or(0);
                    rec.result_hits = n("result_hits");
                    rec.result_misses = n("result_misses");
                    rec.partial_reuses = n("partial_reuses");
                    rec.negative_hits = n("negative_hits");
                }
                if let Some(pf) = v.get("prefetch") {
                    let n = |k: &str| pf.get(k).and_then(Json::as_u64).unwrap_or(0);
                    rec.prefetch_hints = n("hints");
                    rec.prefetch_useful = n("useful");
                }
                rec.dominant = dominant_op(v.get("ops").and_then(Json::as_arr).unwrap_or(&[]));
                queries.push(rec);
            } else if let Some(counters) = v.get("counters") {
                // Counters are cumulative, so the last snapshot line
                // seen supersedes earlier ones.
                metrics_lines += 1;
                last_counters = counters
                    .as_obj()
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|(k, n)| n.as_u64().map(|n| (k.clone(), n)))
                    .collect();
            } else {
                skipped += 1;
            }
        }
    }

    writeln!(
        out,
        "report over {} file{}{}",
        files.len(),
        if files.len() == 1 { "" } else { "s" },
        if skipped > 0 {
            format!(" ({skipped} unrecognized lines skipped)")
        } else {
            String::new()
        }
    )?;
    let slow_count = queries.iter().filter(|q| q.slow).count();
    writeln!(
        out,
        "queries aggregated: {} ({} slow-log records)",
        queries.len(),
        slow_count
    )?;

    if !queries.is_empty() {
        let stage_total: u64 = stage_ns.values().sum();
        writeln!(out, "stage breakdown (summed over traced queries):")?;
        let mut stages: Vec<(&String, &u64)> = stage_ns.iter().filter(|(_, &ns)| ns > 0).collect();
        stages.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (name, &ns) in stages {
            writeln!(
                out,
                "  {name:<13} {:>12}  {:>5.1}%",
                fmt_ns(ns),
                if stage_total > 0 {
                    ns as f64 * 100.0 / stage_total as f64
                } else {
                    0.0
                }
            )?;
        }
        writeln!(out, "  {:<13} {:>12}", "total", fmt_ns(stage_total))?;

        let mut by_latency: Vec<&ReportQuery> = queries.iter().collect();
        by_latency.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.query.cmp(&b.query)));
        writeln!(out, "top {} slowest queries:", top.min(by_latency.len()))?;
        for (i, q) in by_latency.iter().take(top).enumerate() {
            let dominant = match &q.dominant {
                Some((label, self_ns)) => {
                    format!(", dominant op {label} ({} self)", fmt_ns(*self_ns))
                }
                None => String::new(),
            };
            writeln!(
                out,
                "  {}. {:>12}  {}  ({} matches{}{})",
                i + 1,
                fmt_ns(q.total_ns),
                q.query,
                q.matches,
                dominant,
                if q.slow { ", slow-log" } else { "" }
            )?;
        }

        let sum = |f: fn(&ReportQuery) -> u64| -> u64 { queries.iter().map(f).sum() };
        let hits = sum(|q| q.result_hits);
        let misses = sum(|q| q.result_misses);
        writeln!(
            out,
            "result cache (traced queries): {} hits ({} negative), {} misses, {} shard partials \
             reused{}",
            hits,
            sum(|q| q.negative_hits),
            misses,
            sum(|q| q.partial_reuses),
            if hits + misses > 0 {
                format!(
                    " — {:.1}% hit rate",
                    hits as f64 * 100.0 / (hits + misses) as f64
                )
            } else {
                String::new()
            }
        )?;
        writeln!(
            out,
            "prefetch (traced queries): {} hints issued, {} prefetched pages consumed",
            sum(|q| q.prefetch_hints),
            sum(|q| q.prefetch_useful)
        )?;
    }

    if metrics_lines > 0 {
        writeln!(
            out,
            "metrics snapshots: {metrics_lines} line{}; final cumulative counters:",
            if metrics_lines == 1 { "" } else { "s" }
        )?;
        let c = |k: &str| last_counters.get(k).copied().unwrap_or(0);
        let rate = |h: u64, m: u64| {
            if h + m > 0 {
                format!("{:.1}%", h as f64 * 100.0 / (h + m) as f64)
            } else {
                "-".to_owned()
            }
        };
        writeln!(
            out,
            "  service     {} queries, {} matches",
            c("service.queries"),
            c("service.matches")
        )?;
        writeln!(
            out,
            "  block cache {} hit rate ({} hits / {} misses)",
            rate(c("blockcache.hits"), c("blockcache.misses")),
            c("blockcache.hits"),
            c("blockcache.misses")
        )?;
        writeln!(
            out,
            "  result cache {} hit rate ({} hits / {} misses, {} negative)",
            rate(c("resultcache.hits"), c("resultcache.misses")),
            c("resultcache.hits"),
            c("resultcache.misses"),
            c("resultcache.negative_hits")
        )?;
        writeln!(
            out,
            "  pager       {} hit rate ({} hits / {} reads, {} mmap reads)",
            rate(c("pager.hits"), c("pager.reads")),
            c("pager.hits"),
            c("pager.reads"),
            c("pager.mmap_reads")
        )?;
        writeln!(
            out,
            "  prefetch    {} useful rate ({} issued / {} useful, {} wasted, {} cancelled)",
            rate(
                c("pager.prefetch.useful"),
                c("pager.prefetch.issued").saturating_sub(c("pager.prefetch.useful"))
            ),
            c("pager.prefetch.issued"),
            c("pager.prefetch.useful"),
            c("pager.prefetch.wasted"),
            c("pager.prefetch.cancelled")
        )?;
        writeln!(
            out,
            "  seeks       {} restart-point seeks, {} postings skipped undecoded, {} fetched",
            c("eval.seeks"),
            c("eval.postings_skipped"),
            c("eval.postings_fetched")
        )?;
        writeln!(
            out,
            "  shards      {} visits, {} skipped from statistics",
            c("shard.visits"),
            c("shard.skips")
        )?;
    }
    Ok(())
}

fn print_stats(index: &SubtreeIndex) {
    let o = index.options();
    print_stats_common(
        index.dir(),
        o,
        index.store().len() as u64,
        index.stats(),
        "built in",
    );
}

/// `si stats` / post-build summary for either index layout. A sharded
/// index aggregates per-shard records: `keys` counts per-shard B+Tree
/// entries (a key hot in every shard counts once per shard) and the
/// build time sums per-shard CPU seconds.
fn print_stats_any(index: &AnyIndex) {
    match index {
        AnyIndex::Mono(mono) => print_stats(mono),
        AnyIndex::Sharded(sharded) => {
            print_stats_common(
                sharded.dir(),
                sharded.options(),
                sharded.num_trees(),
                sharded.stats(),
                "built in (cpu, summed over shards)",
            );
            println!("shards     {}", sharded.shards().len());
            for (entry, shard) in sharded.manifest().shards.iter().zip(sharded.shards()) {
                println!(
                    "  {}  tids [{}, {}]  {} keys  {} bytes",
                    entry.dir_name(),
                    entry.first_tid(),
                    entry.last_tid(),
                    shard.stats().keys,
                    shard.stats().index_bytes
                );
            }
        }
    }
}

fn print_stats_common(
    dir: &Path,
    o: IndexOptions,
    sentences: u64,
    s: si_core::IndexStats,
    built_label: &str,
) {
    println!("index      {}", dir.display());
    println!("coding     {}", o.coding);
    println!("mss        {}", o.mss);
    println!("sentences  {sentences}");
    println!("keys       {}", s.keys);
    println!("postings   {}", s.postings);
    println!(
        "index      {} bytes ({:.1} MiB)",
        s.index_bytes,
        s.index_bytes as f64 / (1 << 20) as f64
    );
    println!("postings   {} bytes", s.posting_bytes);
    println!("data file  {} bytes", s.data_bytes);
    println!("{built_label}   {:.2} s", s.build_seconds);
}

fn decompose_cmd(args: &Args) -> Result<(), AnyError> {
    let mss: usize = args.get_or("mss", 3)?;
    let coding = parse_coding(args.get("coding"))?;
    let [query_text] = args.positional() else {
        return Err("decompose: expected exactly one QUERY argument".into());
    };
    let mut interner = LabelInterner::new();
    let query = parse_query(query_text, &mut interner)?;
    let cover = decompose(&query, mss, coding);
    println!(
        "{} cover subtrees ({} joins) under {} coding, mss = {mss}:",
        cover.subtrees.len(),
        cover.num_joins(),
        coding
    );
    for (i, st) in cover.subtrees.iter().enumerate() {
        // Render the cover subtree as a query over its member nodes.
        let rendered = render_subtree(&query, st, &interner);
        println!(
            "  [{i}] root=node{} size={}  {}",
            st.root.0,
            st.size(),
            rendered
        );
    }
    Ok(())
}

/// Renders a cover subtree in query syntax.
fn render_subtree(
    query: &si_query::Query,
    st: &si_core::cover::CoverSubtree,
    interner: &LabelInterner,
) -> String {
    fn go(
        query: &si_query::Query,
        n: si_query::QNodeId,
        members: &[si_query::QNodeId],
        interner: &LabelInterner,
        out: &mut String,
    ) {
        out.push_str(interner.resolve(query.label(n)));
        for c in query.children_via(n, si_query::Axis::Child) {
            if members.contains(&c) {
                out.push('(');
                go(query, c, members, interner, out);
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    go(query, st.root, &st.nodes, interner, &mut out);
    let _ = write_query; // (kept for future full-query rendering)
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("si-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&[])).is_ok()); // usage
        assert!(run(&argv(&["help"])).is_ok());
    }

    #[test]
    fn coding_names() {
        assert_eq!(parse_coding(Some("rs")).unwrap(), Coding::RootSplit);
        assert_eq!(parse_coding(Some("filter")).unwrap(), Coding::FilterBased);
        assert_eq!(
            parse_coding(Some("interval")).unwrap(),
            Coding::SubtreeInterval
        );
        assert_eq!(parse_coding(None).unwrap(), Coding::RootSplit);
        assert!(parse_coding(Some("bogus")).is_err());
    }

    #[test]
    fn full_pipeline_generate_build_query() {
        let dir = tmp("pipeline");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "100",
            "--seed",
            "5",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
            "--mss",
            "3",
            "--coding",
            "root-split",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            index_dir.to_str().unwrap(),
            "S(NP)(VP)",
            "--show",
            "1",
        ]))
        .unwrap();
        run(&argv(&["stats", "--index", index_dir.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_build_flag() {
        let dir = tmp("external");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "50",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
            "--external",
            "true",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            index_dir.to_str().unwrap(),
            "NP(NN)",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decompose_prints_cover() {
        run(&argv(&[
            "decompose",
            "--mss",
            "3",
            "S(NP(DT)(NN))(VP(VBZ))",
        ]))
        .unwrap();
        run(&argv(&[
            "decompose",
            "--mss",
            "2",
            "--coding",
            "interval",
            "A(B(C))(D)",
        ]))
        .unwrap();
        assert!(run(&argv(&["decompose"])).is_err());
    }

    #[test]
    fn query_requires_exactly_one_positional() {
        assert!(run(&argv(&["query", "--index", "/nonexistent"])).is_err());
    }

    #[test]
    fn query_verbose_prints_counters() {
        let dir = tmp("verbose");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "60",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            index_dir.to_str().unwrap(),
            "--verbose",
            "NP(NN)",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            index_dir.to_str().unwrap(),
            "--verbose",
            "--cache-mb",
            "8",
            "NP(NN)",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_analyze_and_trace_json() {
        let dir = tmp("explain");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        let trace_file = dir.join("trace.jsonl");
        run(&argv(&[
            "generate",
            "--sentences",
            "80",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let idx = index_dir.to_str().unwrap();
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--explain-analyze",
            "NP(DT)(NN)",
        ]))
        .unwrap();
        // Two traced queries append two JSON lines.
        for q in ["NP(NN)", "S(NP)(VP)"] {
            run(&argv(&[
                "query",
                "--index",
                idx,
                "--trace-json",
                trace_file.to_str().unwrap(),
                q,
            ]))
            .unwrap();
        }
        let text = std::fs::read_to_string(&trace_file).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        for line in &lines {
            assert!(line.starts_with("{\"query\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            for key in [
                "\"matches\":",
                "\"total_ns\":",
                "\"prefetch\":{\"hints\":",
                "\"stages\":",
                "\"ops\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
        // The service path traces too (collect_timings via --trace-json).
        let queries_file = dir.join("queries.txt");
        let batch_trace = dir.join("batch-trace.jsonl");
        std::fs::write(&queries_file, "NP(NN)\nS(NP)(VP)\nVP(VBZ)\n").unwrap();
        run(&argv(&[
            "batch",
            "--index",
            idx,
            "--queries",
            queries_file.to_str().unwrap(),
            "--threads",
            "2",
            "--trace-json",
            batch_trace.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&batch_trace).unwrap();
        assert_eq!(text.lines().count(), 3, "{text}");
        for line in text.lines() {
            assert!(line.contains("\"ops\":"), "{line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_key_and_planner_flags() {
        let dir = tmp("statskey");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "60",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let idx = index_dir.to_str().unwrap();
        // Per-key statistics for a query-syntax KEY (single and
        // multi-cover), and the plain index summary.
        run(&argv(&["stats", "--index", idx, "NP(NN)"])).unwrap();
        run(&argv(&["stats", "--index", idx, "S(NP(DT)(NN))(VP(VBZ))"])).unwrap();
        run(&argv(&["stats", "--index", idx])).unwrap();
        assert!(run(&argv(&["stats", "--index", idx, "NP(NN)", "extra"])).is_err());
        // Both planner modes answer; bogus mode errors.
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--planner",
            "cost",
            "--verbose",
            "S(NP)(VP)",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--planner",
            "bytes",
            "NP(NN)",
        ]))
        .unwrap();
        assert!(run(&argv(&[
            "query",
            "--index",
            idx,
            "--planner",
            "x",
            "NP(NN)"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_runs_a_query_file() {
        let dir = tmp("batch");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        let queries_file = dir.join("queries.txt");
        run(&argv(&[
            "generate",
            "--sentences",
            "80",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(
            &queries_file,
            "# comment lines and blanks are skipped\n\nNP(NN)\nS(NP)(VP)\nVP(VBZ)\nNP(NN)\n",
        )
        .unwrap();
        run(&argv(&[
            "batch",
            "--index",
            index_dir.to_str().unwrap(),
            "--queries",
            queries_file.to_str().unwrap(),
            "--threads",
            "2",
            "--cache-mb",
            "8",
        ]))
        .unwrap();
        // Missing the queries flag errors.
        assert!(run(&argv(&["batch", "--index", index_dir.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_processes_stdin_batches() {
        let dir = tmp("serve");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "60",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let args = Args::parse_bools(
            &argv(&[
                "--index",
                index_dir.to_str().unwrap(),
                "--threads",
                "2",
                "--batch-size",
                "2",
            ]),
            BOOL_FLAGS,
        )
        .unwrap();
        let input = b"NP(NN)\nS(NP)(VP)\nVP(VBZ)\n" as &[u8];
        let mut reader = std::io::BufReader::new(input);
        let mut out: Vec<u8> = Vec::new();
        serve(&args, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one result line per query: {text}");
        assert!(lines[0].starts_with("NP(NN)\t"), "{text}");
        assert!(lines[0].contains("matches"), "{text}");

        // A malformed line must not kill the long-running service: it
        // gets an error line and the rest of its batch still runs.
        let input = b"NP(NN)\nNP((\nS(NP)(VP)\n" as &[u8];
        let mut reader = std::io::BufReader::new(input);
        let mut out: Vec<u8> = Vec::new();
        serve(&args, &mut reader, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "every line answered: {text}");
        assert!(lines[1].starts_with("NP((\terror:"), "{text}");
        assert!(lines[2].contains("matches"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_emits_metrics_snapshots_and_slow_log() {
        let dir = tmp("telemetry");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "60",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let metrics_file = dir.join("metrics.jsonl");
        let slow_file = dir.join("slow.jsonl");
        // Threshold 0 ms: every query breaches, so the slow log holds
        // one span tree per query.
        let args = Args::parse_bools(
            &argv(&[
                "--index",
                index_dir.to_str().unwrap(),
                "--threads",
                "2",
                "--stats-interval",
                "1",
                "--metrics-json",
                metrics_file.to_str().unwrap(),
                "--slow-query-ms",
                "0",
                "--slow-log",
                slow_file.to_str().unwrap(),
            ]),
            BOOL_FLAGS,
        )
        .unwrap();
        let input = b"NP(NN)\nS(NP)(VP)\nVP(VBZ)\n" as &[u8];
        let mut reader = std::io::BufReader::new(input);
        let mut out: Vec<u8> = Vec::new();
        serve(&args, &mut reader, &mut out).unwrap();
        // At least the final at-exit snapshot, schema-complete.
        let metrics = std::fs::read_to_string(&metrics_file).unwrap();
        assert!(!metrics.lines().collect::<Vec<_>>().is_empty(), "{metrics}");
        for line in metrics.lines() {
            for key in [
                "\"type\":\"metrics\"",
                "\"tick\":",
                "\"counters\":",
                "\"delta\":",
                "\"gauges\":",
                "\"latency_window\":",
                "\"latency_total\":",
                "\"service.queries\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
            Json::parse(line).unwrap();
        }
        let slow = std::fs::read_to_string(&slow_file).unwrap();
        assert_eq!(slow.lines().count(), 3, "{slow}");
        for line in slow.lines() {
            assert!(
                line.starts_with("{\"type\":\"slow\",\"threshold_ms\":0"),
                "{line}"
            );
            assert!(line.contains("\"ops\":"), "{line}");
            Json::parse(line).unwrap();
        }
        // An unreachable threshold captures nothing: the span-tree cost
        // is paid only by queries that actually breach it.
        let quiet_slow = dir.join("quiet-slow.jsonl");
        let args = Args::parse_bools(
            &argv(&[
                "--index",
                index_dir.to_str().unwrap(),
                "--slow-query-ms",
                "100000",
                "--slow-log",
                quiet_slow.to_str().unwrap(),
            ]),
            BOOL_FLAGS,
        )
        .unwrap();
        let input = b"NP(NN)\nS(NP)(VP)\n" as &[u8];
        let mut reader = std::io::BufReader::new(input);
        let mut out: Vec<u8> = Vec::new();
        serve(&args, &mut reader, &mut out).unwrap();
        assert_eq!(std::fs::read_to_string(&quiet_slow).unwrap(), "");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_aggregates_trace_slow_and_metrics_files() {
        let dir = tmp("report");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        let queries_file = dir.join("queries.txt");
        run(&argv(&[
            "generate",
            "--sentences",
            "80",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::write(&queries_file, "NP(NN)\nS(NP)(VP)\nVP(VBZ)\nNP(DT)(NN)\n").unwrap();
        let trace_file = dir.join("trace.jsonl");
        let slow_file = dir.join("slow.jsonl");
        let metrics_file = dir.join("metrics.jsonl");
        run(&argv(&[
            "batch",
            "--index",
            index_dir.to_str().unwrap(),
            "--queries",
            queries_file.to_str().unwrap(),
            "--trace-json",
            trace_file.to_str().unwrap(),
            "--slow-query-ms",
            "0",
            "--slow-log",
            slow_file.to_str().unwrap(),
            "--stats-interval",
            "30",
            "--metrics-json",
            metrics_file.to_str().unwrap(),
        ]))
        .unwrap();
        let args = Args::parse_bools(
            &argv(&[
                "--top",
                "2",
                trace_file.to_str().unwrap(),
                slow_file.to_str().unwrap(),
                metrics_file.to_str().unwrap(),
            ]),
            BOOL_FLAGS,
        )
        .unwrap();
        let mut out: Vec<u8> = Vec::new();
        report(&args, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // 4 trace records + 4 slow records, every line classified.
        assert!(
            text.contains("queries aggregated: 8 (4 slow-log records)"),
            "{text}"
        );
        assert!(!text.contains("unrecognized"), "{text}");
        assert!(text.contains("stage breakdown"), "{text}");
        assert!(text.contains("top 2 slowest queries:"), "{text}");
        assert!(text.contains("dominant op"), "{text}");
        assert!(text.contains("metrics snapshots: 1 line"), "{text}");
        // The registry counted each of the 4 queries once, even though
        // trace + slow views record them twice.
        assert!(text.contains("service     4 queries"), "{text}");
        // Prefetch shows up in both the per-query aggregation and the
        // metrics-snapshot block.
        assert!(text.contains("prefetch (traced queries):"), "{text}");
        assert!(text.contains("  prefetch    "), "{text}");
        // The dispatcher wires `si report` up, and no files is an error.
        run(&argv(&["report", trace_file.to_str().unwrap()])).unwrap();
        assert!(run(&argv(&["report"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_build_ingest_query_stats_batch() {
        let dir = tmp("sharded");
        let corpus_file = dir.join("corpus.ptb");
        let more_file = dir.join("more.ptb");
        let index_dir = dir.join("idx");
        let queries_file = dir.join("queries.txt");
        run(&argv(&[
            "generate",
            "--sentences",
            "90",
            "--seed",
            "11",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "generate",
            "--sentences",
            "30",
            "--seed",
            "12",
            "--out",
            more_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
            "--shards",
            "3",
            "--workers",
            "2",
        ]))
        .unwrap();
        let idx = index_dir.to_str().unwrap();
        assert!(index_dir.join("MANIFEST.si").is_file());
        assert!(index_dir.join("shard-0000").is_dir());
        // Query (plain + verbose + show), stats (summary + per-key).
        run(&argv(&[
            "query",
            "--index",
            idx,
            "S(NP)(VP)",
            "--show",
            "1",
        ]))
        .unwrap();
        run(&argv(&["query", "--index", idx, "--verbose", "NP(NN)"])).unwrap();
        run(&argv(&["stats", "--index", idx])).unwrap();
        run(&argv(&["stats", "--index", idx, "NP(NN)"])).unwrap();
        // Ingest appends a shard; queries and stats keep working.
        run(&argv(&[
            "ingest",
            "--input",
            more_file.to_str().unwrap(),
            "--index",
            idx,
        ]))
        .unwrap();
        assert!(index_dir.join("shard-0003").is_dir());
        run(&argv(&["query", "--index", idx, "S(NP)(VP)"])).unwrap();
        run(&argv(&["stats", "--index", idx])).unwrap();
        // Batch through the sharded service.
        std::fs::write(&queries_file, "NP(NN)\nS(NP)(VP)\nVP(VBZ)\nNP(NN)\n").unwrap();
        run(&argv(&[
            "batch",
            "--index",
            idx,
            "--queries",
            queries_file.to_str().unwrap(),
            "--threads",
            "2",
            "--cache-mb",
            "8",
        ]))
        .unwrap();
        // Ingest into a monolithic index is a helpful error.
        let mono_dir = dir.join("mono");
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            mono_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&argv(&[
            "ingest",
            "--input",
            more_file.to_str().unwrap(),
            "--index",
            mono_dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monolithic_rebuild_tears_down_a_stale_sharded_layout() {
        let dir = tmp("rebuild-over-sharded");
        let big = dir.join("big.ptb");
        let small = dir.join("small.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "90",
            "--seed",
            "31",
            "--out",
            big.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "generate",
            "--sentences",
            "30",
            "--seed",
            "32",
            "--out",
            small.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            big.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
            "--shards",
            "3",
        ]))
        .unwrap();
        assert!(index_dir.join("MANIFEST.si").is_file());
        // A monolithic rebuild into the same directory must become
        // authoritative: the stale manifest (which readers dispatch on)
        // and its shard directories are removed.
        run(&argv(&[
            "build",
            "--input",
            small.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!index_dir.join("MANIFEST.si").exists());
        assert!(!index_dir.join("shard-0000").exists());
        let reopened = AnyIndex::open(&index_dir).unwrap();
        assert!(matches!(reopened, AnyIndex::Mono(_)));
        match &reopened {
            AnyIndex::Mono(mono) => assert_eq!(mono.store().len(), 30),
            AnyIndex::Sharded(_) => unreachable!(),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_and_mono_cli_answers_agree() {
        let dir = tmp("sharded-agree");
        let corpus_file = dir.join("corpus.ptb");
        run(&argv(&[
            "generate",
            "--sentences",
            "70",
            "--seed",
            "21",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        let mono_dir = dir.join("mono");
        let shard_dir = dir.join("sharded");
        for (target, shards) in [(&mono_dir, None), (&shard_dir, Some("4"))] {
            let mut cmd = vec![
                "build",
                "--input",
                corpus_file.to_str().unwrap(),
                "--index",
                target.to_str().unwrap(),
            ];
            if let Some(n) = shards {
                cmd.extend(["--shards", n, "--workers", "2"]);
            }
            run(&argv(&cmd)).unwrap();
        }
        // Same answers through the public evaluate path.
        let mono = AnyIndex::open(&mono_dir).unwrap();
        let sharded = AnyIndex::open(&shard_dir).unwrap();
        let mut qi = mono.interner();
        for text in ["NP(NN)", "S(NP)(VP)", "VP(//NN)", "XXUNKNOWN"] {
            let q = parse_query(text, &mut qi).unwrap();
            let ctx = si_core::ExecContext::default();
            assert_eq!(
                mono.evaluate_with(&q, &ctx).unwrap().matches,
                sharded.evaluate_with(&q, &ctx).unwrap().matches,
                "{text}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_exec_flag_selects_executor() {
        let dir = tmp("execflag");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "40",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let idx = index_dir.to_str().unwrap();
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--exec",
            "streaming",
            "NP(NN)",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--exec",
            "materialized",
            "NP(NN)",
        ]))
        .unwrap();
        assert!(run(&argv(&[
            "query", "--index", idx, "--exec", "bogus", "NP(NN)"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod scan_extract_tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    fn corpus_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("si-cli-se-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("c.ptb");
        std::fs::write(
            &f,
            "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))\n(S (NP (NN cat)) (VP (VBD sat)))\n",
        )
        .unwrap();
        f
    }

    #[test]
    fn scan_matches_like_tgrep() {
        let f = corpus_file("scan");
        run(&argv(&[
            "scan",
            "--input",
            f.to_str().unwrap(),
            "S(NP(NN))",
            "--show",
            "1",
        ]))
        .unwrap();
        assert!(run(&argv(&["scan", "--input", f.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(f.parent().unwrap()).ok();
    }

    #[test]
    fn extract_dumps_keys() {
        let f = corpus_file("extract");
        run(&argv(&[
            "extract",
            "--input",
            f.to_str().unwrap(),
            "--mss",
            "2",
            "--top",
            "5",
        ]))
        .unwrap();
        std::fs::remove_dir_all(f.parent().unwrap()).ok();
    }

    #[test]
    fn render_key_round_trips_structure() {
        let mut li = LabelInterner::new();
        let q = parse_query("NP(DT)(NN)", &mut li).unwrap();
        let cover = decompose(&q, 3, Coding::RootSplit);
        let rendered = render_key(&cover.subtrees[0].key, &li);
        // Canonical order may differ from input order but both children
        // appear under NP.
        assert!(rendered.starts_with("NP("));
        assert!(rendered.contains("DT"));
        assert!(rendered.contains("NN"));
    }
}
