//! Subcommand implementations.

use std::error::Error;
use std::io::Write;
use std::path::Path;

use si_core::build_ext::ExternalBuildConfig;
use si_core::cover::decompose;
use si_core::{Coding, ExecMode, IndexOptions, SubtreeIndex};
use si_corpus::GeneratorConfig;
use si_parsetree::{ptb, LabelInterner};
use si_query::{parse_query, write_query};

use crate::args::Args;

type AnyError = Box<dyn Error>;

const USAGE: &str = "\
si — Subtree Index over syntactically annotated trees

USAGE:
  si generate  --sentences N [--seed S] [--out FILE]        write a synthetic PTB corpus
  si build     --input FILE --index DIR [--mss 3]
               [--coding root-split|filter|interval]
               [--external true]                            build an index from PTB text
  si query     --index DIR QUERY [--show N]
               [--exec streaming|materialized]              evaluate a tree query
  si scan      --input FILE QUERY [--show N]                TGrep2 mode: match without an index
  si extract   --input FILE [--mss 3] [--top 20]            most frequent subtree keys
  si stats     --index DIR                                  print index statistics
  si decompose [--mss 3] [--coding root-split] QUERY        show the query's cover

Query syntax: LABEL('(' [//] node ')')*, e.g. S(NP(NNS))(VP(//NN))";

/// Dispatches a full argv (without the program name).
pub fn run(argv: &[String]) -> Result<(), AnyError> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "generate" => generate(&args),
        "build" => build(&args),
        "query" => query(&args),
        "scan" => scan(&args),
        "extract" => extract(&args),
        "stats" => stats(&args),
        "decompose" => decompose_cmd(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `si help`").into()),
    }
}

fn parse_exec(name: Option<&str>) -> Result<ExecMode, AnyError> {
    match name.unwrap_or("streaming") {
        "streaming" | "s" => Ok(ExecMode::Streaming),
        "materialized" | "m" | "legacy" => Ok(ExecMode::Materialized),
        other => Err(format!("unknown executor {other:?} (streaming | materialized)").into()),
    }
}

fn parse_coding(name: Option<&str>) -> Result<Coding, AnyError> {
    match name.unwrap_or("root-split") {
        "root-split" | "rs" => Ok(Coding::RootSplit),
        "filter" | "filter-based" | "fb" => Ok(Coding::FilterBased),
        "interval" | "subtree-interval" | "si" => Ok(Coding::SubtreeInterval),
        other => Err(format!("unknown coding {other:?} (root-split | filter | interval)").into()),
    }
}

fn generate(args: &Args) -> Result<(), AnyError> {
    let sentences: usize = args.get_or("sentences", 1_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let corpus = GeneratorConfig::default()
        .with_seed(seed)
        .generate(sentences);
    let mut out: Box<dyn Write> = match args.get("out") {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    for tree in corpus.trees() {
        writeln!(out, "{}", ptb::write(tree, corpus.interner()))?;
    }
    out.flush()?;
    eprintln!("wrote {sentences} sentences (seed {seed})");
    Ok(())
}

fn build(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let index_dir = args.required("index")?;
    let mss: usize = args.get_or("mss", 3)?;
    let coding = parse_coding(args.get("coding"))?;
    let external: bool = args.get_or("external", false)?;

    let text = std::fs::read_to_string(input)?;
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    eprintln!("parsed {} trees, {} labels", trees.len(), interner.len());

    let options = IndexOptions::new(mss, coding);
    let index = if external {
        SubtreeIndex::build_external(
            Path::new(index_dir),
            &trees,
            &interner,
            options,
            ExternalBuildConfig::default(),
        )?
    } else {
        SubtreeIndex::build(Path::new(index_dir), &trees, &interner, options)?
    };
    print_stats(&index);
    Ok(())
}

fn query(args: &Args) -> Result<(), AnyError> {
    let index_dir = args.required("index")?;
    let show: usize = args.get_or("show", 0)?;
    let [query_text] = args.positional() else {
        return Err("query: expected exactly one QUERY argument".into());
    };
    let exec = parse_exec(args.get("exec"))?;
    let mut index = SubtreeIndex::open(Path::new(index_dir))?;
    index.set_exec_mode(exec);
    let mut interner = index.interner();
    let query = parse_query(query_text, &mut interner)?;
    let started = std::time::Instant::now();
    let result = index.evaluate(&query)?;
    let elapsed = started.elapsed();
    println!(
        "{} matches in {:.3} ms  ({} executor, {} covers, {} joins, {} postings fetched, {} peak posting bytes{})",
        result.len(),
        elapsed.as_secs_f64() * 1e3,
        exec.name(),
        result.stats.covers,
        result.stats.joins,
        result.stats.postings_fetched,
        result.stats.peak_posting_bytes,
        if result.stats.used_validation {
            ", post-validated"
        } else {
            ""
        }
    );
    for &(tid, pre) in result.matches.iter().take(show) {
        let tree = index.store().get(tid)?;
        println!(
            "  tree {tid} @ node {pre}: {}",
            ptb::write(&tree, &interner)
        );
    }
    Ok(())
}

/// TGrep2 / CorpusSearch mode: load the whole corpus and scan it with
/// the in-memory matcher — the baseline workflow the Subtree Index
/// replaces (§2 of the paper). Useful for one-off queries and as a
/// sanity check against `si query`.
fn scan(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let show: usize = args.get_or("show", 0)?;
    let [query_text] = args.positional() else {
        return Err("scan: expected exactly one QUERY argument".into());
    };
    let text = std::fs::read_to_string(input)?;
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    let query = parse_query(query_text, &mut interner)?;
    let started = std::time::Instant::now();
    let mut total = 0usize;
    let mut shown = 0usize;
    for (tid, tree) in trees.iter().enumerate() {
        let roots = si_query::match_roots(tree, &query);
        total += roots.len();
        if !roots.is_empty() && shown < show {
            println!("  tree {tid}: {}", ptb::write(tree, &interner));
            shown += 1;
        }
    }
    println!(
        "{} matches across {} trees in {:.3} ms (full scan)",
        total,
        trees.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// Dumps the most frequent subtree keys of a corpus — the raw material
/// of Figures 2–4 and of the frequency-based baseline's cutoff.
fn extract(args: &Args) -> Result<(), AnyError> {
    let input = args.required("input")?;
    let mss: usize = args.get_or("mss", 3)?;
    let top: usize = args.get_or("top", 20)?;
    let text = std::fs::read_to_string(input)?;
    let mut interner = LabelInterner::new();
    let trees = ptb::parse_corpus(&text, &mut interner)?;
    let mut counts: std::collections::HashMap<Vec<u8>, u64> = std::collections::HashMap::new();
    for tree in &trees {
        si_core::extract::for_each_subtree(tree, mss, |sub| {
            *counts.entry(sub.key.clone()).or_insert(0) += 1;
        });
    }
    let total: u64 = counts.values().sum();
    println!(
        "{} unique subtree keys, {} occurrences (mss = {mss}, {} trees)",
        counts.len(),
        total,
        trees.len()
    );
    let mut ranked: Vec<(&Vec<u8>, &u64)> = counts.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (key, count) in ranked.into_iter().take(top) {
        println!("  {count:>8}  {}", render_key(key, &interner));
    }
    Ok(())
}

/// Renders a canonical key in query syntax.
fn render_key(key: &[u8], interner: &LabelInterner) -> String {
    fn go(t: &si_core::canonical::CanonTree, interner: &LabelInterner, out: &mut String) {
        out.push_str(interner.resolve(si_parsetree::Label(t.label)));
        for c in &t.children {
            out.push('(');
            go(c, interner, out);
            out.push(')');
        }
    }
    match si_core::canonical::decode_key(key) {
        Some(shape) => {
            let mut out = String::new();
            go(&shape, interner, &mut out);
            out
        }
        None => format!("<malformed key {key:02x?}>"),
    }
}

fn stats(args: &Args) -> Result<(), AnyError> {
    let index_dir = args.required("index")?;
    let index = SubtreeIndex::open(Path::new(index_dir))?;
    print_stats(&index);
    Ok(())
}

fn print_stats(index: &SubtreeIndex) {
    let o = index.options();
    let s = index.stats();
    println!("index      {}", index.dir().display());
    println!("coding     {}", o.coding);
    println!("mss        {}", o.mss);
    println!("sentences  {}", index.store().len());
    println!("keys       {}", s.keys);
    println!("postings   {}", s.postings);
    println!(
        "index      {} bytes ({:.1} MiB)",
        s.index_bytes,
        s.index_bytes as f64 / (1 << 20) as f64
    );
    println!("postings   {} bytes", s.posting_bytes);
    println!("data file  {} bytes", s.data_bytes);
    println!("built in   {:.2} s", s.build_seconds);
}

fn decompose_cmd(args: &Args) -> Result<(), AnyError> {
    let mss: usize = args.get_or("mss", 3)?;
    let coding = parse_coding(args.get("coding"))?;
    let [query_text] = args.positional() else {
        return Err("decompose: expected exactly one QUERY argument".into());
    };
    let mut interner = LabelInterner::new();
    let query = parse_query(query_text, &mut interner)?;
    let cover = decompose(&query, mss, coding);
    println!(
        "{} cover subtrees ({} joins) under {} coding, mss = {mss}:",
        cover.subtrees.len(),
        cover.num_joins(),
        coding
    );
    for (i, st) in cover.subtrees.iter().enumerate() {
        // Render the cover subtree as a query over its member nodes.
        let rendered = render_subtree(&query, st, &interner);
        println!(
            "  [{i}] root=node{} size={}  {}",
            st.root.0,
            st.size(),
            rendered
        );
    }
    Ok(())
}

/// Renders a cover subtree in query syntax.
fn render_subtree(
    query: &si_query::Query,
    st: &si_core::cover::CoverSubtree,
    interner: &LabelInterner,
) -> String {
    fn go(
        query: &si_query::Query,
        n: si_query::QNodeId,
        members: &[si_query::QNodeId],
        interner: &LabelInterner,
        out: &mut String,
    ) {
        out.push_str(interner.resolve(query.label(n)));
        for c in query.children_via(n, si_query::Axis::Child) {
            if members.contains(&c) {
                out.push('(');
                go(query, c, members, interner, out);
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    go(query, st.root, &st.nodes, interner, &mut out);
    let _ = write_query; // (kept for future full-query rendering)
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("si-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&[])).is_ok()); // usage
        assert!(run(&argv(&["help"])).is_ok());
    }

    #[test]
    fn coding_names() {
        assert_eq!(parse_coding(Some("rs")).unwrap(), Coding::RootSplit);
        assert_eq!(parse_coding(Some("filter")).unwrap(), Coding::FilterBased);
        assert_eq!(
            parse_coding(Some("interval")).unwrap(),
            Coding::SubtreeInterval
        );
        assert_eq!(parse_coding(None).unwrap(), Coding::RootSplit);
        assert!(parse_coding(Some("bogus")).is_err());
    }

    #[test]
    fn full_pipeline_generate_build_query() {
        let dir = tmp("pipeline");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "100",
            "--seed",
            "5",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
            "--mss",
            "3",
            "--coding",
            "root-split",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            index_dir.to_str().unwrap(),
            "S(NP)(VP)",
            "--show",
            "1",
        ]))
        .unwrap();
        run(&argv(&["stats", "--index", index_dir.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_build_flag() {
        let dir = tmp("external");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "50",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
            "--external",
            "true",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            index_dir.to_str().unwrap(),
            "NP(NN)",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decompose_prints_cover() {
        run(&argv(&[
            "decompose",
            "--mss",
            "3",
            "S(NP(DT)(NN))(VP(VBZ))",
        ]))
        .unwrap();
        run(&argv(&[
            "decompose",
            "--mss",
            "2",
            "--coding",
            "interval",
            "A(B(C))(D)",
        ]))
        .unwrap();
        assert!(run(&argv(&["decompose"])).is_err());
    }

    #[test]
    fn query_requires_exactly_one_positional() {
        assert!(run(&argv(&["query", "--index", "/nonexistent"])).is_err());
    }

    #[test]
    fn query_exec_flag_selects_executor() {
        let dir = tmp("execflag");
        let corpus_file = dir.join("corpus.ptb");
        let index_dir = dir.join("idx");
        run(&argv(&[
            "generate",
            "--sentences",
            "40",
            "--out",
            corpus_file.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "build",
            "--input",
            corpus_file.to_str().unwrap(),
            "--index",
            index_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let idx = index_dir.to_str().unwrap();
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--exec",
            "streaming",
            "NP(NN)",
        ]))
        .unwrap();
        run(&argv(&[
            "query",
            "--index",
            idx,
            "--exec",
            "materialized",
            "NP(NN)",
        ]))
        .unwrap();
        assert!(run(&argv(&[
            "query", "--index", idx, "--exec", "bogus", "NP(NN)"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod scan_extract_tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    fn corpus_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("si-cli-se-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("c.ptb");
        std::fs::write(
            &f,
            "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))\n(S (NP (NN cat)) (VP (VBD sat)))\n",
        )
        .unwrap();
        f
    }

    #[test]
    fn scan_matches_like_tgrep() {
        let f = corpus_file("scan");
        run(&argv(&[
            "scan",
            "--input",
            f.to_str().unwrap(),
            "S(NP(NN))",
            "--show",
            "1",
        ]))
        .unwrap();
        assert!(run(&argv(&["scan", "--input", f.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(f.parent().unwrap()).ok();
    }

    #[test]
    fn extract_dumps_keys() {
        let f = corpus_file("extract");
        run(&argv(&[
            "extract",
            "--input",
            f.to_str().unwrap(),
            "--mss",
            "2",
            "--top",
            "5",
        ]))
        .unwrap();
        std::fs::remove_dir_all(f.parent().unwrap()).ok();
    }

    #[test]
    fn render_key_round_trips_structure() {
        let mut li = LabelInterner::new();
        let q = parse_query("NP(DT)(NN)", &mut li).unwrap();
        let cover = decompose(&q, 3, Coding::RootSplit);
        let rendered = render_key(&cover.subtrees[0].key, &li);
        // Canonical order may differ from input order but both children
        // appear under NP.
        assert!(rendered.starts_with("NP("));
        assert!(rendered.contains("DT"));
        assert!(rendered.contains("NN"));
    }
}
