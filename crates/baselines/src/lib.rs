//! Comparator systems used in the paper's Table 2.
//!
//! * [`atreegrep`] — a reimplementation of ATreeGrep (Shasha et al.,
//!   SSDBM 2002): all root-to-leaf label paths in a suffix array, a hash
//!   prefilter over nodes and edges, and candidate post-validation;
//! * [`freq`] — the "frequency-based approach", the paper's adaptation of
//!   TreePi (Zhang et al., ICDE 2007): all single nodes plus the top-`f`%
//!   most frequent subtrees are indexed, and matching post-validates.

pub mod atreegrep;
pub mod freq;

pub use atreegrep::ATreeGrep;
pub use freq::{FreqIndex, FreqIndexOptions};
