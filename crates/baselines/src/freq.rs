//! The frequency-based approach: the paper's adaptation of TreePi
//! (Zhang, Hu & Yang, ICDE 2007) to parse trees (§6.3.2, Table 2).
//!
//! "Similar to TreePi, the frequency-based approach stores in the index
//! all single nodes and a percentage of larger highest frequency
//! subtrees" — the percentage is the `FB(f%)` column of Table 2. Queries
//! are greedily covered with the *available* index keys (largest first);
//! because infrequent structures are not indexed, pruning is partial and
//! **post-validation is always required**, which is exactly what the
//! Subtree Index's complete key set avoids.

use std::collections::{HashMap, HashSet};

use si_core::extract::extract_subtrees;
use si_parsetree::{ParseTree, TreeBuilder, TreeId};
use si_query::{matcher::Matcher, Axis, QNodeId, Query};

/// Build parameters of a [`FreqIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqIndexOptions {
    /// Maximum subtree size considered (like the SI's `mss`).
    pub mss: usize,
    /// Fraction of the highest-frequency keys of sizes `2..=mss` kept
    /// (Table 2 uses 0.001, 0.01 and 0.1). Size-1 keys are always kept.
    pub fraction: f64,
}

/// Evaluation statistics of one frequency-based query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreqStats {
    /// Index keys used by the greedy cover.
    pub cover_keys: usize,
    /// Of those, how many were larger than a single node.
    pub multi_node_keys: usize,
    /// Candidate trees after intersection.
    pub candidates: usize,
    /// Trees post-validated.
    pub validated_trees: usize,
}

/// In-memory frequency-cutoff subtree index with tid posting lists.
pub struct FreqIndex<'a> {
    trees: &'a [ParseTree],
    options: FreqIndexOptions,
    lists: HashMap<Vec<u8>, Vec<TreeId>>,
}

impl<'a> FreqIndex<'a> {
    /// Builds the index: all size-1 keys plus the top `fraction` of
    /// larger keys by occurrence count.
    pub fn build(trees: &'a [ParseTree], options: FreqIndexOptions) -> Self {
        assert!(options.mss >= 1);
        assert!((0.0..=1.0).contains(&options.fraction));
        let mut lists: HashMap<Vec<u8>, Vec<TreeId>> = HashMap::new();
        let mut occurrences: HashMap<Vec<u8>, u64> = HashMap::new();
        for (tid, tree) in trees.iter().enumerate() {
            let tid = tid as TreeId;
            si_core::extract::for_each_subtree(tree, options.mss, |sub| {
                *occurrences.entry(sub.key.clone()).or_insert(0) += 1;
                let list = lists.entry(sub.key.clone()).or_default();
                if list.last() != Some(&tid) {
                    list.push(tid);
                }
            });
        }
        // Rank multi-node keys by frequency and keep the top fraction.
        let mut multi: Vec<(&Vec<u8>, u64)> = occurrences
            .iter()
            .filter(|(k, _)| si_core::canonical::key_size(k) != Some(1))
            .map(|(k, &c)| (k, c))
            .collect();
        multi.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let keep = ((multi.len() as f64) * options.fraction).ceil() as usize;
        let dropped: HashSet<Vec<u8>> = multi[keep.min(multi.len())..]
            .iter()
            .map(|(k, _)| (*k).clone())
            .collect();
        lists.retain(|k, _| !dropped.contains(k));
        Self {
            trees,
            options,
            lists,
        }
    }

    /// Number of keys retained.
    pub fn key_count(&self) -> usize {
        self.lists.len()
    }

    /// Estimated index size in bytes (keys + tid postings).
    pub fn size_bytes(&self) -> usize {
        self.lists.iter().map(|(k, v)| k.len() + v.len() * 4).sum()
    }

    /// Evaluates `query` with the same result semantics as
    /// [`si_core::SubtreeIndex::evaluate`].
    pub fn evaluate(&self, query: &Query) -> (Vec<(TreeId, u32)>, FreqStats) {
        let mut stats = FreqStats::default();
        // Greedy cover per /-component using available keys.
        let mut lists: Vec<&Vec<TreeId>> = Vec::new();
        for root in component_roots(query) {
            let (tree, mapping) = component_tree(query, root);
            let mut covered = vec![false; mapping.len()];
            let subtrees = extract_subtrees(&tree, self.options.mss);
            for n in tree.nodes() {
                if covered[n.0 as usize] {
                    continue;
                }
                // Largest indexed subtree rooted at n.
                let best = subtrees
                    .iter()
                    .filter(|s| s.root() == n)
                    .filter(|s| self.lists.contains_key(&s.key))
                    .max_by_key(|s| s.size());
                let Some(best) = best else {
                    // Even the single node is unindexed: label unseen.
                    return (Vec::new(), stats);
                };
                stats.cover_keys += 1;
                if best.size() > 1 {
                    stats.multi_node_keys += 1;
                }
                for &m in &best.nodes {
                    covered[m.0 as usize] = true;
                }
                lists.push(&self.lists[&best.key]);
            }
        }
        // Intersect tid lists (TreePi's candidate pruning).
        let mut order: Vec<usize> = (0..lists.len()).collect();
        order.sort_by_key(|&i| lists[i].len());
        let mut candidates: Vec<TreeId> = lists[order[0]].clone();
        for &i in &order[1..] {
            candidates = intersect(&candidates, lists[i]);
            if candidates.is_empty() {
                return (Vec::new(), stats);
            }
        }
        stats.candidates = candidates.len();
        // Post-validation (always required: non-frequent structures are
        // not retained in the index).
        let mut matches = Vec::new();
        for tid in candidates {
            let tree = &self.trees[tid as usize];
            stats.validated_trees += 1;
            for root in Matcher::new(tree, query).roots() {
                matches.push((tid, root.0));
            }
        }
        matches.sort_unstable();
        matches.dedup();
        (matches, stats)
    }
}

fn component_roots(query: &Query) -> Vec<QNodeId> {
    query
        .nodes()
        .filter(|&n| query.parent(n).is_none() || query.axis(n) == Axis::Descendant)
        .collect()
}

/// Materializes the `/`-component rooted at `root` as a [`ParseTree`]
/// (so the SI's subtree enumeration can run on it), plus the mapping
/// from component-tree node ids to query nodes.
fn component_tree(query: &Query, root: QNodeId) -> (ParseTree, Vec<QNodeId>) {
    let mut b = TreeBuilder::new();
    let mut mapping = Vec::new();
    fn go(query: &Query, q: QNodeId, b: &mut TreeBuilder, mapping: &mut Vec<QNodeId>) {
        b.open(query.label(q));
        mapping.push(q);
        for c in query.children_via(q, Axis::Child) {
            go(query, c, b, mapping);
        }
        b.close();
    }
    go(query, root, &mut b, &mut mapping);
    (b.finish().expect("component is a tree"), mapping)
}

fn intersect(a: &[TreeId], b: &[TreeId]) -> Vec<TreeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::{ptb, LabelInterner};
    use si_query::parse_query;

    fn corpus(srcs: &[&str]) -> (Vec<ParseTree>, LabelInterner) {
        let mut li = LabelInterner::new();
        let trees = srcs
            .iter()
            .map(|s| ptb::parse(s, &mut li).unwrap())
            .collect();
        (trees, li)
    }

    #[test]
    fn all_single_nodes_always_indexed() {
        let (trees, _) = corpus(&["(S (NP (NN x)) (VP (VBZ y)))"]);
        let idx = FreqIndex::build(
            &trees,
            FreqIndexOptions {
                mss: 3,
                fraction: 0.0,
            },
        );
        // fraction 0 keeps ceil(0) = 0?  ceil(n*0) = 0 multi keys; but all
        // 7 single-node keys stay.
        assert!(idx.key_count() >= 7);
    }

    #[test]
    fn fraction_controls_key_count() {
        let corpus = si_corpus::GeneratorConfig::default()
            .with_seed(3)
            .generate(50);
        let small = FreqIndex::build(
            corpus.trees(),
            FreqIndexOptions {
                mss: 3,
                fraction: 0.001,
            },
        );
        let mid = FreqIndex::build(
            corpus.trees(),
            FreqIndexOptions {
                mss: 3,
                fraction: 0.01,
            },
        );
        let large = FreqIndex::build(
            corpus.trees(),
            FreqIndexOptions {
                mss: 3,
                fraction: 0.1,
            },
        );
        assert!(small.key_count() <= mid.key_count());
        assert!(mid.key_count() <= large.key_count());
        assert!(small.size_bytes() <= large.size_bytes());
    }

    #[test]
    fn agrees_with_matcher() {
        let corpus = si_corpus::GeneratorConfig::default()
            .with_seed(8)
            .generate(80);
        let mut li = corpus.interner().clone();
        for fraction in [0.001, 0.01, 0.1] {
            let idx = FreqIndex::build(corpus.trees(), FreqIndexOptions { mss: 3, fraction });
            for src in [
                "NP(DT)(NN)",
                "S(NP)(VP(VBZ))",
                "VP(//NN)",
                "PP(IN)(NP(NNS))",
            ] {
                let q = parse_query(src, &mut li).unwrap();
                let want: Vec<(TreeId, u32)> = corpus
                    .trees()
                    .iter()
                    .enumerate()
                    .flat_map(|(tid, t)| {
                        Matcher::new(t, &q)
                            .roots()
                            .into_iter()
                            .map(move |r| (tid as TreeId, r.0))
                    })
                    .collect();
                let (got, stats) = idx.evaluate(&q);
                assert_eq!(got, want, "{src} at fraction {fraction}");
                assert!(stats.cover_keys >= 1);
            }
        }
    }

    #[test]
    fn higher_fraction_prunes_better() {
        let corpus = si_corpus::GeneratorConfig::default()
            .with_seed(13)
            .generate(150);
        let mut li = corpus.interner().clone();
        let q = parse_query("S(NP(DT)(NN))(VP(VBZ)(NP))", &mut li).unwrap();
        let lo = FreqIndex::build(
            corpus.trees(),
            FreqIndexOptions {
                mss: 3,
                fraction: 0.001,
            },
        );
        let hi = FreqIndex::build(
            corpus.trees(),
            FreqIndexOptions {
                mss: 3,
                fraction: 0.5,
            },
        );
        let (m1, s1) = lo.evaluate(&q);
        let (m2, s2) = hi.evaluate(&q);
        assert_eq!(m1, m2);
        // More multi-node keys available => cover uses bigger keys and
        // candidate sets cannot grow.
        assert!(s2.multi_node_keys >= s1.multi_node_keys);
        assert!(s2.candidates <= s1.candidates);
    }

    #[test]
    fn unknown_label_short_circuits() {
        let (trees, mut li) = corpus(&["(S (NP (NN x)))"]);
        let idx = FreqIndex::build(
            &trees,
            FreqIndexOptions {
                mss: 2,
                fraction: 1.0,
            },
        );
        let q = parse_query("QQQ", &mut li).unwrap();
        let (m, stats) = idx.evaluate(&q);
        assert!(m.is_empty());
        assert_eq!(stats.validated_trees, 0);
    }
}
