//! ATreeGrep reimplementation (Shasha, Wang, Shan & Zhang, SSDBM 2002).
//!
//! Architecture per the original paper and §2 of Chubak & Rafiei:
//!
//! 1. every **root-to-leaf label path** of every data tree goes into one
//!    sequence over which a **suffix array** is built;
//! 2. a **hash index over nodes and edges** prefilters candidate trees;
//! 3. a query is decomposed into its root-to-leaf paths, each searched in
//!    the suffix array (contiguous `/`-runs; `//` splits a path into
//!    independently-searched segments);
//! 4. candidate trees (the intersection of all per-path candidate sets)
//!    are **post-validated** with the exact matcher.
//!
//! The post-validation step is what the Subtree Index's root-split coding
//! eliminates; Table 2 measures the resulting ≥10× gap.

use std::collections::HashMap;

use si_parsetree::{NodeId, ParseTree, TreeId};
use si_query::{matcher::Matcher, Axis, QNodeId, Query};

/// Evaluation statistics of one ATreeGrep query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtgStats {
    /// Query paths (or `//`-split segments) searched.
    pub segments: usize,
    /// Candidate trees surviving the prefilter + suffix-array phase.
    pub candidates: usize,
    /// Trees post-validated.
    pub validated_trees: usize,
}

/// The in-memory ATreeGrep index over a borrowed corpus (the original
/// system is memory-resident, like TGrep2).
pub struct ATreeGrep<'a> {
    trees: &'a [ParseTree],
    /// Concatenated root-to-leaf label paths, `u32::MAX`-separated.
    seq: Vec<u32>,
    /// Tree id owning each sequence position (separators inherit the
    /// preceding path's tid; never matched anyway).
    pos_tid: Vec<TreeId>,
    /// Suffix array over `seq`.
    sa: Vec<u32>,
    /// Node-label prefilter: label id -> sorted tids.
    node_index: HashMap<u32, Vec<TreeId>>,
    /// Edge prefilter: (parent label, child label) -> sorted tids.
    edge_index: HashMap<(u32, u32), Vec<TreeId>>,
}

const SEP: u32 = u32::MAX;

impl<'a> ATreeGrep<'a> {
    /// Builds the index over `trees`.
    pub fn build(trees: &'a [ParseTree]) -> Self {
        let mut seq = Vec::new();
        let mut pos_tid = Vec::new();
        let mut node_index: HashMap<u32, Vec<TreeId>> = HashMap::new();
        let mut edge_index: HashMap<(u32, u32), Vec<TreeId>> = HashMap::new();
        for (tid, tree) in trees.iter().enumerate() {
            let tid = tid as TreeId;
            for n in tree.nodes() {
                push_dedup(node_index.entry(tree.label(n).id()).or_default(), tid);
                for c in tree.children(n) {
                    push_dedup(
                        edge_index
                            .entry((tree.label(n).id(), tree.label(c).id()))
                            .or_default(),
                        tid,
                    );
                }
            }
            // Root-to-leaf paths via DFS.
            let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
            let mut path: Vec<u32> = Vec::new();
            while let Some((n, depth)) = stack.pop() {
                path.truncate(depth);
                path.push(tree.label(n).id());
                if tree.is_leaf(n) {
                    for &l in &path {
                        seq.push(l);
                        pos_tid.push(tid);
                    }
                    seq.push(SEP);
                    pos_tid.push(tid);
                } else {
                    for c in tree.children(n) {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        let sa = suffix_array(&seq);
        Self {
            trees,
            seq,
            pos_tid,
            sa,
            node_index,
            edge_index,
        }
    }

    /// Total in-memory footprint estimate in bytes (sequence + suffix
    /// array + prefilter postings).
    pub fn size_bytes(&self) -> usize {
        self.seq.len() * 4
            + self.sa.len() * 4
            + self.pos_tid.len() * 4
            + self
                .node_index
                .values()
                .chain(self.edge_index.values())
                .map(|v| v.len() * 4)
                .sum::<usize>()
    }

    /// Evaluates `query`, returning distinct `(tid, pre)` match roots —
    /// the same semantics as [`si_core::SubtreeIndex::evaluate`].
    pub fn evaluate(&self, query: &Query) -> (Vec<(TreeId, u32)>, AtgStats) {
        let mut stats = AtgStats::default();

        // Phase 1: hash prefilter on labels and `/`-edges.
        let mut filters: Vec<&[TreeId]> = Vec::new();
        for q in query.nodes() {
            match self.node_index.get(&query.label(q).id()) {
                Some(list) => filters.push(list),
                None => return (Vec::new(), stats),
            }
            if let Some(p) = query.parent(q) {
                if query.axis(q) == Axis::Child {
                    match self
                        .edge_index
                        .get(&(query.label(p).id(), query.label(q).id()))
                    {
                        Some(list) => filters.push(list),
                        None => return (Vec::new(), stats),
                    }
                }
            }
        }

        // Phase 2: suffix-array search per query path segment.
        let segments = self.query_segments(query);
        let mut segment_tids: Vec<Vec<TreeId>> = Vec::new();
        for seg in &segments {
            stats.segments += 1;
            let mut tids = self.search(seg);
            tids.sort_unstable();
            tids.dedup();
            if tids.is_empty() {
                return (Vec::new(), stats);
            }
            segment_tids.push(tids);
        }

        // Intersect everything.
        let mut candidates: Option<Vec<TreeId>> = None;
        let consider = |list: &[TreeId], acc: &mut Option<Vec<TreeId>>| {
            *acc = Some(match acc.take() {
                None => list.to_vec(),
                Some(cur) => intersect(&cur, list),
            });
        };
        for f in filters {
            consider(f, &mut candidates);
        }
        for s in &segment_tids {
            consider(s, &mut candidates);
        }
        let candidates = candidates.unwrap_or_default();
        stats.candidates = candidates.len();

        // Phase 3: post-validation.
        let mut matches = Vec::new();
        for tid in candidates {
            let tree = &self.trees[tid as usize];
            stats.validated_trees += 1;
            for root in Matcher::new(tree, query).roots() {
                matches.push((tid, root.0));
            }
        }
        matches.sort_unstable();
        matches.dedup();
        (matches, stats)
    }

    /// Splits the query into maximal `/`-run label sequences along every
    /// root-to-leaf query path (a `//` edge starts a new segment).
    fn query_segments(&self, query: &Query) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        // DFS from the root, carrying the current /-segment.
        fn go(query: &Query, q: QNodeId, mut segment: Vec<u32>, out: &mut Vec<Vec<u32>>) {
            segment.push(query.label(q).id());
            let mut is_leaf = true;
            for c in query.children(q) {
                is_leaf = false;
                if query.axis(c) == Axis::Child {
                    go(query, c, segment.clone(), out);
                } else {
                    out.push(segment.clone());
                    go(query, c, Vec::new(), out);
                }
            }
            if is_leaf {
                out.push(segment);
            }
        }
        go(query, query.root(), Vec::new(), &mut out);
        out.retain(|s| !s.is_empty());
        out
    }

    /// All tids whose path sequence contains `pattern` contiguously.
    fn search(&self, pattern: &[u32]) -> Vec<TreeId> {
        if pattern.is_empty() {
            return Vec::new();
        }
        // Binary search the suffix array for the pattern range.
        let lo = self.sa.partition_point(|&p| {
            let suffix = &self.seq[p as usize..];
            let cmp_len = suffix.len().min(pattern.len());
            suffix[..cmp_len] < pattern[..cmp_len]
                || (suffix[..cmp_len] == pattern[..cmp_len] && suffix.len() < pattern.len())
        });
        let hi = self.sa[lo..].partition_point(|&p| {
            let suffix = &self.seq[p as usize..];
            let cmp_len = suffix.len().min(pattern.len());
            suffix.len() >= pattern.len() && suffix[..cmp_len] == pattern[..cmp_len]
        }) + lo;
        self.sa[lo..hi]
            .iter()
            .map(|&p| self.pos_tid[p as usize])
            .collect()
    }
}

fn push_dedup(list: &mut Vec<TreeId>, tid: TreeId) {
    if list.last() != Some(&tid) {
        list.push(tid);
    }
}

fn intersect(a: &[TreeId], b: &[TreeId]) -> Vec<TreeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Prefix-doubling suffix array construction, O(n log² n).
fn suffix_array(seq: &[u32]) -> Vec<u32> {
    let n = seq.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    // Initial ranks from the raw symbols.
    let mut rank: Vec<u64> = seq.iter().map(|&s| u64::from(s)).collect();
    let mut tmp = vec![0u64; n];
    let mut k = 1;
    while k < n {
        let key = |i: u32| -> (u64, u64) {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] + 1 } else { 0 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + u64::from(key(prev) != key(cur));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_parsetree::{ptb, LabelInterner};
    use si_query::parse_query;

    #[test]
    fn suffix_array_is_sorted() {
        let seq = vec![2u32, 1, 2, 1, 1, 3, SEP, 2, 1];
        let sa = suffix_array(&seq);
        assert_eq!(sa.len(), seq.len());
        for w in sa.windows(2) {
            assert!(seq[w[0] as usize..] < seq[w[1] as usize..]);
        }
    }

    #[test]
    fn suffix_array_of_repetitive_input() {
        let seq = vec![1u32; 50];
        let sa = suffix_array(&seq);
        // Shorter suffixes of an all-equal string sort first.
        let want: Vec<u32> = (0..50u32).rev().collect();
        assert_eq!(sa, want);
    }

    fn corpus(srcs: &[&str]) -> (Vec<ParseTree>, LabelInterner) {
        let mut li = LabelInterner::new();
        let trees = srcs
            .iter()
            .map(|s| ptb::parse(s, &mut li).unwrap())
            .collect();
        (trees, li)
    }

    #[test]
    fn matches_simple_queries() {
        let (trees, mut li) = corpus(&[
            "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))",
            "(S (NP (NN cat)) (VP (VBD sat)))",
            "(S (VP (VBZ runs)))",
        ]);
        let atg = ATreeGrep::build(&trees);
        let q = parse_query("S(NP(NN))", &mut li).unwrap();
        let (m, stats) = atg.evaluate(&q);
        assert_eq!(m, vec![(0, 0), (1, 0)]);
        assert!(stats.validated_trees <= 2);
        let q = parse_query("VP(VBZ)", &mut li).unwrap();
        let (m, _) = atg.evaluate(&q);
        assert_eq!(m.len(), 2);
        let q = parse_query("ZZZ", &mut li).unwrap();
        assert!(atg.evaluate(&q).0.is_empty());
    }

    #[test]
    fn descendant_axis_queries() {
        let (trees, mut li) = corpus(&[
            "(S (NP (NP (NN deep))))",
            "(S (NN shallow))",
            "(VP (VBZ x))",
        ]);
        let atg = ATreeGrep::build(&trees);
        let q = parse_query("S(//NN)", &mut li).unwrap();
        let (m, _) = atg.evaluate(&q);
        assert_eq!(m, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn branching_queries_require_validation() {
        // Path decomposition alone cannot distinguish one NN child from
        // two; post-validation must.
        let (trees, mut li) = corpus(&["(NP (NN a))", "(NP (NN a) (NN b))"]);
        let atg = ATreeGrep::build(&trees);
        let q = parse_query("NP(NN)(NN)", &mut li).unwrap();
        let (m, stats) = atg.evaluate(&q);
        assert_eq!(m, vec![(1, 0)]);
        // Both trees are candidates (same paths), only one survives.
        assert_eq!(stats.candidates, 2);
    }

    #[test]
    fn agrees_with_matcher_on_generated_corpus() {
        let corpus = si_corpus::GeneratorConfig::default()
            .with_seed(51)
            .generate(80);
        let mut li = corpus.interner().clone();
        let atg = ATreeGrep::build(corpus.trees());
        for src in [
            "NP(DT)(NN)",
            "S(NP)(VP(VBZ))",
            "VP(//NN)",
            "PP(IN)(NP)",
            "S(NP(PRP))(VP)",
        ] {
            let q = parse_query(src, &mut li).unwrap();
            let want: Vec<(TreeId, u32)> = corpus
                .trees()
                .iter()
                .enumerate()
                .flat_map(|(tid, t)| {
                    Matcher::new(t, &q)
                        .roots()
                        .into_iter()
                        .map(move |r| (tid as TreeId, r.0))
                })
                .collect();
            let (got, _) = atg.evaluate(&q);
            assert_eq!(got, want, "{src}");
        }
    }

    #[test]
    fn size_accounting_is_nonzero() {
        let (trees, _) = corpus(&["(S (NP (NN x)))"]);
        let atg = ATreeGrep::build(&trees);
        assert!(atg.size_bytes() > 0);
    }
}
