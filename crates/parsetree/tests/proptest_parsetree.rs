//! Property tests for the tree substrate: interval-numbering invariants,
//! binary-codec and PTB round-trips on arbitrary trees.
//!
//! Requires the external `proptest` crate; compiled out by default
//! because this build environment is offline (enable the `proptest`
//! feature after adding the dependency to run them).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use si_parsetree::{codec, ptb, Label, LabelInterner, ParseTree, TreeBuilder};

/// A recursive tree shape: label index plus children.
#[derive(Debug, Clone)]
struct Shape {
    label: u8,
    children: Vec<Shape>,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = (0u8..8).prop_map(|label| Shape {
        label,
        children: Vec::new(),
    });
    leaf.prop_recursive(5, 40, 4, |inner| {
        ((0u8..8), prop::collection::vec(inner, 0..4))
            .prop_map(|(label, children)| Shape { label, children })
    })
}

fn build(shape: &Shape, interner: &mut LabelInterner) -> ParseTree {
    fn go(shape: &Shape, b: &mut TreeBuilder, interner: &mut LabelInterner) {
        b.open(interner.intern(&format!("L{}", shape.label)));
        for c in &shape.children {
            go(c, b, interner);
        }
        b.close();
    }
    let mut b = TreeBuilder::new();
    go(shape, &mut b, interner);
    b.finish().expect("balanced")
}

proptest! {
    #[test]
    fn trees_validate(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let tree = build(&shape, &mut li);
        prop_assert_eq!(tree.validate(), Ok(()));
    }

    #[test]
    fn interval_numbering_characterizes_ancestry(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let tree = build(&shape, &mut li);
        // For every pair: is_ancestor iff walking parents reaches it.
        for a in tree.nodes() {
            for b in tree.nodes() {
                let mut walk = tree.parent(b);
                let mut reachable = false;
                while let Some(p) = walk {
                    if p == a {
                        reachable = true;
                        break;
                    }
                    walk = tree.parent(p);
                }
                prop_assert_eq!(tree.is_ancestor(a, b), reachable,
                    "nodes {} {}", a.0, b.0);
            }
        }
    }

    #[test]
    fn subtree_size_equals_descendant_count(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let tree = build(&shape, &mut li);
        for n in tree.nodes() {
            prop_assert_eq!(tree.subtree_size(n) as usize, tree.descendants(n).count());
        }
    }

    #[test]
    fn codec_round_trips(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let tree = build(&shape, &mut li);
        let mut buf = Vec::new();
        codec::encode_tree(&tree, &mut buf);
        prop_assert_eq!(buf.len(), codec::encoded_len(&tree));
        let (back, used) = codec::decode_tree(&buf).expect("decodes");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, tree);
    }

    #[test]
    fn ptb_round_trips(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let tree = build(&shape, &mut li);
        let text = ptb::write(&tree, &li);
        let mut li2 = LabelInterner::new();
        let back = ptb::parse(&text, &mut li2).expect("reparses");
        // Structure is identical; labels resolve to the same strings.
        prop_assert_eq!(back.len(), tree.len());
        for n in tree.nodes() {
            prop_assert_eq!(li.resolve(tree.label(n)), li2.resolve(back.label(n)));
            prop_assert_eq!(tree.parent(n), back.parent(n));
        }
    }

    #[test]
    fn codec_rejects_truncation(shape in shape_strategy()) {
        let mut li = LabelInterner::new();
        let tree = build(&shape, &mut li);
        let mut buf = Vec::new();
        codec::encode_tree(&tree, &mut buf);
        // Any strict prefix fails to decode fully.
        if buf.len() > 1 {
            let cut = buf.len() / 2;
            let r = codec::decode_tree(&buf[..cut]);
            prop_assert!(r.is_none() || r.unwrap().1 <= cut);
        }
    }

    #[test]
    fn label_interner_is_stable(names in prop::collection::vec("[a-zA-Z0-9]{1,8}", 1..50)) {
        let mut li = LabelInterner::new();
        let labels: Vec<Label> = names.iter().map(|n| li.intern(n)).collect();
        for (name, label) in names.iter().zip(&labels) {
            prop_assert_eq!(li.resolve(*label), name.as_str());
            prop_assert_eq!(li.intern(name), *label);
        }
        let mut buf = Vec::new();
        li.encode(&mut buf);
        let (back, _) = LabelInterner::decode(&buf).expect("decodes");
        prop_assert_eq!(back.len(), li.len());
    }
}
