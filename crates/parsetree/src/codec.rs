//! Compact binary tree codec.
//!
//! The paper's experimental setup "flattened and sequentially stored parse
//! trees in a separate file, which we call the data file" (§6.1). This
//! module defines that flattening: a tree is a varint node count followed
//! by pre-order `(label, subtree-size)` varint pairs, exactly the encoding
//! §4.2 uses for index keys (there with fixed-width fields). Structure is
//! fully recoverable from subtree sizes.

use crate::label::Label;
use crate::tree::{ParseTree, TreeBuilder};
use crate::varint;

/// Appends the flattened form of `tree` to `out`.
pub fn encode_tree(tree: &ParseTree, out: &mut Vec<u8>) {
    varint::write_u64(out, tree.len() as u64);
    for n in tree.nodes() {
        varint::write_u32(out, tree.label(n).id());
        varint::write_u32(out, tree.subtree_size(n));
    }
}

/// Decodes one tree from the front of `buf`, returning it and the number
/// of bytes consumed. Returns `None` on truncated or malformed input.
pub fn decode_tree(buf: &[u8]) -> Option<(ParseTree, usize)> {
    let mut r = varint::Reader::new(buf);
    let count = r.u64()? as usize;
    if count == 0 {
        return None;
    }
    let mut builder = TreeBuilder::new();
    // Stack of "nodes still missing under this open node".
    let mut remaining: Vec<u32> = Vec::new();
    for _ in 0..count {
        let label = Label(r.u32()?);
        let size = r.u32()?;
        if size == 0 {
            return None;
        }
        if let Some(top) = remaining.last_mut() {
            if *top < size {
                return None; // child claims more nodes than the parent has left
            }
            *top -= size;
        }
        builder.open(label);
        remaining.push(size - 1);
        while let Some(&0) = remaining.last() {
            remaining.pop();
            builder.close();
        }
    }
    if !remaining.is_empty() {
        return None;
    }
    let pos = r.position();
    builder.finish().map(|t| (t, pos))
}

/// Size in bytes that [`encode_tree`] will produce for `tree`.
pub fn encoded_len(tree: &ParseTree) -> usize {
    let mut n = varint::len_u64(tree.len() as u64);
    for node in tree.nodes() {
        n += varint::len_u64(u64::from(tree.label(node).id()));
        n += varint::len_u64(u64::from(tree.subtree_size(node)));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;
    use crate::ptb;

    fn round_trip(src: &str) {
        let mut li = LabelInterner::new();
        let tree = ptb::parse(src, &mut li).unwrap();
        let mut buf = Vec::new();
        encode_tree(&tree, &mut buf);
        assert_eq!(buf.len(), encoded_len(&tree));
        let (back, used) = decode_tree(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, tree);
    }

    #[test]
    fn round_trips() {
        round_trip("(NN)");
        round_trip("(S (NP (DT the) (NN dog)) (VP (VBZ barks)))");
        round_trip("(A (B (C (D (E)))))"); // unary chain
        round_trip("(A B C D E F G H I J)"); // flat fan-out
    }

    #[test]
    fn two_trees_back_to_back() {
        let mut li = LabelInterner::new();
        let t1 = ptb::parse("(S (NP dog))", &mut li).unwrap();
        let t2 = ptb::parse("(S (VP runs) (NP fast))", &mut li).unwrap();
        let mut buf = Vec::new();
        encode_tree(&t1, &mut buf);
        let split = buf.len();
        encode_tree(&t2, &mut buf);
        let (a, used1) = decode_tree(&buf).unwrap();
        assert_eq!(used1, split);
        let (b, used2) = decode_tree(&buf[split..]).unwrap();
        assert_eq!(split + used2, buf.len());
        assert_eq!(a, t1);
        assert_eq!(b, t2);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode_tree(&[]).is_none());
        assert!(decode_tree(&[0]).is_none()); // zero-node tree
                                              // Claims 2 nodes but only provides one.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2);
        varint::write_u32(&mut buf, 0);
        varint::write_u32(&mut buf, 2);
        assert!(decode_tree(&buf).is_none());
        // Child larger than parent's remaining budget.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 2);
        varint::write_u32(&mut buf, 0);
        varint::write_u32(&mut buf, 2);
        varint::write_u32(&mut buf, 1);
        varint::write_u32(&mut buf, 5);
        assert!(decode_tree(&buf).is_none());
        // Node of size zero.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 1);
        varint::write_u32(&mut buf, 0);
        varint::write_u32(&mut buf, 0);
        assert!(decode_tree(&buf).is_none());
    }
}
