//! Parse-tree data model for the Subtree Index.
//!
//! This crate is the bottom substrate of the workspace: it defines
//! syntactically annotated trees (Definition 1 of the paper), label
//! interning, the `(pre, post, level)` interval numbering used by all
//! coding schemes, a Penn-Treebank bracketed-format reader/writer, and a
//! compact binary codec used by the on-disk data file.
//!
//! Nodes of a [`ParseTree`] are stored in pre-order, so a [`NodeId`] *is*
//! the node's pre number. The `post` rank and `level` are materialized at
//! construction time.
//!
//! # Example
//!
//! ```
//! use si_parsetree::{LabelInterner, ptb};
//!
//! let mut interner = LabelInterner::new();
//! let tree = ptb::parse("(S (NP (NNS agouti)) (VP (VBZ is) (NP (DT a) (NN))))", &mut interner)
//!     .unwrap();
//! assert_eq!(tree.len(), 11);
//! assert_eq!(interner.resolve(tree.label(tree.root())), "S");
//! ```

pub mod codec;
pub mod label;
pub mod ptb;
pub mod tree;
pub mod varint;

pub use label::{Label, LabelInterner};
pub use tree::{NodeId, ParseTree, TreeBuilder};

/// Identifier of a tree within a corpus (the paper's `tid`).
pub type TreeId = u32;
