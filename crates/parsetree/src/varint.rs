//! LEB128 variable-length integer encoding.
//!
//! Used throughout the on-disk formats: posting lists, the data file and
//! the B+Tree all store small integers (label ids, deltas of tree ids,
//! pre/post ranks) whose common values fit in one or two bytes.

/// Appends `v` to `out` in unsigned LEB128.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 integer from the front of `buf`.
///
/// Returns the value and the number of bytes consumed, or `None` if the
/// buffer is truncated or the encoding exceeds 10 bytes.
#[inline]
pub fn read_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= 10 {
            return None;
        }
        v |= u64::from(byte & 0x7f)
            .checked_shl(shift)
            .unwrap_or(u64::from(byte & 0x7f) << (shift % 64));
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Appends `v` as a u32 varint.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    write_u64(out, u64::from(v));
}

/// Reads a u32 varint; fails if the decoded value overflows u32.
#[inline]
pub fn read_u32(buf: &[u8]) -> Option<(u32, usize)> {
    let (v, used) = read_u64(buf)?;
    u32::try_from(v).ok().map(|v| (v, used))
}

/// Number of bytes [`write_u64`] will emit for `v`.
#[inline]
pub fn len_u64(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// A cursor for sequentially decoding varints out of a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Decodes the next u64 varint.
    pub fn u64(&mut self) -> Option<u64> {
        let (v, used) = read_u64(&self.buf[self.pos..])?;
        self.pos += used;
        Some(v)
    }

    /// Decodes the next u32 varint.
    pub fn u32(&mut self) -> Option<u32> {
        let (v, used) = read_u32(&self.buf[self.pos..])?;
        self.pos += used;
        Some(v)
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), len_u64(v), "len for {v}");
            let (back, used) = read_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn read_truncated_fails() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn u32_overflow_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(read_u32(&buf).is_none());
    }

    #[test]
    fn reader_sequential_decoding() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 7);
        write_u64(&mut buf, 300);
        buf.extend_from_slice(b"abc");
        write_u64(&mut buf, 0);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64(), Some(7));
        assert_eq!(r.u32(), Some(300));
        assert_eq!(r.bytes(3), Some(&b"abc"[..]));
        assert_eq!(r.u64(), Some(0));
        assert!(r.is_empty());
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn dense_range_round_trips() {
        let mut buf = Vec::new();
        for v in 0..5000u64 {
            buf.clear();
            write_u64(&mut buf, v);
            assert_eq!(read_u64(&buf).unwrap(), (v, buf.len()));
        }
    }
}
