//! Arena-based syntactically annotated trees with interval numbering.
//!
//! A [`ParseTree`] stores its nodes in pre-order, so the [`NodeId`] of a
//! node equals its `pre` rank. The `post` rank and `level` (root = 0) are
//! materialized at construction; together they provide the classic interval
//! containment test (`u` is an ancestor of `v` iff `pre(u) < pre(v)` and
//! `post(v) < post(u)`) that every coding scheme of the paper relies on.

use crate::label::Label;

const NONE: u32 = u32::MAX;

/// Identifier of a node inside one [`ParseTree`]; equals the node's
/// pre-order rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's pre-order rank (the paper's `pre` number).
    #[inline]
    pub fn pre(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable syntactically annotated tree (Definition 1).
///
/// Construction goes through [`TreeBuilder`] (push-style) or
/// [`crate::ptb::parse`] (bracketed text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTree {
    labels: Vec<Label>,
    parent: Vec<u32>,
    /// Size (node count) of the subtree rooted at each node.
    size: Vec<u32>,
    post: Vec<u32>,
    level: Vec<u16>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
}

impl ParseTree {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// A tree always has at least a root; this is false by construction but
    /// kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The root node (`r(T)`).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The node's label.
    #[inline]
    pub fn label(&self, n: NodeId) -> Label {
        self.labels[n.index()]
    }

    /// The node's parent, or `None` for the root.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parent[n.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// Pre-order rank (identical to the id).
    #[inline]
    pub fn pre(&self, n: NodeId) -> u32 {
        n.0
    }

    /// Post-order rank.
    #[inline]
    pub fn post(&self, n: NodeId) -> u32 {
        self.post[n.index()]
    }

    /// Depth of the node; the root has level 0.
    #[inline]
    pub fn level(&self, n: NodeId) -> u16 {
        self.level[n.index()]
    }

    /// Number of nodes in the subtree rooted at `n` (including `n`).
    #[inline]
    pub fn subtree_size(&self, n: NodeId) -> u32 {
        self.size[n.index()]
    }

    /// Whether `n` has no children.
    #[inline]
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.first_child[n.index()] == NONE
    }

    /// Number of children (the node's branching factor).
    pub fn branching(&self, n: NodeId) -> usize {
        self.children(n).count()
    }

    /// Iterates the children of `n` in document order.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children {
            tree: self,
            next: self.first_child[n.index()],
        }
    }

    /// Iterates all nodes in pre-order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Iterates the subtree rooted at `n` (including `n`) in pre-order.
    ///
    /// Because nodes are stored in pre-order, a subtree is the contiguous id
    /// range `[n, n + size(n))`.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let start = n.0;
        let end = n.0 + self.size[n.index()];
        (start..end).map(NodeId)
    }

    /// Interval containment: is `anc` a proper ancestor of `desc`?
    #[inline]
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.pre(anc) < self.pre(desc) && self.post(desc) < self.post(anc)
    }

    /// Checks internal consistency; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if n == 0 {
            return Err("empty tree".into());
        }
        if self.parent[0] != NONE {
            return Err("root has a parent".into());
        }
        let mut seen_post = vec![false; n];
        for id in self.nodes() {
            let i = id.index();
            if i > 0 {
                let p = self.parent[i];
                if p == NONE || p as usize >= n || p >= id.0 {
                    return Err(format!("node {i} has bad parent {p}"));
                }
                if self.level[i] != self.level[p as usize] + 1 {
                    return Err(format!("node {i} level mismatch"));
                }
            }
            let post = self.post[i] as usize;
            if post >= n || seen_post[post] {
                return Err(format!("node {i} bad post {post}"));
            }
            seen_post[post] = true;
            let child_sum: u32 = self.children(id).map(|c| self.size[c.index()]).sum();
            if self.size[i] != child_sum + 1 {
                return Err(format!("node {i} size mismatch"));
            }
            for c in self.children(id) {
                if self.parent[c.index()] != id.0 {
                    return Err(format!("child {} of {i} disagrees on parent", c.0));
                }
                if !self.is_ancestor(id, c) {
                    return Err(format!("containment fails for {i} -> {}", c.0));
                }
            }
        }
        Ok(())
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    tree: &'a ParseTree,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.tree.next_sibling[id.index()];
        Some(id)
    }
}

/// Push-style constructor for [`ParseTree`].
///
/// Call [`TreeBuilder::open`] when entering a node and
/// [`TreeBuilder::close`] when leaving it; nodes are laid out in pre-order
/// automatically.
///
/// ```
/// use si_parsetree::{LabelInterner, TreeBuilder};
/// let mut li = LabelInterner::new();
/// let mut b = TreeBuilder::new();
/// b.open(li.intern("S"));
/// b.open(li.intern("NP"));
/// b.close();
/// b.close();
/// let tree = b.finish().unwrap();
/// assert_eq!(tree.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    labels: Vec<Label>,
    parent: Vec<u32>,
    size: Vec<u32>,
    post: Vec<u32>,
    level: Vec<u16>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    last_child: Vec<u32>,
    stack: Vec<u32>,
    post_counter: u32,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new node labelled `label` under the currently open node.
    ///
    /// The first `open` creates the root. Returns the id the node will have
    /// in the finished tree.
    pub fn open(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as u32;
        let parent = self.stack.last().copied().unwrap_or(NONE);
        assert!(
            !(parent == NONE && id != 0),
            "a ParseTree has exactly one root"
        );
        self.labels.push(label);
        self.parent.push(parent);
        self.size.push(1);
        self.post.push(0);
        let level = if parent == NONE {
            0
        } else {
            self.level[parent as usize] + 1
        };
        self.level.push(level);
        self.first_child.push(NONE);
        self.next_sibling.push(NONE);
        self.last_child.push(NONE);
        if parent != NONE {
            let p = parent as usize;
            if self.first_child[p] == NONE {
                self.first_child[p] = id;
            } else {
                self.next_sibling[self.last_child[p] as usize] = id;
            }
            self.last_child[p] = id;
        }
        self.stack.push(id);
        NodeId(id)
    }

    /// Closes the most recently opened node.
    ///
    /// # Panics
    /// Panics if no node is open.
    pub fn close(&mut self) {
        let id = self.stack.pop().expect("close without open") as usize;
        self.post[id] = self.post_counter;
        self.post_counter += 1;
        if let Some(&p) = self.stack.last() {
            self.size[p as usize] += self.size[id];
        }
    }

    /// Convenience: `open` immediately followed by `close`.
    pub fn leaf(&mut self, label: Label) -> NodeId {
        let id = self.open(label);
        self.close();
        id
    }

    /// Finishes construction.
    ///
    /// Returns `None` if no node was ever opened or some node is still open.
    pub fn finish(self) -> Option<ParseTree> {
        if self.labels.is_empty() || !self.stack.is_empty() {
            return None;
        }
        let tree = ParseTree {
            labels: self.labels,
            parent: self.parent,
            size: self.size,
            post: self.post,
            level: self.level,
            first_child: self.first_child,
            next_sibling: self.next_sibling,
        };
        debug_assert_eq!(tree.validate(), Ok(()));
        Some(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelInterner;

    fn sample() -> (ParseTree, LabelInterner) {
        // S(NP(DT NN) VP(VBZ NP(NN)))
        let mut li = LabelInterner::new();
        let mut b = TreeBuilder::new();
        b.open(li.intern("S"));
        b.open(li.intern("NP"));
        b.leaf(li.intern("DT"));
        b.leaf(li.intern("NN"));
        b.close();
        b.open(li.intern("VP"));
        b.leaf(li.intern("VBZ"));
        b.open(li.intern("NP"));
        b.leaf(li.intern("NN"));
        b.close();
        b.close();
        b.close();
        (b.finish().unwrap(), li)
    }

    #[test]
    fn builder_assigns_preorder_ids() {
        let (t, li) = sample();
        assert_eq!(t.len(), 8);
        let labels: Vec<_> = t
            .nodes()
            .map(|n| li.resolve(t.label(n)).to_owned())
            .collect();
        assert_eq!(labels, ["S", "NP", "DT", "NN", "VP", "VBZ", "NP", "NN"]);
    }

    #[test]
    fn levels_and_sizes() {
        let (t, _) = sample();
        assert_eq!(t.level(t.root()), 0);
        assert_eq!(t.subtree_size(t.root()), 8);
        assert_eq!(t.level(NodeId(2)), 2); // DT
        assert_eq!(t.subtree_size(NodeId(4)), 4); // VP
    }

    #[test]
    fn post_order_ranks() {
        let (t, _) = sample();
        // post-order: DT NN NP VBZ NN NP VP S
        let expected = [7u32, 2, 0, 1, 6, 3, 5, 4];
        for n in t.nodes() {
            assert_eq!(t.post(n), expected[n.index()], "node {}", n.0);
        }
    }

    #[test]
    fn children_in_document_order() {
        let (t, _) = sample();
        let kids: Vec<_> = t.children(t.root()).map(|c| c.0).collect();
        assert_eq!(kids, [1, 4]);
        assert_eq!(t.branching(t.root()), 2);
        assert!(t.is_leaf(NodeId(2)));
    }

    #[test]
    fn ancestor_containment() {
        let (t, _) = sample();
        assert!(t.is_ancestor(NodeId(0), NodeId(7)));
        assert!(t.is_ancestor(NodeId(4), NodeId(6)));
        assert!(!t.is_ancestor(NodeId(1), NodeId(6)));
        assert!(!t.is_ancestor(NodeId(3), NodeId(3)));
    }

    #[test]
    fn descendants_are_contiguous() {
        let (t, _) = sample();
        let d: Vec<_> = t.descendants(NodeId(4)).map(|n| n.0).collect();
        assert_eq!(d, [4, 5, 6, 7]);
    }

    #[test]
    fn single_node_tree() {
        let mut li = LabelInterner::new();
        let mut b = TreeBuilder::new();
        b.leaf(li.intern("NN"));
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.subtree_size(t.root()), 1);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn unbalanced_builder_fails() {
        let mut li = LabelInterner::new();
        let mut b = TreeBuilder::new();
        b.open(li.intern("S"));
        assert!(b.finish().is_none());
        assert!(TreeBuilder::new().finish().is_none());
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn second_root_panics() {
        let mut li = LabelInterner::new();
        let mut b = TreeBuilder::new();
        b.leaf(li.intern("S"));
        b.leaf(li.intern("S"));
    }

    #[test]
    fn validate_accepts_sample() {
        let (t, _) = sample();
        assert_eq!(t.validate(), Ok(()));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::label::LabelInterner;

    #[test]
    fn branching_and_leaf_queries() {
        let mut li = LabelInterner::new();
        let mut b = TreeBuilder::new();
        b.open(li.intern("A"));
        for _ in 0..5 {
            b.leaf(li.intern("B"));
        }
        b.close();
        let t = b.finish().unwrap();
        assert_eq!(t.branching(t.root()), 5);
        assert!(!t.is_leaf(t.root()));
        assert!(t.children(t.root()).all(|c| t.is_leaf(c)));
        assert_eq!(t.descendants(t.root()).count(), 6);
    }

    #[test]
    fn deep_chain_levels() {
        let mut li = LabelInterner::new();
        let mut b = TreeBuilder::new();
        let depth = 50u16;
        for _ in 0..depth {
            b.open(li.intern("X"));
        }
        for _ in 0..depth {
            b.close();
        }
        let t = b.finish().unwrap();
        assert_eq!(t.len(), depth as usize);
        assert_eq!(t.level(NodeId(depth as u32 - 1)), depth - 1);
        assert!(t.is_ancestor(NodeId(0), NodeId(depth as u32 - 1)));
        assert_eq!(t.validate(), Ok(()));
    }
}
