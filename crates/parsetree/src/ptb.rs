//! Penn-Treebank bracketed format I/O.
//!
//! The paper's corpora (AQUAINT parsed with the Stanford parser) ship as
//! bracketed trees like `(S (NP (NNS agouti)) (VP (VBZ is) ...))`. This
//! module reads and writes that format so real parsed data can be imported
//! into the index; the synthetic generator uses the same representation.
//!
//! Grammar accepted (whitespace-insensitive):
//!
//! ```text
//! tree  := '(' label child* ')' | label
//! child := tree
//! ```
//!
//! A bare token inside brackets is a leaf (the usual PTB convention for
//! words under POS tags). A top-level extra wrapping `(ROOT ...)` as
//! produced by the Stanford parser is kept verbatim.

use crate::label::LabelInterner;
use crate::tree::{NodeId, ParseTree, TreeBuilder};

/// Errors produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtbError {
    /// Ran out of input while a bracket was still open.
    UnexpectedEof,
    /// A closing bracket with no matching open, or trailing garbage.
    Unbalanced(usize),
    /// An opening bracket without a label.
    MissingLabel(usize),
    /// Input contained no tree at all.
    Empty,
}

impl std::fmt::Display for PtbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PtbError::UnexpectedEof => write!(f, "unexpected end of input"),
            PtbError::Unbalanced(pos) => write!(f, "unbalanced bracket at byte {pos}"),
            PtbError::MissingLabel(pos) => write!(f, "missing label at byte {pos}"),
            PtbError::Empty => write!(f, "no tree in input"),
        }
    }
}

impl std::error::Error for PtbError {}

/// Parses a single bracketed tree, interning labels into `interner`.
pub fn parse(input: &str, interner: &mut LabelInterner) -> Result<ParseTree, PtbError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let mut builder = TreeBuilder::new();
    parser.tree(&mut builder, interner)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(PtbError::Unbalanced(parser.pos));
    }
    builder.finish().ok_or(PtbError::Empty)
}

/// Parses a whole file of bracketed trees, one or more per line; blank
/// lines and `#` comment lines are skipped. Trees may span lines only if
/// each tree starts at column zero of its first line (the common one-tree-
/// per-line export is the fast path).
pub fn parse_corpus(input: &str, interner: &mut LabelInterner) -> Result<Vec<ParseTree>, PtbError> {
    let mut trees = Vec::new();
    let mut depth = 0usize;
    let mut start = None::<usize>;
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            b')' => {
                if depth == 0 {
                    return Err(PtbError::Unbalanced(i));
                }
                depth -= 1;
                if depth == 0 {
                    let s = start.take().ok_or(PtbError::Unbalanced(i))?;
                    trees.push(parse(&input[s..=i], interner)?);
                }
            }
            // Comment lines outside any tree run to end of line.
            b'#' if depth == 0 => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if depth != 0 {
        return Err(PtbError::UnexpectedEof);
    }
    Ok(trees)
}

/// Writes `tree` in single-line bracketed form.
pub fn write(tree: &ParseTree, interner: &LabelInterner) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), interner, &mut out);
    out
}

fn write_node(tree: &ParseTree, n: NodeId, interner: &LabelInterner, out: &mut String) {
    if tree.is_leaf(n) && tree.parent(n).is_some() {
        out.push_str(interner.resolve(tree.label(n)));
        return;
    }
    out.push('(');
    out.push_str(interner.resolve(tree.label(n)));
    for c in tree.children(n) {
        out.push(' ');
        write_node(tree, c, interner, out);
    }
    out.push(')');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn token(&mut self) -> Option<&str> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'(' || b == b')' || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            // Input is &str, token boundaries are ASCII, so this is valid UTF-8.
            Some(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap())
        }
    }

    fn tree(
        &mut self,
        builder: &mut TreeBuilder,
        interner: &mut LabelInterner,
    ) -> Result<(), PtbError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'(') => {
                self.pos += 1;
                self.skip_ws();
                let label = self
                    .token()
                    .map(|t| interner.intern(t))
                    .ok_or(PtbError::MissingLabel(self.pos))?;
                builder.open(label);
                loop {
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b')') => {
                            self.pos += 1;
                            builder.close();
                            return Ok(());
                        }
                        Some(_) => self.tree(builder, interner)?,
                        None => return Err(PtbError::UnexpectedEof),
                    }
                }
            }
            Some(b')') => Err(PtbError::Unbalanced(self.pos)),
            Some(_) => {
                let label = self
                    .token()
                    .map(|t| interner.intern(t))
                    .ok_or(PtbError::MissingLabel(self.pos))?;
                builder.leaf(label);
                Ok(())
            }
            None => Err(PtbError::UnexpectedEof),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_query_tree() {
        let mut li = LabelInterner::new();
        let t = parse(
            "(S (NP (NNS agouti)) (VP (VBZ is) (NP (DT a) NN)))",
            &mut li,
        )
        .unwrap();
        assert_eq!(t.len(), 11);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(li.resolve(t.label(t.root())), "S");
    }

    #[test]
    fn round_trip() {
        let mut li = LabelInterner::new();
        let src = "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))";
        let t = parse(src, &mut li).unwrap();
        assert_eq!(write(&t, &li), src);
    }

    #[test]
    fn single_label_is_a_tree() {
        let mut li = LabelInterner::new();
        let t = parse("NN", &mut li).unwrap();
        assert_eq!(t.len(), 1);
        // A bare root is still written with brackets for re-parseability.
        assert_eq!(write(&t, &li), "(NN)");
    }

    #[test]
    fn leaf_with_brackets_allowed() {
        let mut li = LabelInterner::new();
        let t = parse("(NP (DT) (NN))", &mut li).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn errors() {
        let mut li = LabelInterner::new();
        assert_eq!(parse("(S (NP)", &mut li), Err(PtbError::UnexpectedEof));
        assert!(matches!(
            parse("(S))", &mut li),
            Err(PtbError::Unbalanced(_))
        ));
        assert!(matches!(
            parse("( (NP))", &mut li),
            Err(PtbError::MissingLabel(_))
        ));
        assert!(matches!(parse("", &mut li), Err(PtbError::UnexpectedEof)));
        assert!(matches!(parse(")", &mut li), Err(PtbError::Unbalanced(_))));
    }

    #[test]
    fn corpus_parsing_skips_blank_and_comment_lines() {
        let mut li = LabelInterner::new();
        let input = "# treebank export\n(S (NP dog))\n\n(S (VP runs))\n";
        let trees = parse_corpus(input, &mut li).unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].len(), 3);
    }

    #[test]
    fn corpus_multiline_tree() {
        let mut li = LabelInterner::new();
        let input = "(S\n  (NP dog)\n  (VP runs))";
        let trees = parse_corpus(input, &mut li).unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].len(), 5);
    }

    #[test]
    fn unicode_labels() {
        let mut li = LabelInterner::new();
        let t = parse("(S (NN café))", &mut li).unwrap();
        assert_eq!(t.len(), 3);
        assert!(li.get("café").is_some());
    }
}
