//! Node-label interning.
//!
//! The alphabet of node labels (`ΣV` in the paper) of a parsed corpus is
//! small — Penn Treebank tags plus a vocabulary of word forms — so labels
//! are interned to dense `u32` ids once and compared as integers everywhere
//! else. The interner is shared by a corpus and all indexes built over it.

use std::collections::HashMap;

/// An interned node label (an index into a [`LabelInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The raw interned id.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

/// Bidirectional map between label strings and dense [`Label`] ids.
///
/// Ids are assigned in first-seen order, which makes corpora generated from
/// a fixed seed fully deterministic.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing id if already present.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&id) = self.ids.get(name) {
            return Label(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        Label(id)
    }

    /// Looks up a label id without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.ids.get(name).copied().map(Label)
    }

    /// Resolves an id back to its string form.
    ///
    /// # Panics
    /// Panics if `label` was not produced by this interner.
    pub fn resolve(&self, label: Label) -> &str {
        &self.names[label.0 as usize]
    }

    /// Number of distinct labels interned so far (`|ΣV|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Label, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Label(i as u32), s.as_str()))
    }

    /// Serializes the interner into `out` (length-prefixed strings).
    pub fn encode(&self, out: &mut Vec<u8>) {
        crate::varint::write_u64(out, self.names.len() as u64);
        for name in &self.names {
            crate::varint::write_u64(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
    }

    /// Deserializes an interner previously written by [`Self::encode`].
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let mut pos = 0;
        let (n, used) = crate::varint::read_u64(&buf[pos..])?;
        pos += used;
        let mut interner = Self::new();
        for _ in 0..n {
            let (len, used) = crate::varint::read_u64(&buf[pos..])?;
            pos += used;
            let end = pos.checked_add(len as usize)?;
            let name = std::str::from_utf8(buf.get(pos..end)?).ok()?;
            interner.intern(name);
            pos = end;
        }
        Some((interner, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("NP");
        let b = i.intern("VP");
        assert_ne!(a, b);
        assert_eq!(i.intern("NP"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = LabelInterner::new();
        for name in ["S", "NP", "VP", "the", "dog"] {
            let l = i.intern(name);
            assert_eq!(i.resolve(l), name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = LabelInterner::new();
        assert_eq!(i.get("S"), None);
        let s = i.intern("S");
        assert_eq!(i.get("S"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut i = LabelInterner::new();
        for name in ["S", "NP", "VP", "νπ-unicode", ""] {
            i.intern(name);
        }
        let mut buf = Vec::new();
        i.encode(&mut buf);
        let (j, used) = LabelInterner::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(j.len(), i.len());
        for (l, s) in i.iter() {
            assert_eq!(j.resolve(l), s);
        }
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = LabelInterner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<_> = i.iter().map(|(l, s)| (l.id(), s.to_owned())).collect();
        assert_eq!(v, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
