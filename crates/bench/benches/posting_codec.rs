//! Posting-list codec throughput per coding scheme (the varint delta
//! encoding ablation of DESIGN.md §7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use si_core::coding::{decode_postings, Coding, NodeVal, PostingBuilder};

fn occurrences(n: usize) -> Vec<(u32, Vec<(NodeVal, u8)>)> {
    (0..n)
        .map(|i| {
            let tid = (i / 4) as u32;
            let pre = (i % 4) as u32 * 7;
            (
                tid,
                vec![
                    (NodeVal { pre, post: pre + 6, level: 2 }, 1),
                    (NodeVal { pre: pre + 1, post: pre + 2, level: 3 }, 2),
                    (NodeVal { pre: pre + 3, post: pre + 5, level: 3 }, 3),
                ],
            )
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let occs = occurrences(100_000);
    let mut group = c.benchmark_group("posting_codec");
    group.throughput(Throughput::Elements(occs.len() as u64));
    for coding in Coding::ALL {
        group.bench_with_input(BenchmarkId::new("encode", coding.name()), &occs, |b, occs| {
            b.iter(|| {
                let mut builder = PostingBuilder::new(coding);
                for (tid, nodes) in occs {
                    builder.push(*tid, nodes);
                }
                builder.finish().len()
            })
        });
        let mut builder = PostingBuilder::new(coding);
        for (tid, nodes) in &occs {
            builder.push(*tid, nodes);
        }
        let bytes = builder.finish();
        group.bench_with_input(BenchmarkId::new("decode", coding.name()), &bytes, |b, bytes| {
            b.iter(|| decode_postings(coding, 3, bytes).count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
