//! Criterion micro-version of Table 2: root-split SI (mss=3) vs
//! ATreeGrep vs the frequency-based approach (1% cutoff).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_baselines::{ATreeGrep, FreqIndex, FreqIndexOptions};
use si_bench::harness::bench_fixture;
use si_core::Coding;
use si_query::parse_query;

fn bench_systems(c: &mut Criterion) {
    let (_work, big, rs) = bench_fixture(2_000, 3, Coding::RootSplit);
    let atg = ATreeGrep::build(big.trees());
    let freq = FreqIndex::build(big.trees(), FreqIndexOptions { mss: 3, fraction: 0.01 });
    let mut interner = big.interner().clone();
    let queries = [
        ("high_freq", "NP(DT)(NN)"),
        ("mid", "S(NP)(VP(VBZ)(NP))"),
        ("selective", "S(NP(NNS))(VP(VBZ)(NP(DT)(JJ)(NN)))"),
    ];
    let mut group = c.benchmark_group("systems_compare_2k");
    group.sample_size(15);
    for (name, src) in queries {
        let q = parse_query(src, &mut interner).unwrap();
        group.bench_with_input(BenchmarkId::new("root-split", name), &q, |b, q| {
            b.iter(|| rs.evaluate(q).expect("rs").len())
        });
        group.bench_with_input(BenchmarkId::new("atreegrep", name), &q, |b, q| {
            b.iter(|| atg.evaluate(q).0.len())
        });
        group.bench_with_input(BenchmarkId::new("freq-1pct", name), &q, |b, q| {
            b.iter(|| freq.evaluate(q).0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
