//! Ablation (DESIGN.md §7): MPMGJN vs Stack-Tree structural joins on the
//! same root-split index — the paper's "more efficient stack-based
//! approaches can be directly applied over our root-split coding".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_bench::harness::bench_fixture;
use si_core::join::JoinAlgo;
use si_core::Coding;
use si_query::parse_query;

fn bench_join_ablation(c: &mut Criterion) {
    let (_work, big, mut index) = bench_fixture(2_000, 2, Coding::RootSplit);
    let mut interner = big.interner().clone();
    let queries = [
        ("deep", "S(NP(NP(NN))(PP(IN)(NP)))(VP)"),
        ("wide", "S(NP(DT)(JJ)(NN))(VP(VBZ)(NP))"),
        ("descendant", "S(//NN)"),
    ];
    let mut group = c.benchmark_group("join_ablation_mss2");
    group.sample_size(15);
    for (name, src) in queries {
        let q = parse_query(src, &mut interner).unwrap();
        for algo in [JoinAlgo::Mpmgjn, JoinAlgo::StackTree] {
            index.set_join_algo(algo);
            // Criterion runs the closure after set_join_algo per algo id.
            let label = format!("{algo:?}");
            let result = index.evaluate(&q).expect("evaluate").len();
            group.bench_with_input(
                BenchmarkId::new(label, format!("{name}({result})")),
                &q,
                |b, q| b.iter(|| index.evaluate(q).expect("evaluate").len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join_ablation);
criterion_main!(benches);
