//! Criterion micro-version of Figures 11–12: query evaluation per
//! coding scheme at mss = 3 over a 2k-sentence corpus, with a small
//! query (few matches) and a large low-selectivity one (many matches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_bench::harness::bench_fixture;
use si_core::Coding;
use si_query::parse_query;

fn bench_query_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_eval_2k_mss3");
    group.sample_size(20);
    for coding in Coding::ALL {
        let (_work, big, index) = bench_fixture(2_000, 3, coding);
        let mut interner = big.interner().clone();
        let queries = [
            ("small_selective", "S(NP(NNS))(VP(VBZ)(NP(DT)(NN)))"),
            ("mid", "VP(VBZ)(NP(DT)(NN))"),
            ("large_low_selectivity", "NP(DT)(NN)"),
            ("descendant", "S(//PP(IN)(NP))"),
        ];
        for (name, src) in queries {
            let query = parse_query(src, &mut interner).unwrap();
            group.bench_with_input(
                BenchmarkId::new(coding.name().replace(' ', "-"), name),
                &query,
                |b, q| b.iter(|| index.evaluate(q).expect("evaluate").len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_eval);
criterion_main!(benches);
