//! Criterion micro-version of Figures 8–10: index construction per
//! coding scheme and `mss` over a fixed 1k-sentence corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_bench::harness::{corpus, Workdir};
use si_core::{Coding, IndexOptions, SubtreeIndex};

fn bench_index_build(c: &mut Criterion) {
    let big = corpus(1_000);
    let work = Workdir::new("bench-build");
    let mut group = c.benchmark_group("index_build_1k");
    group.sample_size(10);
    for coding in Coding::ALL {
        for mss in [1usize, 3, 5] {
            group.bench_with_input(
                BenchmarkId::new(coding.name().replace(' ', "-"), mss),
                &mss,
                |b, &mss| {
                    b.iter(|| {
                        let dir = work.path("idx");
                        let index = SubtreeIndex::build(
                            &dir,
                            big.trees(),
                            big.interner(),
                            IndexOptions::new(mss, coding),
                        )
                        .expect("build");
                        std::fs::remove_dir_all(&dir).ok();
                        index.stats().keys
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
