//! Criterion micro-version of Figure 13: root-split query runtime as the
//! corpus grows (500 / 2000 / 8000 sentences, mss = 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use si_bench::harness::bench_fixture;
use si_core::Coding;
use si_query::parse_query;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_root_split_mss3");
    group.sample_size(15);
    for sentences in [500usize, 2_000, 8_000] {
        let (_work, big, index) = bench_fixture(sentences, 3, Coding::RootSplit);
        let mut interner = big.interner().clone();
        let q = parse_query("S(NP(DT)(NN))(VP(VBZ))", &mut interner).unwrap();
        group.throughput(Throughput::Elements(sentences as u64));
        group.bench_with_input(BenchmarkId::from_parameter(sentences), &q, |b, q| {
            b.iter(|| index.evaluate(q).expect("evaluate").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
