//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p si-bench --release --bin experiments -- all
//! cargo run -p si-bench --release --bin experiments -- fig2 fig8 tab2
//! SI_SCALE=paper cargo run -p si-bench --release --bin experiments -- fig13
//! ```
//!
//! Experiment ids: fig2 fig3 fig8 fig9 fig10 tab1 fig11 fig12 tab2 fig13
//! tab3 streaming (or `all`). See DESIGN.md §6 for the per-experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured results.
//! `streaming` runs the executor ablation (streaming pipeline vs legacy
//! materializing evaluator) and writes `BENCH_streaming.json`.

use si_bench::harness::{self, Scale};

const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "tab1",
    "fig11",
    "fig12",
    "tab2",
    "fig13",
    "tab3",
    "streaming",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &wanted {
        if !ALL.contains(id) {
            eprintln!("unknown experiment {id}; known: {ALL:?}");
            std::process::exit(2);
        }
    }
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?} (set SI_SCALE=paper for the paper's sizes)");

    // The build grid backs fig8/fig9/fig10/tab1; compute it once.
    let needs_grid = wanted
        .iter()
        .any(|id| matches!(*id, "fig8" | "fig9" | "fig10" | "tab1"));
    let grid = needs_grid.then(|| {
        eprintln!("building the (size x mss x coding) index grid...");
        harness::run_index_grid(scale)
    });
    // The query grid backs fig11/fig12.
    let needs_queries = wanted.iter().any(|id| matches!(*id, "fig11" | "fig12"));
    let runs = needs_queries.then(|| {
        eprintln!("running the query-runtime grid...");
        harness::run_query_grid(scale)
    });

    for id in wanted {
        println!();
        match id {
            "fig2" => harness::fig2(scale),
            "fig3" => harness::fig3(scale),
            "fig8" => harness::fig8(grid.as_ref().unwrap()),
            "fig9" => harness::fig9(grid.as_ref().unwrap()),
            "fig10" => harness::fig10(grid.as_ref().unwrap()),
            "tab1" => harness::tab1(grid.as_ref().unwrap()),
            "fig11" => harness::fig11(runs.as_ref().unwrap()),
            "fig12" => harness::fig12(runs.as_ref().unwrap()),
            "tab2" => harness::tab2(scale),
            "fig13" => harness::fig13(scale),
            "tab3" => harness::tab3(),
            "streaming" => {
                let rows = harness::run_streaming_ablation(scale);
                harness::emit_streaming_ablation(scale, &rows).expect("write BENCH_streaming.json");
            }
            _ => unreachable!("validated above"),
        }
    }
}
