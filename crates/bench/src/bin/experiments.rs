//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p si-bench --release --bin experiments -- all
//! cargo run -p si-bench --release --bin experiments -- fig2 fig8 tab2
//! SI_SCALE=paper cargo run -p si-bench --release --bin experiments -- fig13
//! cargo run -p si-bench --release --bin experiments -- service --threads 4
//! ```
//!
//! Experiment ids: fig2 fig3 fig8 fig9 fig10 tab1 fig11 fig12 tab2 fig13
//! tab3 streaming service planner shard pipeline seek obs cache
//! prefetch (or `all`). See DESIGN.md §6 for
//! the per-experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured results. `streaming` runs the executor ablation
//! (streaming pipeline vs legacy materializing evaluator) and writes
//! `BENCH_streaming.json`; `service` benchmarks the concurrent query
//! service (shared scans + block cache) against one-at-a-time execution
//! and writes `BENCH_service.json`; `planner` A/B-compares the
//! cost-based planner (persistent per-key statistics) against PR 1's
//! byte-length ordering, asserting identical match sets, and writes
//! `BENCH_planner.json`; `shard` races the tid-partitioned parallel
//! shard build against the single-file parallel build and the sharded
//! scatter-gather service against one-at-a-time monolith execution
//! (match sets asserted identical), writing `BENCH_shard.json`;
//! `pipeline` measures the zero-copy posting pipeline (owned
//! materializing path vs borrow-based streaming vs warm-cache borrowed
//! postings — latency, peak resident bytes, borrowed-posting and
//! avoided-sort counters), asserting match-set equality across codings,
//! executors, planner modes and shard counts, and writes
//! `BENCH_pipeline.json`; `seek` A/B-compares restart-point seeking
//! against linear drains on a selective singleton workload (match sets
//! asserted identical per query, seeks and skipped-posting counters
//! asserted nonzero) and writes `BENCH_seek.json`; `obs` measures what
//! the PR 7 instrumentation itself costs (no timings vs disabled vs
//! enabled spans, match sets asserted identical; panics if the disabled
//! path exceeds 5% overhead or the stage partition attributes under 90%
//! of the enabled wall) and writes `BENCH_obs.json`; `cache` replays a
//! Zipfian query stream with interleaved ingests through the cached
//! sharded service (every event checked against the uncached evaluator;
//! panics on divergence, a warm hit rate under 0.4, a warm/cold median
//! ratio under 10x, or zero reused shard partials after an ingest) and
//! writes `BENCH_cache.json`; `prefetch` A/B-compares overlapped
//! posting I/O (the prefetch scheduler plus plan-driven cover hints)
//! against serial page reads on cold buffered, fully-warm, and mmap
//! read paths with interleaved on/off reps (match sets asserted
//! identical on every rep; panics if the cold buffered median speedup
//! falls under 1.2x or the warm/disabled overhead exceeds 2%) and
//! writes `BENCH_prefetch.json`.
//!
//! Flags: `--seed N` pins the corpus RNG seed (default `0x5EED0001`) so
//! every `BENCH_*.json` is reproducible across machines; `--threads N`
//! sets the service worker count (default: available parallelism — the
//! CI smoke job passes `--threads 4` explicitly).

use si_bench::harness::{self, Scale};

const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "tab1",
    "fig11",
    "fig12",
    "tab2",
    "fig13",
    "tab3",
    "streaming",
    "service",
    "planner",
    "shard",
    "pipeline",
    "seek",
    "obs",
    "cache",
    "prefetch",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    std::process::exit(2);
                });
                let seed = parse_seed(v).unwrap_or_else(|| {
                    eprintln!("--seed: cannot parse {v:?} (decimal or 0x-hex)");
                    std::process::exit(2);
                });
                harness::set_corpus_seed(seed);
                i += 2;
            }
            "--threads" => {
                let v = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    std::process::exit(2);
                });
                threads = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads: cannot parse {v:?}");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                ids.push(other.to_owned());
                i += 1;
            }
        }
    }
    let wanted: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in &wanted {
        if !ALL.contains(id) {
            eprintln!("unknown experiment {id}; known: {ALL:?}");
            std::process::exit(2);
        }
    }
    let scale = Scale::from_env();
    eprintln!(
        "scale: {scale:?} (set SI_SCALE=paper for the paper's sizes), seed {:#x}",
        harness::corpus_seed()
    );

    // The build grid backs fig8/fig9/fig10/tab1; compute it once.
    let needs_grid = wanted
        .iter()
        .any(|id| matches!(*id, "fig8" | "fig9" | "fig10" | "tab1"));
    let grid = needs_grid.then(|| {
        eprintln!("building the (size x mss x coding) index grid...");
        harness::run_index_grid(scale)
    });
    // The query grid backs fig11/fig12.
    let needs_queries = wanted.iter().any(|id| matches!(*id, "fig11" | "fig12"));
    let runs = needs_queries.then(|| {
        eprintln!("running the query-runtime grid...");
        harness::run_query_grid(scale)
    });

    for id in wanted {
        println!();
        match id {
            "fig2" => harness::fig2(scale),
            "fig3" => harness::fig3(scale),
            "fig8" => harness::fig8(grid.as_ref().unwrap()),
            "fig9" => harness::fig9(grid.as_ref().unwrap()),
            "fig10" => harness::fig10(grid.as_ref().unwrap()),
            "tab1" => harness::tab1(grid.as_ref().unwrap()),
            "fig11" => harness::fig11(runs.as_ref().unwrap()),
            "fig12" => harness::fig12(runs.as_ref().unwrap()),
            "tab2" => harness::tab2(scale),
            "fig13" => harness::fig13(scale),
            "tab3" => harness::tab3(),
            "streaming" => {
                let rows = harness::run_streaming_ablation(scale);
                harness::emit_streaming_ablation(scale, &rows).expect("write BENCH_streaming.json");
            }
            "service" => {
                let report = harness::run_service_bench(scale, threads);
                harness::emit_service_bench(scale, &report).expect("write BENCH_service.json");
            }
            "planner" => {
                let report = harness::run_planner_bench(scale);
                harness::emit_planner_bench(scale, &report).expect("write BENCH_planner.json");
            }
            "shard" => {
                let report = harness::run_shard_bench(scale, threads);
                harness::emit_shard_bench(scale, &report).expect("write BENCH_shard.json");
            }
            "pipeline" => {
                let report = harness::run_pipeline_bench(scale);
                harness::emit_pipeline_bench(scale, &report).expect("write BENCH_pipeline.json");
            }
            "seek" => {
                let report = harness::run_seek_bench(scale);
                harness::emit_seek_bench(scale, &report).expect("write BENCH_seek.json");
            }
            "obs" => {
                let report = harness::run_obs_bench(scale);
                harness::emit_obs_bench(scale, &report).expect("write BENCH_obs.json");
            }
            "cache" => {
                let report = harness::run_cache_bench(scale, threads);
                harness::emit_cache_bench(scale, &report).expect("write BENCH_cache.json");
            }
            "prefetch" => {
                let report = harness::run_prefetch_bench(scale);
                harness::emit_prefetch_bench(scale, &report).expect("write BENCH_prefetch.json");
            }
            _ => unreachable!("validated above"),
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}
